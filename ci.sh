#!/bin/sh
# Repository CI gate. Run before every push; everything must pass offline.
#
#   ./ci.sh
#
# Steps (in order, failing fast):
#   1. cargo fmt --check     — formatting is canonical
#   2. cargo clippy          — all targets, workspace lints, zero warnings
#   3. cargo build --release — the tier-1 build
#   4. cargo test -q         — the tier-1 test suite (root crate + deps)
#   5. cargo test --workspace -q — every crate's unit tests
#   6. chaos suite           — fault-injection gate (pinned seeds)
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Chaos gate: re-run the fault-injection suite on its own so a chaos
# regression is named in the CI log. Fault seeds are pinned inside the
# tests and the property sweeps are bounded (16 cases), so this step is
# deterministic and cheap.
echo "==> chaos suite (pinned seeds, bounded cases)"
cargo test -q --test chaos

echo "ci: all green"
