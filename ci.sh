#!/bin/sh
# Repository CI gate. Run before every push; everything must pass offline.
#
#   ./ci.sh
#
# Steps (in order, failing fast):
#   1. cargo fmt --check     — formatting is canonical
#   2. cargo clippy          — all targets, workspace lints, zero warnings
#   3. cargo build --release — the tier-1 build
#   4. cargo test -q         — the tier-1 test suite (root crate + deps)
#   5. cargo test --workspace -q — every crate's unit tests
#   6. chaos suite           — fault-injection gate (pinned seeds)
#   7. fig_scale --smoke     — comparison-scaling gate (writes BENCH_scan.json)
#   8. observability gate    — metrics/trace export + schema validation + mc-obs clippy
#   9. fleet gate            — randomized sim smoke + golden snapshots +
#                              fig_fleet sub-linear scaling (writes BENCH_fleet.json)
#  10. static-analysis gate  — sweep-vs-CFG differential suite + analyzer
#                              metric exports validated against the schema
#  11. serve gate            — attestation-daemon sim suite + goldens +
#                              fig_serve fault sweep (writes BENCH_serve.json)
#  12. capture gate          — fast-path equivalence suite + fig_capture,
#                              which asserts the >= 4x steady-state capture
#                              speedup and fast-path on/off verdict
#                              byte-identity (writes BENCH_capture.json)
#  13. events gate           — push-vs-pull equivalence suite + fig_events,
#                              which asserts the >= 10x clean-round
#                              read/walk cut, sub-round median detection
#                              latency and push/poll verdict byte-identity
#                              (writes BENCH_events.json)
#  14. adversary gate        — active-adversary matrix suite (DKOM unlink,
#                              scrub race, checker blinding vs cross-view,
#                              scan-phase jitter, tamper evidence) + the
#                              crossview_*/adversary_* metric exports
#                              validated against the schema; the 200-seed
#                              detection-rate sweep rides in the fleet gate
#  15. exit-code gate        — fleet-check's typed exit status contract
#  16. test-count floor      — the suite must never silently shrink
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Chaos gate: re-run the fault-injection suite on its own so a chaos
# regression is named in the CI log. Fault seeds are pinned inside the
# tests and the property sweeps are bounded (16 cases), so this step is
# deterministic and cheap.
echo "==> chaos suite (pinned seeds, bounded cases)"
cargo test -q --test chaos

# Scaling gate: the canonical comparison path must stay sub-quadratic and
# undercut the pairwise matrix by >= 4x at the top of the sweep. The smoke
# sweep stops at t=16; the binary asserts both bounds itself and emits the
# measured series as BENCH_scan.json at the repo root.
echo "==> fig_scale --smoke (comparison scaling gate)"
cargo run --release -q -p mc-bench --bin fig_scale -- --smoke --out BENCH_scan.json

# Observability gate: a real 4-VM scan must export metrics that validate
# against the checked-in schema and a non-empty span trace, and the
# mc-obs crate must be clippy-clean on its own (it is the one crate every
# layer records into, so its API surface stays warning-free).
echo "==> observability gate (metrics export + schema + trace)"
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    check --vms 4 --module hal.dll \
    --metrics-out target/ci-metrics.json --trace-out target/ci-trace.jsonl \
    > /dev/null
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-metrics.json --schema schemas/metrics-schema.json
test -s target/ci-trace.jsonl || { echo "ci: trace export is empty" >&2; exit 1; }
cargo clippy -q -p mc-obs --all-targets -- -D warnings

# Fleet gate: the randomized cloud-simulation suite (its default 200
# seeded topologies, oracle-checked in all four compare × sharding mode
# combinations, plus the 200-seed active-adversary detection-rate sweep —
# every ground-truth-detectable instance caught via its intended channel,
# clean pools flag nothing), the byte-pinned golden snapshots, and the fig_fleet
# scaling bench, which itself asserts that sharded makespan shrinks
# monotonically and sub-linearly and that the report bytes never depend
# on the shard count.
echo "==> fleet gate (sim smoke + golden snapshots + fig_fleet scaling)"
cargo test -q --release --test fleet_sim --test golden_fleet --test pe_fuzz
cargo run --release -q -p mc-bench --bin fig_fleet -- --smoke --out BENCH_fleet.json

# Static-analysis gate: the differential sweep-vs-CFG suite (clean corpus
# silent in both modes, every attack row holds), then the CLI path end to
# end — the vote-invisible IAT pivot must be statically flagged, and both
# analyzer metric exports (analyze --metrics-out and the fleet pre-pass,
# which carry the analysis_* series) must validate against the schema.
echo "==> static-analysis gate (cfg suite + analyzer exports + schema)"
cargo test -q --release --test cfg_analysis
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    analyze --vms 3 --infect iat-pivot@1 \
    --metrics-out target/ci-analyze-metrics.json \
    | grep -q 'flagged VMs:' || { echo "ci: iat-pivot not statically flagged" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-analyze-metrics.json --schema schemas/metrics-schema.json
# Seed 11 is an infected fleet, so fleet-check's typed exit status is 2
# ("integrity findings") — anything else is a regression in either the
# detector or the exit-code contract.
rc=0
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    fleet-check --seed 11 --compare canonical --static-prepass \
    --metrics-out target/ci-prepass-metrics.json > /dev/null || rc=$?
[ "$rc" -eq 2 ] || { echo "ci: infected fleet-check exited $rc, want 2" >&2; exit 1; }
grep -q '"analysis_flagged_vms_total"' target/ci-prepass-metrics.json \
    || { echo "ci: pre-pass export is missing the analysis_* series" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-prepass-metrics.json --schema schemas/metrics-schema.json

# Serve gate: the attestation daemon's robustness contract. The 120-seed
# simulation suite (typed outcome for every query, deadlines honored,
# bounded queue, quarantine routing, byte-identity across worker layouts),
# the pinned ServeReport goldens, the fig_serve fault-rate sweep (which
# itself asserts bounded p99 staleness and no silent drops, writing
# BENCH_serve.json), and the serve_* metrics/trace exports validated
# against the schema.
echo "==> serve gate (sim suite + goldens + fig_serve + serve_* exports)"
cargo test -q --release --test serve_sim --test golden_serve
cargo run --release -q -p mc-bench --bin fig_serve -- --smoke --out BENCH_serve.json
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    serve --queries 200 --metrics-out target/ci-serve-metrics.json \
    --trace-out target/ci-serve-trace.jsonl > /dev/null
grep -q '"serve_queries_total"' target/ci-serve-metrics.json \
    || { echo "ci: serve export is missing the serve_* series" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-serve-metrics.json --schema schemas/metrics-schema.json
test -s target/ci-serve-trace.jsonl || { echo "ci: serve trace export is empty" >&2; exit 1; }

# Capture gate: the fast-path equivalence suite (translate-cache walk
# accounting, tree-root/flat-digest grouping identity across the attack
# corpus, torn/paged-out fault plans, leaf-locality property), then
# fig_capture, which itself asserts the >= 4x steady-state capture
# speedup at t=16 and that reports are byte-identical with the fast path
# on and off (simulated times and VMI counters stripped), writing
# BENCH_capture.json.
echo "==> capture gate (equivalence suite + fig_capture fast-path bench)"
cargo test -q --release --test capture_fastpath
cargo run --release -q -p mc-bench --bin fig_capture -- --smoke --out BENCH_capture.json

# Events gate: the push pipeline's equivalence contract. The push-vs-pull
# suite (verdict byte-identity across the attack corpus, zero-read quiet
# rounds, targeted dirty rescans, event-mode chaos determinism, the
# fleet-scale read/walk cut), then fig_events, which asserts the >= 10x
# clean-round guest-read and page-walk reduction, sub-round median
# detection latency and push/poll verdict byte-identity, writing
# BENCH_events.json. Finally the CLI event path end to end: a push-mode
# monitor run must export the event_* series and validate against the
# schema.
echo "==> events gate (equivalence suite + fig_events push bench)"
cargo test -q --release --test event_mode
cargo run --release -q -p mc-bench --bin fig_events -- --smoke --out BENCH_events.json
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    monitor --vms 5 --rounds 2 --events \
    --metrics-out target/ci-events-metrics.json > /dev/null
grep -q '"event_trusted_pairs_total"' target/ci-events-metrics.json \
    || { echo "ci: push-mode export is missing the event_* series" >&2; exit 1; }
grep -q '"trap_watched_frames"' target/ci-events-metrics.json \
    || { echo "ci: push-mode export is missing the trap_* series" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-events-metrics.json --schema schemas/metrics-schema.json

# Adversary gate: the active-adversary corpus (DKOM unlinking, scrub-race
# restorers, checker blinding) against its counter-defenses. The matrix
# suite asserts each adversary evades exactly the channels it should and
# is caught by its intended one (cross-view for unlinking and blinding,
# scan-phase jitter / tamper evidence for the scrub race) and that
# jittered verdicts are mode- and shard-invariant. Then the CLI surface:
# a cross-view fleet pass and a jittered monitor run must export the
# crossview_* / adversary_* / monitor_* series and validate against the
# schema.
echo "==> adversary gate (matrix suite + cross-view/jitter exports)"
cargo test -q --release --test active_adversaries
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    fleet-check --pools 2 --cross-view \
    --metrics-out target/ci-crossview-metrics.json > /dev/null
grep -q '"crossview_scans_total"' target/ci-crossview-metrics.json \
    || { echo "ci: cross-view export is missing the crossview_* series" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-crossview-metrics.json --schema schemas/metrics-schema.json
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    monitor --vms 4 --rounds 2 --scan-jitter 1000000 \
    --metrics-out target/ci-jitter-metrics.json > /dev/null 2>&1
grep -q '"monitor_jittered_rounds_total"' target/ci-jitter-metrics.json \
    || { echo "ci: jittered monitor export is missing the monitor_* series" >&2; exit 1; }
grep -q '"adversary_silent_restores"' target/ci-jitter-metrics.json \
    || { echo "ci: monitor export is missing the adversary_* series" >&2; exit 1; }
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    validate-metrics --file target/ci-jitter-metrics.json --schema schemas/metrics-schema.json

# Exit-code gate: fleet-check's typed exit status is API. A clean uniform
# fleet must exit 0; the infected seed-11 case (exit 2) is asserted in the
# static-analysis gate above.
echo "==> fleet-check exit-code gate"
cargo run --release -q -p modchecker-cli --bin modchecker -- \
    fleet-check --pools 2 > /dev/null \
    || { echo "ci: clean fleet-check did not exit 0" >&2; exit 1; }

# Test-count floor: the workspace suite must never silently shrink. Bump
# the floor when tests are added; lowering it is a reviewed decision.
TEST_FLOOR=541
echo "==> test-count floor (>= $TEST_FLOOR)"
TEST_COUNT=$(cargo test --workspace -q -- --list 2>/dev/null | grep -c ': test$')
echo "    $TEST_COUNT tests listed"
if [ "$TEST_COUNT" -lt "$TEST_FLOOR" ]; then
    echo "ci: test count $TEST_COUNT fell below the floor of $TEST_FLOOR" >&2
    exit 1
fi

echo "ci: all green"
