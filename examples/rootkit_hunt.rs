//! Rootkit hunt: run all four of the paper's infection techniques against
//! a cloud and show what ModChecker flags for each — the §V.B experiment
//! suite as a demo.
//!
//! ```text
//! cargo run --example rootkit_hunt
//! ```

use mc_attacks::Technique;
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

fn main() {
    let checker = ModChecker::new();

    for technique in Technique::ALL {
        let infection = technique.infection();
        let target = infection.target_module().to_string();
        println!("==> {technique} against {target}");

        // Build a 6-VM cloud where dom4 boots the infected module file
        // (the paper's modify-on-disk, reboot, inspect flow).
        let (bed, expected) = Testbed::infected_cloud(6, technique, &[3]).unwrap();

        let report = checker.check_pool(&bed.hv, &bed.vm_ids, &target).unwrap();
        for v in &report.verdicts {
            println!("    {v}");
        }

        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom4"], "{technique}");
        let flagged = &report.suspects().next().unwrap().suspect_parts;
        assert_eq!(flagged, &expected, "{technique}: paper-exact mismatch set");
        println!(
            "    detected: {} part(s) flagged, exactly as the paper reports\n",
            flagged.len()
        );
    }

    // DKOM hiding — beyond the paper's table, but squarely in its threat
    // model: a module unlinked from PsLoadedModuleList is itself a
    // discrepancy.
    println!("==> DKOM module hiding against tcpip.sys");
    let mut bed = Testbed::cloud(5);
    bed.guests[1].dkom_hide(&mut bed.hv, "tcpip.sys").unwrap();
    let report = checker.check_pool(&bed.hv, &bed.vm_ids, "tcpip.sys").unwrap();
    for v in &report.verdicts {
        println!("    {v}");
    }
    assert!(report.any_discrepancy());
    println!("    detected: hidden module surfaces as a per-VM error\n");

    println!("all techniques detected.");
}
