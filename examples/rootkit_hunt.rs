//! Rootkit hunt: run all four of the paper's infection techniques against
//! a cloud and show what ModChecker flags for each — the §V.B experiment
//! suite as a demo.
//!
//! ```text
//! cargo run --example rootkit_hunt
//! ```

use mc_analysis::Analyzer;
use mc_attacks::Technique;
use mc_vmi::VmiSession;
use modchecker::{ModChecker, ModuleSearcher};
use modchecker_repro::testbed::Testbed;

fn main() {
    let checker = ModChecker::new();
    let analyzer = Analyzer::new();

    for technique in Technique::ALL {
        let infection = technique.infection();
        let target = infection.target_module().to_string();
        println!("==> {technique} against {target}");

        // Build a 6-VM cloud where dom4 boots the infected module file
        // (the paper's modify-on-disk, reboot, inspect flow).
        let (bed, expected) = Testbed::infected_cloud(6, technique, &[3]).unwrap();

        let report = checker.check_pool(&bed.hv, &bed.vm_ids, &target).unwrap();
        for v in &report.verdicts {
            println!("    {v}");
        }

        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom4"], "{technique}");
        let flagged = &report.suspects().next().unwrap().suspect_parts;
        assert_eq!(flagged, &expected, "{technique}: paper-exact mismatch set");
        println!(
            "    detected: {} part(s) flagged, exactly as the paper reports",
            flagged.len()
        );

        // Second opinion, no reference VM needed: static lints over the
        // single captured image (EXT-4).
        let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[3]).unwrap();
        let image = ModuleSearcher::find(&mut session, &target).unwrap();
        let lints = analyzer
            .analyze_image(&image.vm_name, &target, image.base, &image.bytes)
            .unwrap();
        match infection.statically_detectable() {
            Some(codes) => {
                assert!(!lints.is_clean(), "{technique} declared detectable");
                for d in &lints.diagnostics {
                    println!("    static {d}");
                }
                println!("    static verdict: {codes} fired without any reference VM\n");
            }
            None => {
                assert!(lints.is_clean(), "{technique} declared invisible");
                println!("    static verdict: below single-image resolution — the cross-VM vote above is the only detector\n");
            }
        }
    }

    // DKOM hiding — beyond the paper's table, but squarely in its threat
    // model: a module unlinked from PsLoadedModuleList is itself a
    // discrepancy.
    println!("==> DKOM module hiding against tcpip.sys");
    let mut bed = Testbed::cloud(5);
    bed.guests[1].dkom_hide(&mut bed.hv, "tcpip.sys").unwrap();
    let report = checker
        .check_pool(&bed.hv, &bed.vm_ids, "tcpip.sys")
        .unwrap();
    for v in &report.verdicts {
        println!("    {v}");
    }
    assert!(report.any_discrepancy());
    println!("    detected: hidden module surfaces as a per-VM error");

    // The list scan pinpoints the unlinked-but-resident entry on dom2
    // alone — no peer needed.
    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[1]).unwrap();
    let lints = analyzer.analyze_module_list(&mut session).unwrap();
    assert!(!lints.is_clean());
    for d in &lints.diagnostics {
        println!("    static {d}");
    }
    println!();

    println!("all techniques detected.");
}
