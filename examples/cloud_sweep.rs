//! Cloud sweep: ModChecker runtime vs pool size, idle and loaded — a
//! console preview of the paper's Figures 7 and 8 (the bench binaries
//! `fig7_runtime_idle` / `fig8_runtime_loaded` emit the full CSV series).
//!
//! ```text
//! cargo run --release --example cloud_sweep
//! ```

use mc_loadgen::{HeavyLoad, LoadProfile};
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

fn main() {
    let checker = ModChecker::new();
    println!("checking http.sys from dom1 against N-1 peers (simulated time)\n");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}   {:>14}",
        "N", "searcher", "parser", "checker", "total idle", "total loaded"
    );

    let mut bed = Testbed::cloud(15);
    for n in 2..=15 {
        let ids = &bed.vm_ids[..n];

        // Idle case (Figure 7).
        let idle = checker
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .unwrap();

        // Loaded case (Figure 8): every guest under HeavyLoad.
        let mut load = HeavyLoad::new();
        load.start(&mut bed.hv, ids, LoadProfile::heavy()).unwrap();
        let loaded = checker
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .unwrap();
        load.stop(&mut bed.hv).unwrap();

        println!(
            "{:>4} {:>14} {:>14} {:>14} {:>14}   {:>14}",
            n,
            format!("{}", idle.times.searcher),
            format!("{}", idle.times.parser),
            format!("{}", idle.times.checker),
            format!("{}", idle.times.total()),
            format!("{}", loaded.times.total()),
        );
    }

    println!(
        "\nidle runtime grows linearly with N and Module-Searcher dominates;\n\
         the loaded curve bends sharply once loaded VMs exceed the host's 8\n\
         virtual cores — the paper's Figure 7/8 shapes."
    );
}
