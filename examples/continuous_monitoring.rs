//! Continuous monitoring with snapshot-revert remediation — the
//! operational loop the paper's §III discussion sketches.
//!
//! A monitor thread scans the pool round after round and streams events;
//! the operator thread reacts to a discrepancy by reverting the flagged VM
//! to its clean snapshot.
//!
//! ```text
//! cargo run --example continuous_monitoring
//! ```

use crossbeam::channel::unbounded;
use modchecker::{
    remediate, CheckConfig, ContinuousMonitor, MonitorConfig, MonitorEvent, ScanMode,
};
use modchecker_repro::testbed::Testbed;

fn main() {
    let mut bed = Testbed::small_cloud(6);

    // Operators snapshot at provision time.
    for id in bed.vm_ids.clone() {
        bed.hv.vm_mut(id).unwrap().snapshot("clean");
    }

    // A rootkit lands on dom5 between rounds 0 and 1 — simulated by
    // patching before we start and only scanning hal.dll in round 0.
    bed.guests[4]
        .patch_module(
            &mut bed.hv,
            "http.sys",
            0x1010,
            &[0xE9, 0x10, 0x00, 0x00, 0x00],
        )
        .unwrap();

    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into(), "http.sys".into(), "dummy.sys".into()],
        check: CheckConfig {
            mode: ScanMode::Parallel,
            ..CheckConfig::default()
        },
        ..MonitorConfig::default()
    });

    let (tx, rx) = unbounded();
    let hv = &bed.hv;
    let ids = bed.vm_ids.clone();
    let mut pending_remediation = None;

    crossbeam::scope(|s| {
        let sender = tx.clone();
        let m = &mut monitor;
        s.spawn(move |_| m.run(hv, &ids, 2, &sender));
        drop(tx);

        for event in &rx {
            match event {
                MonitorEvent::Clean { round, module } => {
                    println!("round {round}: {module:<12} clean");
                }
                MonitorEvent::Discrepancy { round, module, report } => {
                    let suspects: Vec<String> =
                        report.suspects().map(|v| v.vm_name.clone()).collect();
                    println!(
                        "round {round}: {module:<12} DISCREPANCY on {suspects:?} — scheduling revert"
                    );
                    pending_remediation = Some((module, report));
                }
                MonitorEvent::Failed { round, module, error } => {
                    println!("round {round}: {module:<12} check failed: {error}");
                }
                MonitorEvent::Degraded { round, module, report } => {
                    println!(
                        "round {round}: {module:<12} degraded ({} quorum)",
                        report.quorum
                    );
                }
                MonitorEvent::VmQuarantined { round, vm_name, .. } => {
                    println!("round {round}: circuit breaker quarantined {vm_name}");
                }
                MonitorEvent::VmRestored { round, vm_name } => {
                    println!("round {round}: re-probing {vm_name}");
                }
            }
        }
    })
    .unwrap();

    // Remediate after the monitor finishes (it borrows the host immutably).
    let (module, report) = pending_remediation.expect("the infection must be detected");
    let reverted = remediate(&mut bed.hv, &report, "clean").unwrap();
    println!("\nreverted {reverted:?} to snapshot 'clean'");

    let verify = ContinuousMonitor::new(MonitorConfig {
        modules: vec![module],
        ..MonitorConfig::default()
    });
    let round = verify.run_round(&bed.hv, &bed.vm_ids);
    let all_clean = round.iter().all(|(_, r)| r.as_ref().unwrap().all_clean());
    println!("post-remediation scan clean: {all_clean}");
    assert!(all_clean);
}
