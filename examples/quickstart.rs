//! Quickstart: build a small cloud, check a module, infect a VM, re-check.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use modchecker::{ModChecker, ScanMode};
use modchecker_repro::testbed::Testbed;

fn main() {
    // 1. Build a cloud of five identical Windows-XP-like guests, as the
    //    paper clones Dom1..Dom15 from a single installation. Each VM loads
    //    the same module files at VM-specific base addresses.
    println!("building a 5-VM cloud with the standard module corpus...");
    let mut bed = Testbed::small_cloud(5);
    for g in &bed.guests {
        let hal = g.find_module("hal.dll").unwrap();
        println!(
            "  {}: hal.dll loaded at base {:#010x}",
            bed.hv.vm(g.vm).unwrap().name,
            hal.base
        );
    }

    // 2. Check hal.dll across the pool: despite the different bases (and
    //    therefore different in-memory bytes at every relocated address),
    //    RVA adjustment reconciles the images and everything matches.
    let checker = ModChecker::with_mode(ScanMode::Sequential);
    let report = checker.check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
    println!("\nclean cloud:\n{report}");
    assert!(report.all_clean());

    // 3. Infect one VM in memory — a one-byte opcode patch inside .text,
    //    the paper's §V.B.1 scenario — and check again.
    println!("patching one opcode inside dom3's hal.dll .text ...");
    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x1003, &[0xCC])
        .unwrap();
    let report = checker.check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
    println!("\nafter infection:\n{report}");
    assert!(!report.all_clean());
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    println!("flagged VMs: {suspects:?}");
    assert_eq!(suspects, vec!["dom3"]);
}
