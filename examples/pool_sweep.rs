//! Whole-pool sweep (extension EXT-2): cross-compare the module *lists*
//! first, then content-check every consensus module — the operation a
//! cloud operator would schedule nightly.
//!
//! Demonstrates two detections the single-module API cannot make on its
//! own: a DKOM-hidden module (missing from one VM's list) and an implanted
//! driver (present on one VM only).
//!
//! ```text
//! cargo run --release --example pool_sweep
//! ```

use mc_pe::corpus::ModuleBlueprint;
use modchecker::{ListAnomaly, ModChecker, ScanMode};
use modchecker_repro::testbed::Testbed;

fn main() {
    let mut bed = Testbed::small_cloud(6);

    // A rootkit hides itself from dom3's module list (DKOM)...
    bed.guests[2].dkom_hide(&mut bed.hv, "http.sys").unwrap();
    // ...and an implant driver appears on dom5 only.
    let implant = ModuleBlueprint::new("implant.sys", bed.width, 8 * 1024)
        .build()
        .unwrap();
    bed.guests[4]
        .load(&mut bed.hv, "implant.sys", &implant, 0xF7F4_0000)
        .unwrap();
    // Plus a classic in-memory code patch on dom6's hal.dll.
    bed.guests[5]
        .patch_module(&mut bed.hv, "hal.dll", 0x1005, &[0xEB, 0x10])
        .unwrap();

    let (lists, reports) = ModChecker::with_mode(ScanMode::Parallel)
        .check_all_modules(&bed.hv, &bed.vm_ids)
        .unwrap();

    println!("{lists}");
    assert!(!lists.consistent());
    let mut hidden_seen = false;
    let mut implant_seen = false;
    for anomaly in &lists.anomalies {
        match anomaly {
            ListAnomaly::MissingOn { module, vms, .. } => {
                hidden_seen = module == "http.sys" && vms == &vec!["dom3".to_string()];
            }
            ListAnomaly::ExtraOn { module, vms, .. } => {
                implant_seen = module == "implant.sys" && vms == &vec!["dom5".to_string()];
            }
        }
    }
    assert!(hidden_seen, "DKOM hiding detected via list diff");
    assert!(implant_seen, "implant detected via list diff");

    println!("content checks over the consensus module set:");
    let mut patched_seen = false;
    for (module, result) in &reports {
        let report = result.as_ref().expect("per-module checks succeed here");
        let verdict = if report.all_clean() {
            "clean".into()
        } else {
            let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
            if module == "hal.dll" {
                patched_seen = suspects == vec!["dom6".to_string()];
            }
            format!("DISCREPANCY {suspects:?}")
        };
        println!("  {module:<16} {verdict}");
    }
    assert!(patched_seen, "code patch detected via content check");

    println!("\nall three infection classes surfaced in one sweep.");
}
