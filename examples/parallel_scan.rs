//! Sequential vs parallel pool scanning (ablation ABL-1).
//!
//! The paper's prototype "accesses the virtual machines' memory in a
//! sequence" and notes that parallel access "would considerably enhance the
//! runtime performance". This example measures both modes on real
//! wall-clock and on the simulated-time model.
//!
//! ```text
//! cargo run --release --example parallel_scan
//! ```

use std::time::Instant;

use modchecker::{ModChecker, ScanMode};
use modchecker_repro::testbed::Testbed;

fn main() {
    let bed = Testbed::cloud(12);
    let module = "ntfs.sys"; // the largest standard module

    // Real wall-clock.
    let t0 = Instant::now();
    let seq = ModChecker::with_mode(ScanMode::Sequential)
        .check_pool(&bed.hv, &bed.vm_ids, module)
        .unwrap();
    let seq_wall = t0.elapsed();

    let t0 = Instant::now();
    let par = ModChecker::with_mode(ScanMode::Parallel)
        .check_pool(&bed.hv, &bed.vm_ids, module)
        .unwrap();
    let par_wall = t0.elapsed();

    assert!(seq.all_clean() && par.all_clean());
    println!("module: {module}, pool: {} VMs", bed.vm_ids.len());
    println!("wall-clock  sequential: {seq_wall:?}");
    println!(
        "wall-clock  parallel:   {par_wall:?} ({:.2}x)",
        seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9)
    );

    // Simulated-time model (check_one gives the per-VM component split the
    // model needs).
    let report = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[0], &bed.vm_ids[1..], module)
        .unwrap();
    let sim_seq = report.simulated_wall_sequential();
    println!("\nsimulated   sequential: {sim_seq}");
    for workers in [2usize, 4, 8] {
        let sim_par = report.simulated_wall_parallel(workers);
        println!(
            "simulated   parallel x{workers}: {sim_par} ({:.2}x)",
            sim_seq.as_nanos() as f64 / sim_par.as_nanos().max(1) as f64
        );
    }

    println!("\nverdicts agree across modes: both report the pool clean.");
}
