//! Automated verification of the evaluation figures' *shapes* in the test
//! suite (the release bench binaries assert the same on the full sweep).

use mc_hypervisor::AddressWidth;
use mc_loadgen::{HeavyLoad, LoadProfile};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

fn linear_r2(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

fn sweep_bed() -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        10,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 8 * 1024),
            ModuleBlueprint::new("http.sys", w, 24 * 1024),
        ],
    )
}

#[test]
fn fig7_shape_idle_runtime_is_linear_and_searcher_dominated() {
    let bed = sweep_bed();
    let checker = ModChecker::new();
    let mut pts = Vec::new();
    for n in 2..=10usize {
        let ids = &bed.vm_ids[..n];
        let r = checker
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .unwrap();
        pts.push((n as f64, r.times.total().as_millis_f64()));
        assert!(
            r.times.searcher > r.times.parser + r.times.checker
                || r.times.searcher > r.times.checker
        );
        assert!(r.times.searcher > r.times.parser);
    }
    let r2 = linear_r2(&pts);
    assert!(r2 > 0.99, "idle total not linear: R² = {r2}");
}

#[test]
fn fig8_shape_loaded_runtime_has_a_knee_past_the_cores() {
    let mut bed = sweep_bed();
    let cores = bed.hv.host.virtual_cores as f64;
    let checker = ModChecker::new();
    let mut totals = Vec::new();
    for n in 2..=10usize {
        let ids: Vec<_> = bed.vm_ids[..n].to_vec();
        let mut load = HeavyLoad::new();
        load.start(&mut bed.hv, &ids, LoadProfile::heavy()).unwrap();
        let r = checker
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .unwrap();
        load.stop(&mut bed.hv).unwrap();
        totals.push((n as f64, r.times.total().as_millis_f64()));
    }
    // Slope before the core count vs slope after: the latter must clearly
    // dominate (the knee).
    let slope = |a: (f64, f64), b: (f64, f64)| (b.1 - a.1) / (b.0 - a.0);
    let pre = slope(totals[1], totals[4]); // N=3..6, below 8 cores
    let post = slope(totals[6], totals[8]); // N=8..10, past the cores
    assert!(
        post > 2.5 * pre,
        "no knee: pre {pre:.3} ms/VM vs post {post:.3} ms/VM (cores {cores})"
    );
}

#[test]
fn fig9_shape_idle_guest_unperturbed_by_real_checks() {
    let bed = sweep_bed();
    // Real ModChecker runs define the windows.
    let mut windows = Vec::new();
    for (i, start_s) in [20u64, 60].into_iter().enumerate() {
        let r = ModChecker::new()
            .check_one(&bed.hv, bed.vm_ids[i], &bed.vm_ids[i + 1..], "http.sys")
            .unwrap();
        let span = (r.times.total().as_nanos() / 1_000_000).max(1_000);
        windows.push(mc_loadgen::Window {
            start_ms: start_s * 1000,
            end_ms: start_s * 1000 + span,
        });
    }
    let tl = mc_loadgen::ResourceMonitor::default().record(
        &bed.hv,
        bed.vm_ids[0],
        LoadProfile::idle(),
        120_000,
        &windows,
    );
    assert!(tl.samples.iter().any(|s| s.introspection_active));
    assert!(tl.unperturbed(|s| s.cpu_idle_pct, 2.0));
    assert!(tl.unperturbed(|s| s.mem_free_physical_pct, 1.5));
    assert!(tl.unperturbed(|s| s.page_faults_per_sec, 12.0));
}
