//! Golden snapshot tests: full `ServeReport` JSON pinned for two fixed
//! seeds under `tests/golden/`.
//!
//! Each seed fixes the fleet topology (including its infections and
//! fault plans) *and* the query stream; the daemon is run in three
//! execution configurations (sequential, moderately sharded, heavily
//! sharded), all of which must serialize byte-identically and match the
//! pinned file. Refresh the snapshots after an intentional format change
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_serve
//! ```
//!
//! (documented in README; a bare mismatch message repeats the recipe).

use std::fs;
use std::path::PathBuf;

use mc_loadgen::QueryProfile;
use modchecker::{AttestServer, FleetConfig, ServeConfig};
use modchecker_repro::fleetgen::random_fleet;

const SEEDS: [u64; 2] = [11, 42];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden_serve` to create it", path.display())
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}\nif the change is intentional, refresh with `UPDATE_GOLDEN=1 cargo test --test golden_serve`"
    );
}

#[test]
fn serve_report_json_is_pinned_and_mode_invariant() {
    for seed in SEEDS {
        let bed = random_fleet(seed);
        let catalog: Vec<(String, String)> = bed
            .truth
            .consensus
            .iter()
            .flat_map(|(pool, ms)| ms.iter().map(move |m| (pool.clone(), m.clone())))
            .collect();
        let stream = mc_loadgen::generate(
            &QueryProfile {
                seed,
                queries: 120,
                ..QueryProfile::default()
            },
            &catalog,
        );

        let mut baseline: Option<String> = None;
        for (shards, inflight) in [(1, 1), (4, 2), (8, 4)] {
            let config = ServeConfig {
                fleet: FleetConfig {
                    shards,
                    max_inflight_per_vm: inflight,
                    ..FleetConfig::default()
                },
                ..ServeConfig::default()
            };
            let report = AttestServer::new(config).run(&bed.hv, &bed.fleet, &stream);
            let rendered =
                serde_json::to_string_pretty(&report.to_json()).expect("serializes") + "\n";
            match &baseline {
                None => baseline = Some(rendered),
                Some(first) => assert_eq!(
                    first, &rendered,
                    "seed {seed}: shards={shards} inflight={inflight} changed the report bytes"
                ),
            }
        }
        check_golden(
            &format!("serve_report_{seed}.json"),
            &baseline.expect("at least one configuration ran"),
        );
    }
}
