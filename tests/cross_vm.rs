//! Cross-VM consistency properties of a clean cloud.

use mc_hypervisor::{AddressWidth, SimDuration};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{ModChecker, ScanMode};
use modchecker_repro::testbed::Testbed;

fn small_corpus(width: AddressWidth) -> Vec<ModuleBlueprint> {
    vec![
        ModuleBlueprint::new("hal.dll", width, 16 * 1024),
        ModuleBlueprint::new("ndis.sys", width, 12 * 1024),
        ModuleBlueprint::new("http.sys", width, 24 * 1024),
    ]
}

#[test]
fn every_module_clean_across_clean_cloud() {
    let bed = Testbed::cloud_with(6, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    for module in ["hal.dll", "ndis.sys", "http.sys"] {
        let report = ModChecker::new()
            .check_pool(&bed.hv, &bed.vm_ids, module)
            .unwrap();
        assert!(report.all_clean(), "{module} flagged on a clean cloud");
        assert!(!report.any_discrepancy(), "{module}");
        // Every pair reconciled at least one relocation slot (bases are
        // distinct with overwhelming probability across 6 VMs).
        assert!(report.matrix.iter().any(|o| o.slots_adjusted > 0));
    }
}

#[test]
fn sixty_four_bit_cloud_is_equally_checkable() {
    let bed = Testbed::cloud_with(5, AddressWidth::W64, &small_corpus(AddressWidth::W64));
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "http.sys")
        .unwrap();
    assert!(report.all_clean());

    // And infections are detected identically.
    let bed = {
        let mut bed = bed;
        bed.guests[2]
            .patch_module(&mut bed.hv, "http.sys", 0x1001, &[0xCC, 0xCC])
            .unwrap();
        bed
    };
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "http.sys")
        .unwrap();
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"]);
}

#[test]
fn parallel_and_sequential_scans_agree_everywhere() {
    let mut bed = Testbed::cloud_with(8, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    bed.guests[5]
        .patch_module(&mut bed.hv, "ndis.sys", 0x1040, &[0xDE, 0xAD])
        .unwrap();

    for module in ["hal.dll", "ndis.sys", "http.sys"] {
        let seq = ModChecker::with_mode(ScanMode::Sequential)
            .check_pool(&bed.hv, &bed.vm_ids, module)
            .unwrap();
        let par = ModChecker::with_mode(ScanMode::Parallel)
            .check_pool(&bed.hv, &bed.vm_ids, module)
            .unwrap();
        for (a, b) in seq.verdicts.iter().zip(&par.verdicts) {
            assert_eq!(a.vm_name, b.vm_name);
            assert_eq!(a.clean, b.clean, "{module}/{}", a.vm_name);
            assert_eq!(a.suspect_parts, b.suspect_parts, "{module}/{}", a.vm_name);
        }
    }
}

#[test]
fn component_times_shape_matches_paper() {
    // Searcher dominates; all components grow with VM count (Figure 7's
    // qualitative content, asserted here; the bench regenerates the curve).
    let bed = Testbed::cloud_with(10, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    let mut prev_total = SimDuration::ZERO;
    for n in [2usize, 5, 10] {
        let ids = &bed.vm_ids[..n];
        let report = ModChecker::new()
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .unwrap();
        assert!(report.times.searcher > report.times.parser);
        assert!(report.times.searcher > report.times.checker);
        let total = report.times.total();
        assert!(total > prev_total, "runtime grows with VM count");
        prev_total = total;
    }
}

#[test]
fn reference_choice_does_not_change_clean_verdicts() {
    let bed = Testbed::cloud_with(5, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    for r in 0..5 {
        let report = ModChecker::new()
            .check_one(&bed.hv, bed.vm_ids[r], &bed.peers_of(r), "hal.dll")
            .unwrap();
        assert!(report.clean, "reference dom{}", r + 1);
    }
}

#[test]
fn multiple_executable_sections_are_hashed_independently() {
    // A driver with .text + INIT: a patch in INIT flags INIT's data part,
    // not .text's — part-level localization across several exec sections.
    let width = AddressWidth::W32;
    let bp = ModuleBlueprint::new("drv.sys", width, 16 * 1024).with_init_section(8 * 1024);
    let mut bed = Testbed::cloud_with(4, width, std::slice::from_ref(&bp));

    let clean = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "drv.sys")
        .unwrap();
    assert!(clean.all_clean(), "both exec sections reconcile when clean");

    // Locate INIT's VA from the captured image geometry (ground truth).
    let file = bp.build().unwrap();
    let parsed = mc_pe::parser::ParsedModule::parse_file(file.bytes()).unwrap();
    let init = &parsed.sections[parsed.find_section("INIT").unwrap()];
    // Pick an offset clear of relocation slots so only INIT content flips.
    let mut off = init.virtual_address as u64 + 7;
    while file
        .reloc_rvas()
        .iter()
        .any(|&r| (r as u64..r as u64 + 4).contains(&off))
    {
        off += 1;
    }
    bed.guests[2]
        .patch_module(&mut bed.hv, "drv.sys", off, &[0xCC])
        .unwrap();

    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "drv.sys")
        .unwrap();
    let victim = report.suspects().next().expect("dom3 flagged");
    assert_eq!(victim.vm_name, "dom3");
    assert_eq!(
        victim.suspect_parts,
        vec![modchecker::PartId::SectionData("INIT".into())],
        "INIT flagged; .text not"
    );
}

#[test]
fn version_skew_is_flagged_as_the_assumptions_require() {
    // The paper's §III assumption: the pool runs "the same version of the
    // operating system". A VM whose hal.dll is a different build (here: a
    // different generation seed, standing in for an updated driver) is
    // indistinguishable from an infected one — ModChecker flags it, which
    // operationally means "keep module versions homogeneous or expect
    // alarms". The paper's intro motivates exactly this: hash databases
    // are cumbersome *because* of legitimate updates.
    let width = AddressWidth::W32;
    let v1 = ModuleBlueprint::new("hal.dll", width, 16 * 1024);
    let mut v2 = ModuleBlueprint::new("hal.dll", width, 16 * 1024);
    v2.seed ^= 0xBAD_5EED;

    let mut hv = mc_hypervisor::Hypervisor::new();
    let mut ids = Vec::new();
    for i in 0..5usize {
        let vm = hv.create_vm(&format!("dom{}", i + 1), width).unwrap();
        let bp = if i == 2 { v2.clone() } else { v1.clone() };
        let corpus = vec![("hal.dll".to_string(), bp.build().unwrap())];
        mc_guest::GuestOs::install_with_modules(&mut hv, vm, &corpus, i as u64 + 1).unwrap();
        ids.push(vm);
    }

    let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"]);
}

#[test]
fn legitimately_unloaded_module_is_an_anomaly_not_a_crash() {
    let mut bed = Testbed::cloud_with(4, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    bed.guests[1].unload(&mut bed.hv, "ndis.sys").unwrap();
    // Per-module check: the unloaded VM is a failed comparison.
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    assert!(report.any_discrepancy());
    let bad = report
        .verdicts
        .iter()
        .find(|v| v.vm_name == "dom2")
        .unwrap();
    assert!(bad.error.is_some());
    // List diff reports it missing.
    let lists = modchecker::ListDiff::scan(&bed.hv, &bed.vm_ids).unwrap();
    assert!(!lists.consistent());
}

#[test]
fn distinct_modules_have_distinct_content() {
    // Sanity: the corpus generator must not emit identical modules (the
    // checker would trivially pass otherwise).
    let bed = Testbed::cloud_with(2, AddressWidth::W32, &small_corpus(AddressWidth::W32));
    let g = &bed.guests[0];
    let hal = g.find_module("hal.dll").unwrap();
    let ndis = g.find_module("ndis.sys").unwrap();
    let vm = bed.hv.vm(g.vm).unwrap();
    let mut a = vec![0u8; 4096];
    let mut b = vec![0u8; 4096];
    vm.read_virt(hal.base + 0x1000, &mut a).unwrap();
    vm.read_virt(ndis.base + 0x1000, &mut b).unwrap();
    assert_ne!(a, b);
}
