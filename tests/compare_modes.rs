//! Equivalence of the two comparison strategies: the canonical-form O(t)
//! path must return the same verdicts as the paper's O(t²) pairwise matrix
//! over the whole attack corpus, fall back to pairwise when a module
//! carries no usable `.reloc` table, and agree on the bucket edge cases
//! (all-distinct captures, 2-2 ties).

use mc_attacks::Technique;
use mc_hypervisor::AddressWidth;
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{
    CheckConfig, CompareStrategy, ModChecker, PartId, PoolCheckReport, VerdictStatus,
};
use modchecker_repro::testbed::Testbed;
use proptest::prelude::*;

/// .text occupies the image's second page onward (same layout as the
/// `properties` suite's 8 KiB blueprint).
const TEXT_START: u64 = 0x1000;
const TEXT_SAFE_LEN: u64 = 0x1800;

fn bed(n: usize) -> Testbed {
    Testbed::cloud_with(
        n,
        AddressWidth::W32,
        &[ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)],
    )
}

fn check(bed: &Testbed, module: &str, compare: CompareStrategy) -> PoolCheckReport {
    ModChecker::with_config(CheckConfig {
        compare,
        ..CheckConfig::default()
    })
    .check_pool(&bed.hv, &bed.vm_ids, module)
    .expect("pool check")
}

/// The verdict content both strategies must agree on, per VM.
type VerdictKey = (String, VerdictStatus, usize, usize, bool, Vec<PartId>);

fn verdict_keys(report: &PoolCheckReport) -> Vec<VerdictKey> {
    report
        .verdicts
        .iter()
        .map(|v| {
            (
                v.vm_name.clone(),
                v.status,
                v.successes,
                v.comparisons,
                v.clean,
                v.suspect_parts.clone(),
            )
        })
        .collect()
}

/// Runs both strategies and asserts verdict equivalence; returns the pair
/// for extra shape assertions.
fn both_modes(bed: &Testbed, module: &str) -> (PoolCheckReport, PoolCheckReport) {
    let pairwise = check(bed, module, CompareStrategy::Pairwise);
    let canonical = check(bed, module, CompareStrategy::Canonical);
    assert_eq!(
        verdict_keys(&pairwise),
        verdict_keys(&canonical),
        "strategies must return identical verdicts"
    );
    assert_eq!(pairwise.quorum, canonical.quorum);
    (pairwise, canonical)
}

/// Overwrites the first reloc block's `BlockSize` with 3 (odd, < 8) on one
/// guest, making `parse_reloc_section` reject the table. Applied to every
/// VM it leaves the pool content-consistent — the corruption is identical
/// everywhere — but denies the canonical path its normalization table.
fn break_reloc_table(bed: &mut Testbed, guest: usize, module: &str) {
    let m = bed.guests[guest]
        .find_module(module)
        .expect("module loaded")
        .clone();
    let mut image = vec![0u8; m.size as usize];
    bed.hv
        .vm(bed.vm_ids[guest])
        .unwrap()
        .read_virt(m.base, &mut image)
        .unwrap();
    let parsed = mc_pe::parser::ParsedModule::parse_memory(&image).expect("parse");
    let reloc = parsed.find_section(".reloc").expect("corpus has .reloc");
    let offset = parsed.sections[reloc].data_range.start as u64 + 4;
    bed.guests[guest]
        .patch_module(&mut bed.hv, module, offset, &[3, 0, 0, 0])
        .unwrap();
}

#[test]
fn clean_pool_verdicts_agree_and_canonical_skips_the_matrix() {
    let bed = bed(8);
    let (pairwise, canonical) = both_modes(&bed, "hal.dll");
    assert!(pairwise.all_clean());
    assert!(canonical.all_clean());
    // One bucket → no representative pairs at all, versus the full matrix.
    assert_eq!(pairwise.matrix.len(), 8 * 7 / 2);
    assert!(canonical.matrix.is_empty());
    assert!(
        canonical.times.checker < pairwise.times.checker,
        "canonical checker {} must undercut pairwise {}",
        canonical.times.checker,
        pairwise.times.checker
    );
}

#[test]
fn every_attack_technique_yields_identical_verdicts() {
    for technique in Technique::ALL {
        let (bed, _) = Testbed::infected_cloud(6, technique, &[2]).unwrap();
        let target = technique.infection().target_module().to_string();
        let (pairwise, canonical) = both_modes(&bed, &target);
        let suspects: Vec<&str> = pairwise.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom3"], "{technique}");
        assert!(canonical.any_discrepancy(), "{technique}");
    }
}

#[test]
fn worm_majority_infection_yields_identical_verdicts() {
    // 3 of 5 VMs boot the same infected file: no VM reaches a strict
    // majority (infected score 2 of 4, clean score 1 of 4), so both
    // strategies suspect the whole pool — identically, per bucket.
    let (bed, _) = Testbed::infected_cloud(5, Technique::InlineHook, &[0, 1, 2]).unwrap();
    let target = Technique::InlineHook
        .infection()
        .target_module()
        .to_string();
    let (pairwise, canonical) = both_modes(&bed, &target);
    let scores: Vec<(&str, usize)> = pairwise
        .verdicts
        .iter()
        .map(|v| (v.vm_name.as_str(), v.successes))
        .collect();
    assert_eq!(
        scores,
        vec![
            ("dom1", 2),
            ("dom2", 2),
            ("dom3", 2),
            ("dom4", 1),
            ("dom5", 1)
        ]
    );
    assert!(pairwise.verdicts.iter().all(|v| !v.clean));
    // Two buckets (3 infected + 2 clean) → exactly one representative pair.
    assert_eq!(canonical.matrix.len(), 1);
    assert!(canonical.any_discrepancy());
}

#[test]
fn reloc_less_modules_fall_back_to_the_pairwise_matrix() {
    let mut bed = bed(5);
    for guest in 0..5 {
        break_reloc_table(&mut bed, guest, "hal.dll");
    }
    // The corruption alone is pool-consistent: still clean in both modes.
    let (pairwise, canonical) = both_modes(&bed, "hal.dll");
    assert!(pairwise.all_clean() && canonical.all_clean());
    // The fallback ran the full matrix — canonical mode could not bucket.
    assert_eq!(canonical.matrix.len(), 5 * 4 / 2);

    // An infection on top is still caught, identically, through the
    // fallback path.
    bed.guests[3]
        .patch_module(&mut bed.hv, "hal.dll", TEXT_START + 7, &[0xEB, 0xFE])
        .unwrap();
    let (pairwise, canonical) = both_modes(&bed, "hal.dll");
    let suspects: Vec<&str> = pairwise.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom4"]);
    assert_eq!(canonical.matrix.len(), 5 * 4 / 2);
}

#[test]
fn all_distinct_captures_suspect_everyone_in_both_modes() {
    let mut bed = bed(4);
    for i in 0..4u64 {
        bed.guests[i as usize]
            .patch_module(
                &mut bed.hv,
                "hal.dll",
                TEXT_START + 16 * i,
                &[0x90 + i as u8],
            )
            .unwrap();
    }
    let (pairwise, canonical) = both_modes(&bed, "hal.dll");
    for v in &pairwise.verdicts {
        assert_eq!(v.status, VerdictStatus::Suspect);
        assert_eq!(v.successes, 0);
    }
    // Four singleton buckets → all C(4,2) representative pairs compared.
    assert_eq!(canonical.matrix.len(), 4 * 3 / 2);
}

#[test]
fn two_two_tie_suspects_everyone_in_both_modes() {
    let mut bed = bed(4);
    for guest in [2usize, 3] {
        bed.guests[guest]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + 5, &[0xCC])
            .unwrap();
    }
    let (pairwise, canonical) = both_modes(&bed, "hal.dll");
    for v in &pairwise.verdicts {
        // 1 success of 3 comparisons: no VM reaches a majority.
        assert_eq!(v.status, VerdictStatus::Suspect);
        assert_eq!(v.successes, 1);
        assert_eq!(v.comparisons, 3);
    }
    // Two buckets of two → one representative pair.
    assert_eq!(canonical.matrix.len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any single-VM .text patch produces identical verdicts under both
    /// strategies (the canonical form's `abs − base` normalization is the
    /// same arithmetic Algorithm 2 applies pairwise).
    #[test]
    fn random_patches_yield_identical_verdicts(
        victim in 0usize..5,
        offset in 0u64..TEXT_SAFE_LEN,
        flips in proptest::collection::vec(1u8..=255, 1..4),
    ) {
        let mut bed = bed(5);
        let base = bed.guests[victim].find_module("hal.dll").unwrap().base;
        let vm = bed.hv.vm(bed.vm_ids[victim]).unwrap();
        let mut original = vec![0u8; flips.len()];
        vm.read_virt(base + TEXT_START + offset, &mut original).unwrap();
        let patched: Vec<u8> = original.iter().zip(&flips).map(|(o, f)| o ^ f).collect();
        bed.guests[victim]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + offset, &patched)
            .unwrap();

        let (pairwise, _) = both_modes(&bed, "hal.dll");
        let suspects: Vec<String> = pairwise.suspects().map(|v| v.vm_name.clone()).collect();
        prop_assert_eq!(suspects, vec![format!("dom{}", victim + 1)]);
    }

    /// Clean pools of any size and either digest agree, and the canonical
    /// checker is never slower.
    #[test]
    fn clean_pools_agree_at_any_size(n in 3usize..9, sha in proptest::bool::ANY) {
        let bed = bed(n);
        let digest = if sha {
            modchecker::DigestAlgo::Sha256
        } else {
            modchecker::DigestAlgo::Md5
        };
        let pairwise = ModChecker::with_config(CheckConfig {
            compare: CompareStrategy::Pairwise,
            digest,
            ..CheckConfig::default()
        })
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
        let canonical = ModChecker::with_config(CheckConfig {
            compare: CompareStrategy::Canonical,
            digest,
            ..CheckConfig::default()
        })
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
        prop_assert_eq!(verdict_keys(&pairwise), verdict_keys(&canonical));
        prop_assert!(pairwise.all_clean() && canonical.all_clean());
        prop_assert!(canonical.times.checker <= pairwise.times.checker);
    }
}
