//! Randomized simulation suite for the attestation daemon.
//!
//! Each seeded case builds a random infected fleet (the same
//! [`modchecker_repro::fleetgen::random_fleet`] generator the scheduler
//! suite uses — lost VMs, transient fault plans and code patches
//! included), generates a seeded open-loop query stream against the
//! fleet's ground-truth catalog, and runs the daemon with model knobs
//! varied by the seed. The robustness contract then holds in every case:
//!
//! * **No silent drops** — every input query appears in the report with a
//!   typed disposition; answered + rejected partitions the stream.
//! * **Deadline honesty** — no query's account extends past its deadline:
//!   answers are served at or before `arrival + deadline`, and a
//!   deadline-expired shed is charged exactly the deadline.
//! * **Bounded queue** — the in-flight high-water mark never exceeds
//!   `queue_capacity`.
//! * **Quarantine routing** — a VM the daemon routed around never appears
//!   in that answer's verdict (neither as a suspect nor as statically
//!   flagged): quarantined evidence is withheld, not served.
//! * **Execution-knob determinism** — the full `ServeReport` JSON is
//!   byte-identical between (shards=1, inflight=1) and (shards=4,
//!   inflight=2); worker layout must not change a single byte.
//!
//! Every assertion message carries the reproducing seed. Case count
//! defaults to 120 and is overridable via `SERVE_SIM_CASES`.

use mc_hypervisor::SimDuration;
use mc_loadgen::QueryProfile;
use modchecker::{AttestServer, Disposition, FleetConfig, QuotaPolicy, ServeConfig, ServeReport};
use modchecker_repro::fleetgen::random_fleet;

fn case_count() -> u64 {
    std::env::var("SERVE_SIM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120)
}

/// Model knobs varied per seed — small queues and tight quotas on some
/// seeds so the rejection paths actually fire; generous ones on others so
/// the serving paths dominate.
fn config_for(seed: u64, shards: usize, inflight: usize) -> ServeConfig {
    ServeConfig {
        fleet: FleetConfig {
            shards,
            max_inflight_per_vm: inflight,
            ..FleetConfig::default()
        },
        queue_capacity: 2 + (seed % 15) as usize,
        quota: QuotaPolicy {
            rate_per_sec: 500.0 + 250.0 * (seed % 7) as f64,
            burst: 2.0 + (seed % 5) as f64,
        },
        refresh_interval: SimDuration::from_millis(10 + seed % 20),
        freshness_window: SimDuration::from_millis(15 + seed % 25),
        ..ServeConfig::default()
    }
}

#[test]
fn serve_contract_holds_across_random_fleets() {
    let cases = case_count();
    for seed in 0..cases {
        let bed = random_fleet(seed);
        let catalog: Vec<(String, String)> = bed
            .truth
            .consensus
            .iter()
            .flat_map(|(pool, ms)| ms.iter().map(move |m| (pool.clone(), m.clone())))
            .collect();
        if catalog.is_empty() {
            continue;
        }
        let profile = QueryProfile {
            seed: seed ^ 0xD1CE,
            queries: 80,
            tenants: 1 + (seed % 4) as usize,
            unknown_rate: 0.05,
            ..QueryProfile::default()
        };
        let stream = mc_loadgen::generate(&profile, &catalog);

        let report = AttestServer::new(config_for(seed, 1, 1)).run(&bed.hv, &bed.fleet, &stream);
        check_contract(
            seed,
            &report,
            &stream.len(),
            config_for(seed, 1, 1).queue_capacity,
        );

        // Execution knobs must not change a byte.
        let sharded = AttestServer::new(config_for(seed, 4, 2)).run(&bed.hv, &bed.fleet, &stream);
        assert_eq!(
            serde_json::to_string_pretty(&report.to_json()).unwrap(),
            serde_json::to_string_pretty(&sharded.to_json()).unwrap(),
            "seed {seed}: shards=4/inflight=2 changed the report bytes"
        );
    }
}

fn check_contract(seed: u64, report: &ServeReport, input_len: &usize, queue_capacity: usize) {
    // No silent drops: the report accounts for every input query, and the
    // typed outcomes partition it.
    assert_eq!(
        report.queries.len(),
        *input_len,
        "seed {seed}: report lost queries"
    );
    assert_eq!(
        report.answered() + report.rejected(),
        *input_len,
        "seed {seed}: answered + rejected does not partition the stream"
    );

    // Bounded admission: the in-flight high-water mark respects the knob.
    assert!(
        report.max_queue_depth <= queue_capacity,
        "seed {seed}: queue depth {} exceeded capacity {queue_capacity}",
        report.max_queue_depth
    );

    for sq in &report.queries {
        // Deadline honesty: nothing in the account extends past the
        // query's own budget.
        assert!(
            sq.latency <= sq.deadline,
            "seed {seed}: query #{} latency {} past deadline {}",
            sq.seq,
            sq.latency,
            sq.deadline
        );
        match &sq.disposition {
            Disposition::Answered {
                verdict,
                routed_around,
                ..
            } => {
                // Quarantine routing: withheld VMs never surface in the
                // verdict they were routed out of.
                if let Some(v) = verdict {
                    for vm in routed_around {
                        assert!(
                            !v.suspects.contains(vm) && !v.flagged.contains(vm),
                            "seed {seed}: query #{} served quarantined VM {vm} in its verdict",
                            sq.seq
                        );
                    }
                }
            }
            Disposition::Rejected(_) => {
                // Typed rejection — nothing more to hold, the type system
                // already did.
            }
        }
    }
}
