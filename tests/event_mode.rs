//! Push-vs-pull equivalence: event-driven (write-trap) monitoring must be
//! an *optimization*, never a semantic change. Everything polling mode
//! concludes, push mode must conclude too — byte for byte once timing and
//! read counters are stripped — while reading dramatically less guest
//! memory on quiet rounds.
//!
//! The invariants:
//!
//! 1. **Verdict identity over the whole attack corpus.** For every
//!    file-level technique (the paper's four plus the evasive tier), an
//!    armed monitor and a polling monitor produce byte-identical verdict
//!    reports, round after round.
//! 2. **Quiet rounds are free.** Once the capture cache is warm, an
//!    event round over a clean cloud issues *zero* guest reads and zero
//!    page walks; polling re-reads every round.
//! 3. **Dirty means exactly the dirty pair.** A patched module rescans
//!    (and flags) while every untouched module is served from trust.
//! 4. **Chaos-proof.** Under transient fault plans the event pipeline is
//!    deterministic: the same build replays the same reports, byte for
//!    byte, and the infection is still caught.
//! 5. **Fleet-scale economics.** Across a multi-pool fleet, a trusted
//!    sweep on a clean round costs ≥10× fewer guest reads and page walks
//!    than the polling sweep — the `fig_events` headline, asserted here
//!    at test scale.

use mc_attacks::Technique;
use mc_hypervisor::FaultPlan;
use modchecker::{
    ContinuousMonitor, EventPlane, FleetConfig, FleetScheduler, MonitorConfig, PoolCheckReport,
};
use modchecker_repro::fleetgen::uniform_fleet;
use modchecker_repro::testbed::Testbed;

/// Report serialization minus simulated timing and VMI cost counters —
/// the *verdict* content that push and pull modes must agree on.
fn verdict_bytes(report: &PoolCheckReport) -> String {
    let mut v = report.to_json();
    if let serde_json::Value::Object(ref mut obj) = v {
        obj.retain(|(k, _)| k != "times_ms" && k != "vmi");
    }
    serde_json::to_string_pretty(&v).expect("report serializes")
}

/// Sum of guest-read and page-walk counters across a round's reports.
fn round_cost(round: &[(String, Result<PoolCheckReport, modchecker::CheckError>)]) -> (u64, u64) {
    round.iter().fold((0, 0), |(reads, walks), (_, r)| {
        let r = r.as_ref().expect("round scans");
        (reads + r.vmi.reads, walks + r.vmi.page_walks)
    })
}

// ---------------------------------------------------------------------
// 1. Verdict identity across the attack corpus (§V.B + evasive tier).
// ---------------------------------------------------------------------

#[test]
fn push_and_pull_verdicts_are_byte_identical_across_the_attack_corpus() {
    for technique in Technique::COMPLETE {
        let (bed, _) = Testbed::infected_cloud(6, technique, &[2]).expect("infection applies");
        let target = technique.infection().target_module().to_string();
        let config = MonitorConfig {
            modules: vec![target],
            ..MonitorConfig::default()
        };

        // Pull baseline: two plain polling rounds (cold, then cached).
        let pull_bed = bed.clone();
        let pull = ContinuousMonitor::new(config.clone());
        let pull_rounds: Vec<_> = (0..2)
            .map(|_| pull.run_round(&pull_bed.hv, &pull_bed.vm_ids))
            .collect();

        // Push: arm write traps, then the same two rounds (cold fill,
        // then fully-trusted steady state).
        let mut push_bed = bed.clone();
        let push = ContinuousMonitor::new(config);
        push.arm_events(&mut push_bed.hv, &push_bed.vm_ids)
            .expect("arming succeeds on a healthy cloud");
        assert!(push.events_armed());
        let push_rounds: Vec<_> = (0..2)
            .map(|_| push.run_round_events(&push_bed.hv, &push_bed.vm_ids))
            .collect();

        for (round, (pull_round, push_round)) in pull_rounds.iter().zip(&push_rounds).enumerate() {
            for ((pm, pr), (em, er)) in pull_round.iter().zip(push_round) {
                assert_eq!(pm, em);
                let pr = pr.as_ref().expect("pull scan succeeds");
                let er = er.as_ref().expect("push scan succeeds");
                assert_eq!(
                    verdict_bytes(pr),
                    verdict_bytes(er),
                    "{technique}: push diverged from pull in round {round}"
                );
            }
        }

        // Sanity on the shared verdict: the IAT pivot rewrites only
        // `.idata`, which the paper's hash skips — every other technique
        // must flag exactly the infected VM.
        let last = &push_rounds[1][0].1;
        let suspects: Vec<&str> = last
            .as_ref()
            .expect("scan")
            .suspects()
            .map(|v| v.vm_name.as_str())
            .collect();
        if technique == Technique::IatPivot {
            assert!(suspects.is_empty(), "IatPivot must stay vote-invisible");
        } else {
            assert_eq!(suspects, vec!["dom3"], "{technique}");
        }
    }
}

// ---------------------------------------------------------------------
// 2. Quiet rounds read zero guest bytes; polling keeps paying.
// ---------------------------------------------------------------------

#[test]
fn quiet_event_rounds_read_zero_guest_bytes_while_polling_rereads() {
    let modules: Vec<String> = ["hal.dll", "http.sys", "dummy.sys", "helloworld.sys"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let config = MonitorConfig {
        modules,
        ..MonitorConfig::default()
    };

    let pull_bed = Testbed::small_cloud(6);
    let pull = ContinuousMonitor::new(config.clone());
    pull.run_round(&pull_bed.hv, &pull_bed.vm_ids); // warm the cache
    let (pull_reads, pull_walks) = round_cost(&pull.run_round(&pull_bed.hv, &pull_bed.vm_ids));

    let mut push_bed = Testbed::small_cloud(6);
    let push = ContinuousMonitor::new(config);
    push.arm_events(&mut push_bed.hv, &push_bed.vm_ids)
        .expect("arming succeeds");
    push.run_round_events(&push_bed.hv, &push_bed.vm_ids); // cold fill
    let (push_reads, push_walks) =
        round_cost(&push.run_round_events(&push_bed.hv, &push_bed.vm_ids));

    assert_eq!(push_reads, 0, "a quiet trusted round must not read guests");
    assert_eq!(push_walks, 0, "a quiet trusted round must not walk tables");
    // The ≥10× gate `fig_events` enforces at bench scale, at test scale.
    assert!(
        pull_reads >= 10 * push_reads.max(1),
        "polling should cost ≥10× the reads of a quiet push round \
         (pull {pull_reads}, push {push_reads})"
    );
    assert!(
        pull_walks >= 10 * push_walks.max(1),
        "polling should cost ≥10× the walks of a quiet push round \
         (pull {pull_walks}, push {push_walks})"
    );
}

// ---------------------------------------------------------------------
// 3. A write dirties exactly its (vm, module) pair.
// ---------------------------------------------------------------------

#[test]
fn a_patched_module_rescans_while_untouched_modules_stay_trusted() {
    let modules: Vec<String> = ["hal.dll", "http.sys", "dummy.sys", "helloworld.sys"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let mut bed = Testbed::small_cloud(6);
    let monitor = ContinuousMonitor::new(MonitorConfig {
        modules,
        ..MonitorConfig::default()
    });
    monitor
        .arm_events(&mut bed.hv, &bed.vm_ids)
        .expect("arming succeeds");
    monitor.run_round_events(&bed.hv, &bed.vm_ids); // cold fill

    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x1234, &[0xCC, 0xCC])
        .expect("patch lands");

    let round = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    for (module, result) in &round {
        let report = result.as_ref().expect("scan succeeds");
        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        if module == "hal.dll" {
            assert_eq!(suspects, vec!["dom3"], "the write must be caught");
            assert!(report.vmi.reads > 0, "the dirty pair must rescan");
        } else {
            assert!(suspects.is_empty());
            assert_eq!(
                report.vmi.reads, 0,
                "{module} was never written — it must be served from trust"
            );
        }
    }

    let stats = monitor.event_stats().expect("plane armed");
    assert!(stats.events_drained > 0);
    assert!(stats.dirty_marks >= 1);
    assert_eq!(stats.unattributed_events, 0);
}

// ---------------------------------------------------------------------
// 4. Event-mode chaos: deterministic under fault plans, still detects.
// ---------------------------------------------------------------------

/// One full event-mode run under transient read faults: arm, cold round,
/// quiet round, infect, detection round. Returns every report serialized
/// *in full* (timing and cost counters included) — the determinism claim
/// is total, not just verdict-level.
fn chaos_run(seed: u64) -> Vec<String> {
    let mut bed = Testbed::small_cloud(6);
    bed.hv.inject_fault_plan(FaultPlan::transient(seed, 0.03));
    let monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".to_string(), "http.sys".to_string()],
        ..MonitorConfig::default()
    });
    monitor
        .arm_events(&mut bed.hv, &bed.vm_ids)
        .expect("arming rides out transient faults");

    let mut out = Vec::new();
    let mut record = |round: Vec<(String, Result<PoolCheckReport, modchecker::CheckError>)>| {
        for (_, result) in round {
            let report = result.expect("transient faults never sink a scan");
            out.push(serde_json::to_string_pretty(&report.to_json()).expect("report serializes"));
        }
    };
    record(monitor.run_round_events(&bed.hv, &bed.vm_ids));
    record(monitor.run_round_events(&bed.hv, &bed.vm_ids));
    bed.guests[4]
        .patch_module(&mut bed.hv, "http.sys", 0x1100, &[0x90, 0x90, 0x90])
        .expect("patch lands");
    record(monitor.run_round_events(&bed.hv, &bed.vm_ids));
    out
}

#[test]
fn event_mode_chaos_run_is_deterministic_and_still_detects() {
    let first = chaos_run(0xC0FFEE);
    let second = chaos_run(0xC0FFEE);
    assert_eq!(
        first, second,
        "same build + same fault seed must replay byte-identical reports"
    );
    // The detection round's http.sys report (last in the run) flags dom5.
    let last: serde_json::Value =
        serde_json::from_str(first.last().expect("rounds ran")).expect("report parses back");
    let rendered = serde_json::to_string(&last).expect("serializes");
    assert!(
        rendered.contains("dom5"),
        "the mid-chaos infection must still be flagged"
    );
}

// ---------------------------------------------------------------------
// 5. Fleet scale: trusted sweeps are ≥10× cheaper on clean rounds.
// ---------------------------------------------------------------------

#[test]
fn fleet_events_sweeps_cost_a_tenth_of_polling_on_clean_rounds() {
    let mut bed = uniform_fleet(3, 4, 2, 77);

    // Arm every pool's consensus modules.
    let mut plane = EventPlane::new();
    let consensus = bed.truth.consensus.clone();
    for (spec, (pool, modules)) in bed.fleet.pools.clone().iter().zip(&consensus) {
        assert_eq!(&spec.name, pool);
        plane
            .arm_modules(&mut bed.hv, &spec.vms, modules)
            .expect("arming succeeds");
    }

    let poll = FleetScheduler::new(FleetConfig::default());
    let push = FleetScheduler::new(FleetConfig::default());

    // Warm both schedulers' caches.
    poll.sweep(&bed.hv, &bed.fleet);
    plane.drain(&bed.hv);
    push.sweep_with_trust(&bed.hv, &bed.fleet, Some(&plane));
    plane.clear_dirty();

    // Steady state, nothing written: compare one round's cost.
    let fold = |report: &modchecker::FleetReport| {
        report.units().fold((0u64, 0u64), |(reads, walks), u| {
            let r = u.result.as_ref().expect("unit scans");
            (reads + r.vmi.reads, walks + r.vmi.page_walks)
        })
    };
    let poll_report = poll.sweep(&bed.hv, &bed.fleet);
    plane.drain(&bed.hv);
    let push_report = push.sweep_with_trust(&bed.hv, &bed.fleet, Some(&plane));
    plane.clear_dirty();

    let (poll_reads, poll_walks) = fold(&poll_report);
    let (push_reads, push_walks) = fold(&push_report);
    assert_eq!(push_reads, 0, "clean trusted sweep must not read guests");
    assert_eq!(push_walks, 0);
    assert!(
        poll_reads >= 10 * push_reads.max(1) && poll_walks >= 10 * push_walks.max(1),
        "poll ({poll_reads} reads / {poll_walks} walks) must cost ≥10× \
         push ({push_reads} reads / {push_walks} walks)"
    );
    assert_eq!(poll_report.suspects(), push_report.suspects());
    assert!(push_report.suspects().is_empty());

    // And a write in one pool is still found by the next trusted sweep,
    // with the same suspect set polling finds.
    bed.guests[1][0]
        .patch_module(&mut bed.hv, "p1m0.sys", 0x1042, &[0xEB, 0xFE])
        .expect("patch lands");
    let poll_report = poll.sweep(&bed.hv, &bed.fleet);
    plane.drain(&bed.hv);
    let push_report = push.sweep_with_trust(&bed.hv, &bed.fleet, Some(&plane));
    plane.clear_dirty();
    let expected = vec![(
        "pool1".to_string(),
        "p1m0.sys".to_string(),
        "p1dom0".to_string(),
    )];
    assert_eq!(push_report.suspects(), expected);
    assert_eq!(poll_report.suspects(), expected);
}

// ---------------------------------------------------------------------
// 6. Snapshot revert racing an armed round: trust dies with the eviction.
// ---------------------------------------------------------------------

/// A snapshot revert is the one guest-state mutation the trap plane cannot
/// see — the restore is a hypervisor-side frame remap, not a guest write,
/// so it fires no events (see `Vm::revert`). A scrub built on revert would
/// therefore ride stale trust straight through an armed round *unless*
/// every revert path goes through cache eviction. This pins that contract
/// end to end: the in-flight armed round flags the infection, remediation
/// reverts + evicts, and the very next round rescans the reverted pair
/// (positive read cost) even though the event plane still believes its
/// frames quiet — then trust re-establishes, and a post-revert
/// re-infection still traps, because a revert must never disarm watches.
#[test]
fn a_snapshot_revert_scrub_cannot_ride_stale_trust_through_an_armed_round() {
    let mut bed = Testbed::small_cloud(6);
    for &id in &bed.vm_ids {
        bed.hv.vm_mut(id).expect("vm exists").snapshot("clean");
    }
    let monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".to_string()],
        ..MonitorConfig::default()
    });
    monitor
        .arm_events(&mut bed.hv, &bed.vm_ids)
        .expect("arming succeeds");
    monitor.run_round_events(&bed.hv, &bed.vm_ids); // cold fill
    let quiet = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    assert_eq!(round_cost(&quiet), (0, 0), "steady state is fully trusted");

    // The infection write traps; the in-flight armed round catches it.
    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x1234, &[0xCC, 0xCC])
        .expect("patch lands");
    let round = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    let report = round[0].1.as_ref().expect("scan succeeds");
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(
        suspects,
        vec!["dom3"],
        "the armed round must flag the write"
    );

    // Scrub via revert, mid-armed-sequence. No event fires.
    let drained_before = monitor.event_stats().expect("plane armed").events_drained;
    let reverted = monitor
        .remediate(&mut bed.hv, report, "clean")
        .expect("revert lands");
    assert_eq!(reverted, vec!["dom3"]);

    // The next armed round must NOT serve dom3 from stale trust: the
    // eviction forces a rescan (positive read cost) even though the event
    // plane saw nothing, and the rescan comes back clean.
    let post = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    let report = post[0].1.as_ref().expect("scan succeeds");
    assert!(
        report.suspects().next().is_none(),
        "the reverted guest is clean again"
    );
    assert!(
        report.vmi.reads > 0,
        "trust must not survive the eviction: the reverted pair rescans"
    );
    assert_eq!(
        monitor.event_stats().expect("plane armed").events_drained,
        drained_before,
        "the revert itself must fire no trap events — that is the threat"
    );

    // Trust re-establishes once the rescan restocks the cache...
    let quiet = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    assert_eq!(round_cost(&quiet), (0, 0), "trust re-establishes");

    // ...and the revert did not disarm the watches: a post-revert
    // re-infection still traps and is caught by the next round.
    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x2000, &[0xEB, 0xFE])
        .expect("patch lands");
    let again = monitor.run_round_events(&bed.hv, &bed.vm_ids);
    let report = again[0].1.as_ref().expect("scan succeeds");
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"], "watches must survive the revert");
}
