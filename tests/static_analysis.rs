//! EXT-4 — single-VM static hook analysis (`mc-analysis`).
//!
//! ModChecker's cross-VM vote needs a healthy majority; these tests pin
//! what the static lint engine adds: per-VM evidence that needs no
//! reference image. Each of the paper's §V.B techniques is checked against
//! the lint codes its `Infection::statically_detectable` declares, the
//! clean corpus must stay silent (zero false positives), and the §III
//! worm-majority scenario — where voting alone cannot name the culprit —
//! must be resolved by the static pre-pass.

use mc_analysis::{Analyzer, Lint};
use mc_attacks::{worm, Technique};
use mc_hypervisor::AddressWidth;
use mc_vmi::VmiSession;
use modchecker::{CheckConfig, ModChecker, ModuleSearcher};
use modchecker_repro::testbed::Testbed;

/// Captures `module` from one VM and runs the image lints on it.
fn analyze_module(bed: &Testbed, vm_index: usize, module: &str) -> mc_analysis::AnalysisReport {
    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[vm_index]).unwrap();
    let image = ModuleSearcher::find(&mut session, module).unwrap();
    Analyzer::new()
        .analyze_image(&image.vm_name, module, image.base, &image.bytes)
        .unwrap()
}

#[test]
fn clean_standard_corpus_is_statically_silent() {
    // Zero-false-positive floor: every module of the full standard corpus
    // (including the multi-section ntfs.sys/tcpip.sys images) and every
    // module list must produce no findings on an uninfected cloud.
    let bed = Testbed::cloud(2);
    for &vm in &bed.vm_ids {
        let mut session = VmiSession::attach(&bed.hv, vm).unwrap();
        let list = Analyzer::new().analyze_module_list(&mut session).unwrap();
        assert!(list.is_clean(), "clean module list flagged:\n{list}");
        let names: Vec<String> = ModuleSearcher::list_modules(&mut session)
            .unwrap()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert!(names.len() >= 10, "standard corpus loads 11 modules");
        for name in names {
            let image = ModuleSearcher::find(&mut session, &name).unwrap();
            let report = Analyzer::new()
                .analyze_image(&image.vm_name, &name, image.base, &image.bytes)
                .unwrap();
            assert!(report.is_clean(), "clean {name} flagged:\n{report}");
            assert!(report.bytes_scanned > 0);
        }
    }
}

#[test]
fn static_detectability_declarations_match_reality() {
    // Each technique's self-declared lint codes must actually fire on the
    // infected VM — and never on the clean peer.
    for technique in Technique::COMPLETE {
        let infection = technique.infection();
        let target = infection.target_module().to_string();
        let (bed, _) = Testbed::infected_cloud(2, technique, &[0]).unwrap();
        let infected = analyze_module(&bed, 0, &target);
        let peer = analyze_module(&bed, 1, &target);
        assert!(peer.is_clean(), "{technique}: clean peer flagged:\n{peer}");
        match infection.statically_detectable() {
            None => assert!(
                infected.is_clean(),
                "{technique} is declared statically invisible, got:\n{infected}"
            ),
            Some(codes) => {
                for code in codes.split('+') {
                    assert!(
                        infected.diagnostics.iter().any(|d| d.lint.code() == code),
                        "{technique}: declared lint {code} did not fire:\n{infected}"
                    );
                }
            }
        }
    }
}

#[test]
fn opcode_replacement_needs_the_cross_vm_vote() {
    // EXP-B1's one-opcode swap (DEC ECX → SUB ECX,1) is length-preserving
    // valid code: the documented blind spot of single-image analysis. The
    // cross-VM hash comparison — the paper's core mechanism — still names
    // the victim, which is why the static pass complements rather than
    // replaces it.
    let (bed, _) = Testbed::infected_cloud(5, Technique::OpcodeReplacement, &[0]).unwrap();
    let report = analyze_module(&bed, 0, "hal.dll");
    assert!(
        report.is_clean(),
        "EXP-B1 is below static resolution by design, got:\n{report}"
    );
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    let suspects: Vec<&str> = pool.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom1"]);
}

#[test]
fn dkom_hiding_is_named_by_the_list_scan() {
    let mut bed = Testbed::cloud(2);
    bed.guests[0].dkom_hide(&mut bed.hv, "tcpip.sys").unwrap();

    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[0]).unwrap();
    let report = Analyzer::new().analyze_module_list(&mut session).unwrap();
    assert!(report.has(Lint::ModuleList));
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.detail.contains("tcpip.sys") && d.detail.contains("unlinked")),
        "orphan scan names the hidden module:\n{report}"
    );

    let mut peer = VmiSession::attach(&bed.hv, bed.vm_ids[1]).unwrap();
    let clean = Analyzer::new().analyze_module_list(&mut peer).unwrap();
    assert!(clean.is_clean(), "untouched peer flagged:\n{clean}");
}

#[test]
fn worm_majority_is_resolved_by_the_static_prepass() {
    // §III: with 3 of 5 VMs identically infected, no VM reaches a strict
    // majority and the vote flags everyone. The static pre-pass inspects
    // each image on its own and names exactly the infected three.
    let mut bed = Testbed::cloud(5);
    let corpus = mc_pe::corpus::standard_corpus(AddressWidth::W32);
    let hal = corpus
        .iter()
        .find(|bp| bp.name == "hal.dll")
        .unwrap()
        .generate();
    let infection = Technique::InlineHook.infection();
    let infected = worm::infect_fraction(&mut bed.hv, &bed.guests, &*infection, &hal, 0.6).unwrap();
    assert_eq!(infected, vec!["dom1", "dom2", "dom3"]);

    let config = CheckConfig {
        static_prepass: true,
        ..CheckConfig::default()
    };
    let report = ModChecker::with_config(config)
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert!(report.any_discrepancy());
    assert!(
        report.verdicts.iter().all(|v| !v.clean),
        "majority compromise leaves the vote with no clean verdicts"
    );
    assert_eq!(
        report.statically_flagged_vms(),
        vec!["dom1", "dom2", "dom3"],
        "static findings name exactly the infected VMs"
    );
    // The per-VM evidence is the hook triad.
    for r in &report.static_findings {
        assert!(r.has(Lint::EntryRedirect) || r.has(Lint::EscapingTransfer));
    }
}
