//! Fuzz-style robustness tests for the PE parse and canonical-form paths.
//!
//! A seeded mutator corrupts corpus images three ways — truncation, bit
//! flips in the header region, and bogus `.reloc` contents — and asserts
//! the invariants the checker relies on:
//!
//! * `ParsedModule::parse_memory` / `parse_file` never panic on garbage:
//!   every mutant yields `Ok` or a typed `PeError`;
//! * `ExtractedModule::new` / `canonical_form` never panic on a mutated
//!   capture;
//! * a mutant planted *inside a VM* never earns a clean verdict from a
//!   pool scan with three clean voters, under either compare strategy,
//!   while the clean VMs all stay clean;
//! * the static lint engine (sweep + CFG) never panics on a mutant, stays
//!   silent on the clean capture, and garbage planted in data sections
//!   never *removes* the hook findings from an infected image.
//!
//! Every assertion message carries the reproducing seed.

use mc_analysis::Analyzer;
use mc_attacks::Technique;
use modchecker::{
    canonical_form, CheckConfig, CompareStrategy, ExtractedModule, ModChecker, ModuleSearcher,
    VerdictStatus,
};
use modchecker_repro::testbed::Testbed;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mc_pe::parser::ParsedModule;
use mc_vmi::VmiSession;

const MODULE: &str = "http.sys";

fn cases(default: u64) -> u64 {
    std::env::var("PE_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One random corruption of `base`: truncation, header-region bit flips,
/// or garbage written over the `.reloc` payload (when the clean parse can
/// locate one — otherwise more bit flips).
fn mutate(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.random_range(0..3u32) {
        0 => bytes.truncate(rng.random_range(0..bytes.len())),
        1 => {
            for _ in 0..rng.random_range(1..=8usize) {
                let off = rng.random_range(0..bytes.len().min(0x600) as u64) as usize;
                bytes[off] ^= 1 << rng.random_range(0..8u32);
            }
        }
        _ => {
            let reloc = ParsedModule::parse_memory(base).ok().and_then(|p| {
                p.find_section(".reloc")
                    .map(|i| p.sections[i].data_range.clone())
            });
            match reloc {
                Some(range) if !range.is_empty() => {
                    for off in range {
                        bytes[off] = rng.random_range(0..=u64::from(u8::MAX)) as u8;
                    }
                }
                _ => {
                    let off = rng.random_range(0..bytes.len() as u64) as usize;
                    bytes[off] ^= 0xFF;
                }
            }
        }
    }
    bytes
}

/// A real capture of [`MODULE`] from the first VM of a small clean cloud;
/// the memory-layout bytes the fuzz cases mutate.
fn clean_capture() -> modchecker::ModuleImage {
    let bed = Testbed::cloud(2);
    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[0]).expect("clean VM attaches");
    ModuleSearcher::find(&mut session, MODULE).expect("corpus module present")
}

#[test]
fn mutated_images_never_panic_the_parser() {
    let image = clean_capture();
    let mut survivors = 0u64;
    for seed in 0..cases(300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mutant = mutate(&mut rng, &image.bytes);
        // `Ok` or a typed error are both fine; reaching the next iteration
        // is the assertion — a panic here is the bug.
        if ParsedModule::parse_memory(&mutant).is_ok() {
            survivors += 1;
        }
        let _ = ParsedModule::parse_file(&mutant);
    }
    // The mutator must actually exercise the accepting paths too, or the
    // suite degenerates into feeding the parser pure noise.
    assert!(
        survivors > 0,
        "no mutant survived parsing — mutator too hot"
    );
}

#[test]
fn mutated_captures_never_panic_extraction_or_canonical_form() {
    let image = clean_capture();
    let mut canonicalized = 0u64;
    for seed in 0..cases(300) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut capture = image.clone();
        capture.bytes = mutate(&mut rng, &image.bytes);
        match ExtractedModule::new(capture) {
            Err(_) => {} // typed rejection is the expected common case
            Ok(m) => {
                if canonical_form(&m, None).is_some() {
                    canonicalized += 1;
                }
            }
        }
    }
    assert!(
        canonicalized > 0,
        "no mutant reached canonical form — mutator too hot"
    );
}

#[test]
fn mutated_images_never_panic_the_analyzer() {
    // The full engine — linear sweep plus recursive-descent CFG — must
    // treat every mutant as data: `Ok` (possibly with findings) or a typed
    // error, never a panic, never a finding on the unmutated capture.
    let image = clean_capture();
    let clean = Analyzer::new()
        .analyze_image(&image.vm_name, MODULE, image.base, &image.bytes)
        .expect("clean capture analyzes");
    assert!(clean.is_clean(), "fuzz baseline must be silent:\n{clean}");
    let mut analyzed = 0u64;
    for seed in 0..cases(300) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A);
        let mutant = mutate(&mut rng, &image.bytes);
        if Analyzer::new()
            .analyze_image(&image.vm_name, MODULE, image.base, &mutant)
            .is_ok()
        {
            analyzed += 1;
        }
    }
    assert!(
        analyzed > 0,
        "no mutant reached the lint engine — mutator too hot"
    );
}

#[test]
fn planted_garbage_never_downgrades_hook_findings() {
    // Anti-forensics angle: an attacker who already planted an inline hook
    // scribbles junk elsewhere in the image hoping to crash or confuse the
    // analyzer out of its L1–L3 verdict. Garbage in non-executable section
    // data must never remove the hook triad.
    let (bed, _) = Testbed::infected_cloud(2, Technique::InlineHook, &[0]).expect("infects");
    let target = Technique::InlineHook
        .infection()
        .target_module()
        .to_string();
    let image = {
        let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[0]).expect("victim attaches");
        ModuleSearcher::find(&mut session, &target).expect("module present")
    };
    let parsed = ParsedModule::parse_memory(&image.bytes).expect("hooked capture parses");
    // Inert data only: `.reloc` and `.idata` are analyzer *inputs* (CFG
    // roots, L6), so corrupting them legitimately changes the evidence.
    let data_ranges: Vec<std::ops::Range<usize>> = parsed
        .sections
        .iter()
        .filter(|s| s.name == ".data" || s.name == ".rdata")
        .map(|s| s.data_range.clone())
        .filter(|r| !r.is_empty())
        .collect();
    assert!(
        !data_ranges.is_empty(),
        "corpus module carries data sections"
    );
    for seed in 0..cases(40) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5EED).wrapping_add(3));
        let mut bytes = image.bytes.clone();
        let range = &data_ranges[rng.random_range(0..data_ranges.len() as u64) as usize];
        for _ in 0..rng.random_range(1..=64u64) {
            let off = range.start + rng.random_range(0..range.len() as u64) as usize;
            bytes[off] = rng.random_range(0..=u64::from(u8::MAX)) as u8;
        }
        let report = Analyzer::new()
            .analyze_image(&image.vm_name, &target, image.base, &bytes)
            .expect("garbage in data sections must not abort analysis");
        for code in ["L1", "L2", "L3"] {
            assert!(
                report.diagnostics.iter().any(|d| d.lint.code() == code),
                "garbage erased {code} (seed {seed}):\n{report}"
            );
        }
    }
}

/// Integrity-covered byte ranges of the module on `vm`: headers, the
/// section-header table, and executable section data — the places where a
/// corruption *must* cost the VM its clean verdict.
fn covered_ranges(image: &modchecker::ModuleImage) -> Vec<std::ops::Range<usize>> {
    let parsed = ParsedModule::parse_memory(&image.bytes).expect("clean capture parses");
    let mut ranges = vec![parsed.dos_range.clone(), parsed.nt_range.clone()];
    for s in &parsed.sections {
        ranges.push(s.header_range.clone());
        if s.is_executable() {
            ranges.push(s.data_range.clone());
        }
    }
    ranges.retain(|r| !r.is_empty());
    ranges
}

fn scan(bed: &Testbed, compare: CompareStrategy) -> modchecker::PoolCheckReport {
    ModChecker::with_config(CheckConfig {
        compare,
        ..CheckConfig::default()
    })
    .check_pool(&bed.hv, &bed.vm_ids, MODULE)
    .expect("pool scan completes on a garbage capture")
}

#[test]
fn planted_garbage_never_earns_a_clean_verdict() {
    for seed in 0..cases(12) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        // Three clean voters plus one victim: the smallest pool where the
        // majority math still protects the clean VMs (scanned >= 2i + 2).
        let mut bed = Testbed::cloud(4);
        let victim = rng.random_range(0..4u64) as usize;
        let image = {
            let mut session =
                VmiSession::attach(&bed.hv, bed.vm_ids[victim]).expect("victim attaches");
            ModuleSearcher::find(&mut session, MODULE).expect("module present")
        };
        let ranges = covered_ranges(&image);
        let range = &ranges[rng.random_range(0..ranges.len() as u64) as usize];
        let offset = range.start + rng.random_range(0..range.len() as u64) as usize;
        // XOR with a nonzero byte guarantees the write actually lands.
        let garbage = [image.bytes[offset] ^ rng.random_range(1..=u64::from(u8::MAX)) as u8];
        bed.guests[victim]
            .patch_module(&mut bed.hv, MODULE, offset as u64, &garbage)
            .expect("patch lands in the module image");

        let victim_name = bed
            .hv
            .vm(bed.vm_ids[victim])
            .expect("victim exists")
            .name
            .clone();
        for compare in [CompareStrategy::Pairwise, CompareStrategy::Canonical] {
            let report = scan(&bed, compare);
            for v in &report.verdicts {
                if v.vm_name == victim_name {
                    assert_ne!(
                        v.status,
                        VerdictStatus::Clean,
                        "garbage at offset {offset:#x} earned a clean verdict \
                         (seed {seed}, {compare:?})"
                    );
                } else {
                    assert_eq!(
                        v.status,
                        VerdictStatus::Clean,
                        "clean VM {} flagged next to a garbage capture (seed {seed}, {compare:?})",
                        v.vm_name
                    );
                }
            }
        }
    }
}

#[test]
fn bogus_reloc_payload_never_breaks_the_scan_or_the_clean_vms() {
    for seed in 0..cases(8) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xBEEF));
        let mut bed = Testbed::cloud(4);
        let victim = rng.random_range(0..4u64) as usize;
        let image = {
            let mut session =
                VmiSession::attach(&bed.hv, bed.vm_ids[victim]).expect("victim attaches");
            ModuleSearcher::find(&mut session, MODULE).expect("module present")
        };
        let parsed = ParsedModule::parse_memory(&image.bytes).expect("clean capture parses");
        let range = parsed
            .find_section(".reloc")
            .map(|i| parsed.sections[i].data_range.clone())
            .expect("corpus module carries .reloc");
        let garbage: Vec<u8> = (0..range.len())
            .map(|_| rng.random_range(0..=u64::from(u8::MAX)) as u8)
            .collect();
        bed.guests[victim]
            .patch_module(&mut bed.hv, MODULE, range.start as u64, &garbage)
            .expect("patch lands in .reloc");

        // `.reloc` payload is guest metadata, not integrity-covered: the
        // canonical path may normalize differently or fall back to
        // pairwise, but the scan must complete and the three clean VMs
        // must stay clean under both strategies.
        let victim_name = bed
            .hv
            .vm(bed.vm_ids[victim])
            .expect("victim exists")
            .name
            .clone();
        for compare in [CompareStrategy::Pairwise, CompareStrategy::Canonical] {
            let report = scan(&bed, compare);
            for v in report.verdicts.iter().filter(|v| v.vm_name != victim_name) {
                assert_eq!(
                    v.status,
                    VerdictStatus::Clean,
                    "clean VM {} flagged by a bogus .reloc payload (seed {seed}, {compare:?})",
                    v.vm_name
                );
            }
        }
    }
}
