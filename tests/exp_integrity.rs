//! End-to-end reproduction of the paper's integrity experiments (§V.B).
//!
//! For each technique: build a cloud where one VM boots the infected module
//! file, run ModChecker, and assert the flagged parts equal the paper's
//! reported mismatch set *exactly* — no more, no less.

use mc_attacks::Technique;
use mc_hypervisor::AddressWidth;
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{ModChecker, PartId};
use modchecker_repro::testbed::Testbed;

/// Small-sized corpus with the experiment targets (fast tests, same names
/// and structure as the standard corpus).
fn corpus() -> Vec<ModuleBlueprint> {
    let w = AddressWidth::W32;
    vec![
        ModuleBlueprint::new("hal.dll", w, 24 * 1024),
        ModuleBlueprint::new("helloworld.sys", w, 8 * 1024),
        ModuleBlueprint::new("dummy.sys", w, 12 * 1024).with_imports(&[(
            "ntoskrnl.exe",
            &["IoCreateDevice", "IoDeleteDevice", "IofCompleteRequest"],
        )]),
        ModuleBlueprint::new("http.sys", w, 16 * 1024),
    ]
}

/// Runs one technique on a 6-VM cloud with dom3 infected and checks the
/// paper-reported mismatch set.
fn run_experiment(technique: Technique) {
    let victim = 2usize;
    let (bed, expected) =
        Testbed::infected_cloud_with(6, AddressWidth::W32, &corpus(), technique, &[victim])
            .unwrap_or_else(|e| panic!("{technique}: {e}"));
    let target = technique.infection().target_module().to_string();

    // check_one with the victim as reference: every comparison fails, and
    // the union of mismatched parts is exactly the paper's set.
    let report = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[victim], &bed.peers_of(victim), &target)
        .unwrap();
    assert!(!report.clean, "{technique}: infected VM must be flagged");
    assert_eq!(report.successes, 0, "{technique}");
    assert_eq!(
        report.suspect_parts(),
        expected,
        "{technique}: flagged parts must match the paper exactly"
    );

    // Pool check pinpoints exactly the victim.
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, &target)
        .unwrap();
    let suspects: Vec<&str> = pool.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"], "{technique}");

    // A clean reference VM still votes clean (the infected peer is the
    // minority).
    let clean_ref = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), &target)
        .unwrap();
    assert!(clean_ref.clean, "{technique}: clean VM mislabeled");
    assert_eq!(clean_ref.successes, 4, "{technique}");

    // Collateral check: an unrelated module is clean everywhere.
    let other = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "http.sys")
        .unwrap();
    assert!(
        other.all_clean(),
        "{technique}: http.sys must be unaffected"
    );
}

#[test]
fn exp_b1_single_opcode_replacement() {
    run_experiment(Technique::OpcodeReplacement);
}

#[test]
fn exp_b2_inline_hooking() {
    run_experiment(Technique::InlineHook);
}

#[test]
fn exp_b3_stub_modification() {
    run_experiment(Technique::StubModification);
}

#[test]
fn exp_b4_dll_hooking() {
    run_experiment(Technique::DllHook);
}

#[test]
fn expected_sets_match_paper_text() {
    // Pin the paper's reported mismatch sets symbolically.
    let (_, b1) = Testbed::infected_cloud_with(
        2,
        AddressWidth::W32,
        &corpus(),
        Technique::OpcodeReplacement,
        &[1],
    )
    .unwrap();
    assert_eq!(b1, vec![PartId::SectionData(".text".into())]);

    let (_, b3) = Testbed::infected_cloud_with(
        2,
        AddressWidth::W32,
        &corpus(),
        Technique::StubModification,
        &[1],
    )
    .unwrap();
    assert_eq!(b3, vec![PartId::DosHeader]);

    let (_, b4) =
        Testbed::infected_cloud_with(2, AddressWidth::W32, &corpus(), Technique::DllHook, &[1])
            .unwrap();
    // "IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, all SECTION_HEADER's and
    // .text" — and nothing else (no DOS, no FILE header).
    assert!(b4.contains(&PartId::NtHeaders));
    assert!(b4.contains(&PartId::OptionalHeader));
    assert!(b4.contains(&PartId::SectionData(".text".into())));
    assert!(!b4.contains(&PartId::DosHeader));
    assert!(!b4.contains(&PartId::FileHeader));
    let header_count = b4
        .iter()
        .filter(|p| matches!(p, PartId::SectionHeader(_)))
        .count();
    assert_eq!(header_count, 5, ".text/.rdata/.data/.idata/.reloc headers");
}

#[test]
fn detection_works_at_paper_scale_fifteen_vms() {
    // The paper's full 15-VM pool, one infected, everything detected.
    let (bed, expected) = Testbed::infected_cloud_with(
        15,
        AddressWidth::W32,
        &corpus(),
        Technique::InlineHook,
        &[7],
    )
    .unwrap();
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom8"]);
    let victim = report.suspects().next().unwrap();
    assert_eq!(victim.suspect_parts, expected);
}
