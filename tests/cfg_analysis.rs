//! Differential sweep-vs-CFG static analysis suite.
//!
//! The CFG engine's whole claim is a *strict detection upgrade*: zero new
//! false positives on clean images, plus coverage of the anti-disassembly
//! tier the linear sweep provably cannot see. This suite pins both halves:
//!
//! * the full clean corpus is silent under sweep-only mode (`cfg_lints:
//!   false`) AND under the default CFG mode, on both pointer widths;
//! * every file-level technique appears in one attack × expected-lints
//!   table, with an explicit "does the sweep alone catch it?" column —
//!   the three evasive attacks are asserted *undetected* by sweep-only
//!   L1–L5 and *detected* by the declared CFG lint.

use mc_analysis::{Analyzer, AnalyzerConfig};
use mc_attacks::Technique;
use mc_hypervisor::AddressWidth;
use mc_pe::corpus::standard_corpus;
use mc_vmi::VmiSession;
use modchecker::ModuleSearcher;
use modchecker_repro::testbed::Testbed;

/// Sweep-only configuration: the engine exactly as it was before the CFG.
fn sweep_only() -> AnalyzerConfig {
    AnalyzerConfig {
        cfg_lints: false,
        ..AnalyzerConfig::default()
    }
}

fn analyze(
    bed: &Testbed,
    vm: usize,
    module: &str,
    config: AnalyzerConfig,
) -> mc_analysis::AnalysisReport {
    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[vm]).unwrap();
    let image = ModuleSearcher::find(&mut session, module).unwrap();
    Analyzer::with_config(config)
        .analyze_image(&image.vm_name, module, image.base, &image.bytes)
        .unwrap()
}

#[test]
fn clean_corpus_is_silent_under_both_modes() {
    for width in [AddressWidth::W32, AddressWidth::W64] {
        let bed = Testbed::cloud_with(1, width, &standard_corpus(width));
        let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[0]).unwrap();
        let names: Vec<String> = ModuleSearcher::list_modules(&mut session)
            .unwrap()
            .into_iter()
            .map(|m| m.name)
            .collect();
        drop(session);
        assert!(names.len() >= 10, "standard corpus loads 11 modules");
        for name in names {
            for (label, config) in [
                ("sweep-only", sweep_only()),
                ("cfg", AnalyzerConfig::default()),
            ] {
                let report = analyze(&bed, 0, &name, config);
                assert!(
                    report.is_clean(),
                    "clean {name} ({width:?}) flagged in {label} mode:\n{report}"
                );
            }
        }
    }
}

/// Regression for the former x86-64 gap: a clean 64-bit image must produce
/// zero findings with the CFG lints on by default (they now provide the
/// coverage the opt-in sweep declined), and a *hooked* 64-bit import table
/// must no longer hide behind the width.
#[test]
fn clean_64bit_images_produce_zero_findings() {
    let width = AddressWidth::W64;
    let bed = Testbed::cloud_with(2, width, &standard_corpus(width));
    for module in ["ntoskrnl.exe", "hal.dll", "dummy.sys", "ntfs.sys"] {
        let report = analyze(&bed, 0, module, AnalyzerConfig::default());
        assert!(report.is_clean(), "clean W64 {module} flagged:\n{report}");
        assert!(report.bytes_scanned > 0, "the CFG lints really scanned");
    }
}

/// One row per file-level technique: which lints must fire under the full
/// engine, and whether the sweep-only engine sees anything at all.
const TABLE: [(Technique, &[&str], bool); 7] = [
    (Technique::OpcodeReplacement, &[], false), // below static resolution
    (Technique::InlineHook, &["L1", "L2", "L3"], true),
    (Technique::StubModification, &["L4"], true),
    (Technique::DllHook, &["L4"], true),
    (Technique::JumpOverJunk, &["L8"], false),
    (Technique::IatPivot, &["L6"], false),
    (Technique::OverlappingDecode, &["L9"], false),
];

#[test]
fn every_technique_has_a_row_in_the_table() {
    for t in Technique::COMPLETE {
        assert!(
            TABLE.iter().any(|&(rt, _, _)| rt == t),
            "{t} missing from the coverage table"
        );
    }
    assert_eq!(TABLE.len(), Technique::COMPLETE.len());
}

#[test]
fn attack_by_lint_coverage_table_holds() {
    for (technique, expected_lints, sweep_catches) in TABLE {
        let infection = technique.infection();
        let target = infection.target_module().to_string();
        let (bed, _) = Testbed::infected_cloud(2, technique, &[0]).unwrap();

        // Full engine: exactly the declared lints (at least) fire on the
        // victim, never on the clean peer.
        let infected = analyze(&bed, 0, &target, AnalyzerConfig::default());
        let peer = analyze(&bed, 1, &target, AnalyzerConfig::default());
        assert!(peer.is_clean(), "{technique}: clean peer flagged:\n{peer}");
        for code in expected_lints {
            assert!(
                infected.diagnostics.iter().any(|d| d.lint.code() == *code),
                "{technique}: expected {code} to fire:\n{infected}"
            );
        }
        if expected_lints.is_empty() {
            assert!(
                infected.is_clean(),
                "{technique} is declared below static resolution:\n{infected}"
            );
        }

        // Sweep-only engine: the evasive tier must be *provably missed*.
        let sweep_report = analyze(&bed, 0, &target, sweep_only());
        if sweep_catches {
            assert!(
                !sweep_report.is_clean(),
                "{technique}: the sweep alone should already catch this"
            );
        } else {
            assert!(
                sweep_report.is_clean(),
                "{technique}: sweep-only L1–L5 unexpectedly fired — the attack \
                 is not actually evasive:\n{sweep_report}"
            );
        }
    }
}

#[test]
fn declared_detectability_matches_the_table() {
    // The `statically_detectable()` markers (which fleetgen's ground-truth
    // oracle consumes) must agree with the table's expected-lints column.
    for (technique, expected_lints, _) in TABLE {
        let declared = technique.infection().statically_detectable();
        match declared {
            None => assert!(expected_lints.is_empty(), "{technique}"),
            Some(codes) => {
                let mut declared: Vec<&str> = codes.split('+').collect();
                declared.sort_unstable();
                let mut expected = expected_lints.to_vec();
                expected.sort_unstable();
                assert_eq!(declared, expected, "{technique}");
            }
        }
    }
}
