//! Capture fast-path equivalence suite (DESIGN.md §14).
//!
//! The fast path — per-session translate caching, scatter-gather stable
//! reads, arena-backed buffers, and generation-keyed leaf refreshes — is
//! a pure performance layer: it must never move a verdict. This suite
//! pins that claim from four directions:
//!
//! 1. **Header reads ride the translate cache.** `read_ptr` / `read_u16`
//!    / `read_u32` against the same page cost one page-table walk total
//!    on a fast session (satellite regression for `VmiStats.page_walks`).
//! 2. **Tree roots group exactly like flat digests** across the §V.B
//!    attack corpus and the evasive techniques — equal root ⟺ equal flat
//!    hash, so roots can feed any grouping the flat digest fed.
//! 3. **Fault plans don't break equivalence.** Torn-page and paged-out
//!    injection change *when* bytes arrive, never *which* bytes: reports
//!    stay byte-identical across fast-path on/off (simulated times and
//!    VMI counters stripped — those are supposed to move).
//! 4. **Leaf locality** (property): a single-byte mutation flips exactly
//!    the containing leaf, which is what makes generation-keyed partial
//!    invalidation sound.

use mc_attacks::Technique;
use mc_hypervisor::{AddressWidth, FaultPlan, PAGE_SIZE};
use mc_pe::corpus::ModuleBlueprint;
use mc_vmi::VmiSession;
use modchecker::{
    digest::digest, CaptureCache, CheckConfig, ModChecker, ModuleSearcher, PoolCheckReport,
    TreeHash,
};
use modchecker_repro::testbed::Testbed;
use proptest::prelude::*;

fn bed(n: usize) -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        n,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 16 * 1024),
            ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
        ],
    )
}

fn checker(fast: bool) -> ModChecker {
    ModChecker::with_config(CheckConfig {
        fast_capture: fast,
        ..CheckConfig::default()
    })
}

/// Report JSON minus the fields the fast path is allowed to move.
fn verdict_bytes(report: &PoolCheckReport) -> String {
    let mut v = report.to_json();
    if let serde_json::Value::Object(ref mut obj) = v {
        obj.retain(|(k, _)| k != "times_ms" && k != "vmi");
    }
    serde_json::to_string_pretty(&v).expect("report serializes")
}

// ---------------------------------------------------------------------
// 1. Satellite: header-word reads through the translate cache.
// ---------------------------------------------------------------------

#[test]
fn header_word_reads_share_one_translate_walk_per_page() {
    let bed = bed(2);
    let module = bed.guests[0].find_module("hal.dll").expect("hal.dll");

    // Fast session: the first touch of the header page walks the page
    // tables once; every later read_ptr/read_u16/read_u32 on that page is
    // a translate-cache hit.
    let mut fast = VmiSession::attach(&bed.hv, bed.vm_ids[0])
        .expect("attach")
        .with_fast_capture();
    fast.read_u16(module.base).expect("e_magic");
    let e_lfanew = u64::from(fast.read_u32(module.base + 0x3c).expect("e_lfanew"));
    fast.read_u32(module.base + e_lfanew).expect("PE sig");
    fast.read_ptr(module.base + 8).expect("header word");
    let fs = fast.stats();
    assert_eq!(
        fs.page_walks, 1,
        "four header reads on one page must cost exactly one walk"
    );
    assert_eq!(fs.translate_cache_hits, 3, "the other three reads hit");

    // Legacy session: the paper's prototype re-translates per access.
    let mut legacy = VmiSession::attach(&bed.hv, bed.vm_ids[0]).expect("attach");
    legacy.read_u16(module.base).expect("e_magic");
    legacy.read_u32(module.base + 0x3c).expect("e_lfanew");
    legacy.read_ptr(module.base + 8).expect("header word");
    let ls = legacy.stats();
    assert_eq!(ls.page_walks, 3, "legacy pays one walk per header read");
    assert_eq!(ls.translate_cache_hits, 0);
    assert_eq!(ls.vectored_reads, 0);
}

// ---------------------------------------------------------------------
// 2. Tree roots group exactly like flat digests across the corpus.
// ---------------------------------------------------------------------

#[test]
fn tree_roots_group_exactly_like_flat_digests_across_the_attack_corpus() {
    let techniques = [
        Technique::OpcodeReplacement,
        Technique::InlineHook,
        Technique::StubModification,
        Technique::DllHook,
        Technique::JumpOverJunk,
        Technique::IatPivot,
        Technique::OverlappingDecode,
    ];
    let algo = CheckConfig::default().digest;
    for tech in techniques {
        let infection = tech.infection();
        let target = infection.target_module();
        let (bed, _expected) =
            Testbed::infected_cloud(5, tech, &[1]).expect("infected cloud builds");
        let captures: Vec<Vec<u8>> = bed
            .vm_ids
            .iter()
            .map(|&vm| {
                let mut session = VmiSession::attach(&bed.hv, vm)
                    .expect("attach")
                    .with_fast_capture();
                ModuleSearcher::find(&mut session, target)
                    .expect("capture")
                    .bytes
            })
            .collect();
        let flats: Vec<String> = captures.iter().map(|b| digest(algo, b).to_hex()).collect();
        let roots: Vec<String> = captures
            .iter()
            .map(|b| TreeHash::build(algo, b).root().to_hex())
            .collect();
        // The victim must actually differ from the herd, or the test
        // proves nothing.
        assert_ne!(flats[0], flats[1], "{tech:?}: infection left no trace");
        for i in 0..captures.len() {
            for j in 0..captures.len() {
                assert_eq!(
                    flats[i] == flats[j],
                    roots[i] == roots[j],
                    "{tech:?}: flat/root grouping diverged between dom{} and dom{}",
                    i + 1,
                    j + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Fault plans: torn + paged-out, fast path on/off byte-identity.
// ---------------------------------------------------------------------

#[test]
fn verdicts_are_byte_identical_across_fast_path_under_torn_and_paged_out_faults() {
    // Rates are chosen so *both* paths fully ride the faults out: the
    // legacy page loop draws a fault decision per page (plus a stable
    // re-read per page), so hot rates can exhaust its retry budget and
    // fail a capture the batched path completes — an honest degradation
    // difference, but not what this test pins. At these rates every
    // capture succeeds on both paths and the reports must be identical.
    let mut plan = FaultPlan::none(4242);
    plan.torn_rate = 0.08;
    plan.paged_out_rate = 0.08;
    plan.paged_out_attempts = 2;

    // One real infection under recoverable fault load: both paths must
    // converge on the same bytes, flag the same victim, and render the
    // same report.
    let mut bed = bed(6);
    bed.guests[3]
        .patch_module(&mut bed.hv, "hal.dll", 0x1007, &[0xCC])
        .expect("patch");
    bed.hv.inject_fault_plan(plan);

    let legacy = checker(false)
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .expect("legacy scan");
    let fast = checker(true)
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .expect("fast scan");
    assert_eq!(
        verdict_bytes(&legacy),
        verdict_bytes(&fast),
        "fault injection broke fast-path verdict identity"
    );
    let suspects: Vec<&str> = fast.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom4"]);
    assert_eq!(fast.scanned, 6, "faults must be ridden out, not eaten");
    // The stable scatter-gather read must have detected (and healed) torn
    // pages rather than letting them masquerade as integrity mismatches.
    assert!(fast.vmi.vectored_reads > 0);
    assert_eq!(legacy.vmi.vectored_reads, 0);
}

#[test]
fn cached_rescans_keep_equivalence_under_fault_load() {
    // The partial-refresh path reads single pages under the same fault
    // plans the full capture rides out; its verdicts must match a fresh
    // uncached scan's exactly.
    let mut plan = FaultPlan::none(99);
    plan.torn_rate = 0.15;
    plan.paged_out_rate = 0.15;
    let mut bed = bed(5);
    let fast = checker(true);
    let mut cache = CaptureCache::new();
    fast.check_pool_with_cache(&bed.hv, &bed.vm_ids, "hal.dll", &mut cache)
        .expect("warmup");

    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x2011, &[0x90, 0x90])
        .expect("patch");
    bed.hv.inject_fault_plan(plan);

    let cached = fast
        .check_pool_with_cache(&bed.hv, &bed.vm_ids, "hal.dll", &mut cache)
        .expect("cached rescan");
    let uncached = fast
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .expect("uncached rescan");
    assert_eq!(
        verdict_bytes(&cached),
        verdict_bytes(&uncached),
        "partial refresh diverged from a fresh capture under faults"
    );
    let suspects: Vec<&str> = cached.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"]);
    assert!(
        cache.stats().partial_hits >= 1,
        "the victim's rescan should have taken the leaf-refresh path"
    );
}

// ---------------------------------------------------------------------
// 4. Incremental tree == full rebuild after partial refreshes.
// ---------------------------------------------------------------------

#[test]
fn partially_refreshed_trees_match_a_full_rebuild() {
    let mut bed = bed(4);
    let fast = checker(true);
    let mut cache = CaptureCache::new();
    fast.check_pool_with_cache(&bed.hv, &bed.vm_ids, "hal.dll", &mut cache)
        .expect("warmup");

    // Dirty a middle page on one VM, then rescan: dom2's entry is
    // leaf-refreshed in place (same shape, one moved generation).
    bed.guests[1]
        .patch_module(&mut bed.hv, "hal.dll", 2 * PAGE_SIZE as u64 + 5, &[0xAB])
        .expect("patch");
    let report = fast
        .check_pool_with_cache(&bed.hv, &bed.vm_ids, "hal.dll", &mut cache)
        .expect("rescan");
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom2"]);
    let stats = cache.stats();
    assert!(stats.partial_hits >= 1, "moved generation → partial hit");
    assert_eq!(stats.invalidations, 0, "shape never changed");

    // Every cached tree — including the incrementally-updated one — must
    // equal a tree rebuilt from scratch over the module's current bytes.
    let algo = CheckConfig::default().digest;
    for (i, &vm) in bed.vm_ids.iter().enumerate() {
        let mut session = VmiSession::attach(&bed.hv, vm)
            .expect("attach")
            .with_fast_capture();
        let image = ModuleSearcher::find(&mut session, "hal.dll").expect("capture");
        let rebuilt = TreeHash::build(algo, &image.bytes).root();
        let cached_root = cache
            .tree_root(vm, "hal.dll")
            .expect("entry survives a partial refresh");
        assert_eq!(
            cached_root.to_hex(),
            rebuilt.to_hex(),
            "dom{}: incremental tree drifted from a full rebuild",
            i + 1
        );
    }
}

// ---------------------------------------------------------------------
// 5. Whole-pool byte-identity, fast path on vs off.
// ---------------------------------------------------------------------

#[test]
fn pool_reports_are_byte_identical_with_fast_capture_on_and_off() {
    // Clean pool and an infected pool, both rendered with the fast path
    // on and off: stripped of times and VMI counters, the JSON must be
    // byte-for-byte identical.
    for infect in [false, true] {
        let mut bed = bed(6);
        if infect {
            bed.guests[4]
                .patch_module(&mut bed.hv, "ndis.sys", 0x1040, &[0xEB, 0xFE])
                .expect("patch");
        }
        let legacy = checker(false)
            .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
            .expect("legacy");
        let fast = checker(true)
            .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
            .expect("fast");
        assert_eq!(
            verdict_bytes(&legacy),
            verdict_bytes(&fast),
            "infect={infect}: fast path moved a report byte"
        );
        assert!(fast.vmi.translate_cache_hits > 0);
        assert!(fast.vmi.page_walks < legacy.vmi.page_walks);
    }
}

// ---------------------------------------------------------------------
// 6. Property: single-byte mutation flips exactly the containing leaf.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_byte_mutation_flips_exactly_the_containing_leaf(
        len in 1usize..(3 * PAGE_SIZE + 129),
        idx_seed in any::<u64>(),
        fill_seed in any::<u64>(),
        delta in 1u8..=255,
    ) {
        let idx = (idx_seed as usize) % len;
        // Deterministic pseudo-random image (cheaper than a Vec strategy
        // at these sizes, and shrinking the seed is as good as shrinking
        // the bytes).
        let bytes: Vec<u8> = (0..len)
            .map(|i| {
                let x = fill_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64);
                (x >> 33) as u8
            })
            .collect();
        let mut mutated = bytes.clone();
        mutated[idx] ^= delta; // delta >= 1 ⟹ the byte really changes

        let algo = CheckConfig::default().digest;
        let before = TreeHash::build(algo, &bytes);
        let after = TreeHash::build(algo, &mutated);
        let leaf = idx / PAGE_SIZE;
        prop_assert_eq!(before.leaf_count(), after.leaf_count());
        for i in 0..before.leaf_count() {
            prop_assert_eq!(
                before.leaves()[i] == after.leaves()[i],
                i != leaf,
                "leaf {} changed iff it contains the mutated byte {}", i, idx
            );
        }
        prop_assert_ne!(before.root().to_hex(), after.root().to_hex());
        prop_assert_ne!(
            digest(algo, &bytes).to_hex(),
            digest(algo, &mutated).to_hex()
        );
    }
}
