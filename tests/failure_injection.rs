//! Failure injection: hostile guests and faulty introspection must degrade
//! into typed errors and report-level discrepancies, never panics or hangs.

use mc_hypervisor::{AddressWidth, FaultPlan, PAGE_SIZE};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{
    CheckConfig, CheckError, ModChecker, QuorumStatus, RetryPolicy, VerdictErrorKind, VerdictStatus,
};
use modchecker_repro::testbed::Testbed;

fn bed(n: usize) -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        n,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 16 * 1024),
            ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
        ],
    )
}

#[test]
fn dkom_hidden_module_is_a_failed_comparison_and_discrepancy() {
    let mut bed = bed(5);
    bed.guests[2].dkom_hide(&mut bed.hv, "hal.dll").unwrap();

    // The hidden VM can't serve as a comparison peer...
    let report = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll")
        .unwrap();
    assert_eq!(report.errors.len(), 1);
    assert!(report.clean, "3 of 4 still a majority");

    // ...and the pool check flags it with the typed error attached: a
    // module that *should* be loaded but isn't is an integrity signal,
    // not an availability problem.
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert!(pool.any_discrepancy());
    let hidden = pool.verdicts.iter().find(|v| v.vm_name == "dom3").unwrap();
    assert!(!hidden.clean);
    assert_eq!(hidden.status, VerdictStatus::Suspect);
    let err = hidden.error.as_ref().unwrap();
    assert_eq!(err.kind, VerdictErrorKind::ModuleNotFound);
    assert!(!err.kind.is_unscannable());
}

#[test]
fn reference_vm_with_hidden_module_is_an_error() {
    let mut bed = bed(4);
    bed.guests[0].dkom_hide(&mut bed.hv, "hal.dll").unwrap();
    let result = ModChecker::new().check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll");
    assert!(matches!(result, Err(CheckError::ModuleNotFound { .. })));
}

#[test]
fn smashed_pe_header_is_flagged_not_fatal() {
    let mut bed = bed(4);
    // Overwrite the DOS magic of the in-memory module on one VM.
    bed.guests[1]
        .patch_module(&mut bed.hv, "ndis.sys", 0, b"XX")
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom2").unwrap();
    assert!(!bad.clean);
    let err = bad.error.as_ref().unwrap();
    assert_eq!(err.kind, VerdictErrorKind::CaptureFailed);
    assert!(err.detail.contains("not a valid PE"));
    // Everyone else remains clean.
    assert!(pool
        .verdicts
        .iter()
        .filter(|v| v.vm_name != "dom2")
        .all(|v| v.clean));
}

#[test]
fn unmapped_module_page_is_flagged_not_fatal() {
    let mut bed = bed(4);
    let base = bed.guests[3].find_module("hal.dll").unwrap().base;
    {
        let vm = bed.hv.vm_mut(bed.vm_ids[3]).unwrap();
        let aspace = vm.aspace;
        aspace
            .unmap(&mut vm.mem, base + 2 * PAGE_SIZE as u64)
            .unwrap();
    }
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom4").unwrap();
    assert!(!bad.clean);
    assert_eq!(
        bad.error.as_ref().unwrap().kind,
        VerdictErrorKind::CaptureFailed
    );
}

#[test]
fn cyclic_module_list_is_flagged_not_hung() {
    let mut bed = bed(4);
    // Self-loop the first entry so the walk cycles before it can reach the
    // module being searched (ndis.sys is the second list entry).
    let e0 = bed.guests[1].modules[0].ldr_entry_va;
    bed.hv
        .vm_mut(bed.vm_ids[1])
        .unwrap()
        .write_ptr(e0, e0)
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom2").unwrap();
    let err = bad.error.as_ref().unwrap();
    assert_eq!(err.kind, VerdictErrorKind::CaptureFailed);
    assert!(err.detail.contains("corrupt"));
}

#[test]
fn forged_section_geometry_is_flagged_not_fatal() {
    let mut bed = bed(4);
    // Corrupt the first section header's VirtualAddress in guest memory so
    // the captured image fails section bounds validation.
    let m = bed.guests[2].find_module("ndis.sys").unwrap().clone();
    let vm = bed.hv.vm(bed.vm_ids[2]).unwrap();
    // Find e_lfanew to locate the section header.
    let mut lfanew = [0u8; 4];
    vm.read_virt(m.base + 0x3C, &mut lfanew).unwrap();
    let lfanew = u32::from_le_bytes(lfanew) as u64;
    let sh0 = m.base + lfanew + 4 + 20 + 224; // NT sig + file hdr + optional
    bed.guests[2]
        .patch_module(
            &mut bed.hv,
            "ndis.sys",
            sh0 - m.base + 12,
            &0xFFFF_0000u32.to_le_bytes(),
        )
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom3").unwrap();
    assert!(!bad.clean);
}

#[test]
fn whole_pool_unreadable_module_errors_cleanly() {
    let mut bed = bed(3);
    for g in &bed.guests {
        g.dkom_hide(&mut bed.hv, "ndis.sys").unwrap();
    }
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    assert!(pool.any_discrepancy());
    assert!(pool.verdicts.iter().all(|v| v.error.is_some()));
    assert!(pool.matrix.is_empty(), "no comparable captures at all");
    assert_eq!(pool.scanned, 0);
    assert_eq!(pool.quorum, QuorumStatus::Lost);
}

#[test]
fn peer_lost_mid_scan_drops_out_of_the_vote() {
    let mut bed = bed(5);
    // dom4 answers its first few reads, then the VM disappears: the
    // capture dies partway through and the peer must be excluded from the
    // vote — an unreachable VM says nothing about the reference module.
    // (The threshold is in fault-layer consults, and scatter-gather
    // captures consult once per batch — 3 is mid-scan on the fast path.)
    bed.hv
        .set_fault_plan(bed.vm_ids[3], Some(FaultPlan::none(11).lose_after(3)))
        .unwrap();
    let report = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll")
        .unwrap();
    assert!(report.clean, "3 surviving peers all match");
    assert_eq!(report.successes, 3);
    assert_eq!(report.comparisons, 3, "the lost peer is not a failed vote");
    assert_eq!(report.scanned, 4);
    assert_eq!(report.quorum, QuorumStatus::Degraded);
    assert_eq!(report.errors.len(), 1);
    let (name, err) = &report.errors[0];
    assert_eq!(name, "dom4");
    assert_eq!(err.kind, VerdictErrorKind::VmUnreachable);
    assert!(err.kind.is_unscannable());
}

#[test]
fn reference_vm_lost_mid_scan_is_an_error() {
    let mut bed = bed(4);
    bed.hv
        .set_fault_plan(bed.vm_ids[0], Some(FaultPlan::none(11).lose_after(3)))
        .unwrap();
    let result = ModChecker::new().check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll");
    assert!(matches!(result, Err(CheckError::Vmi(_))));
}

#[test]
fn paged_out_pages_are_ridden_out_by_retries() {
    let mut bed = bed(5);
    // Every VM sees 20% of first-touched pages "paged out" for 2 attempts
    // — exactly the transient shape a real guest under memory pressure
    // shows. The default 4-retry budget rides it out; nobody is flagged.
    let plan = FaultPlan {
        paged_out_rate: 0.2,
        paged_out_attempts: 2,
        ..FaultPlan::none(23)
    };
    bed.hv.inject_fault_plan(plan);
    let (lists, reports) = ModChecker::new()
        .check_all_modules(&bed.hv, &bed.vm_ids)
        .unwrap();
    assert!(lists.consistent());
    assert_eq!(reports.len(), 2);
    for (module, result) in &reports {
        let report = result.as_ref().unwrap_or_else(|e| panic!("{module}: {e}"));
        assert!(report.all_clean(), "{module} flagged under paged-out churn");
        assert_eq!(report.quorum, QuorumStatus::Full, "{module}");
    }
}

#[test]
fn paged_out_without_retries_degrades_not_panics() {
    let mut bed = bed(5);
    let plan = FaultPlan {
        paged_out_rate: 0.2,
        paged_out_attempts: 2,
        ..FaultPlan::none(23)
    };
    bed.hv.inject_fault_plan(plan);
    let checker = ModChecker::with_config(CheckConfig {
        retry: RetryPolicy::NONE,
        ..CheckConfig::default()
    });
    let report = checker.check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
    // Fail-fast capture gives up on the first paged-out page; those VMs
    // leave the vote as unscannable and the survivors (if any) still get
    // verdicts. Either way: a report, not a panic.
    for v in &report.verdicts {
        match (&v.status, &v.error) {
            (VerdictStatus::Unscannable, Some(e)) => {
                assert_eq!(e.kind, VerdictErrorKind::VmUnreachable);
            }
            // A captured VM marked unscannable only happens when the pool
            // as a whole fell below quorum.
            (VerdictStatus::Unscannable, None) => {
                assert_eq!(report.quorum, QuorumStatus::Lost);
            }
            (_, err) => assert!(err.is_none()),
        }
    }
    if report.quorum == QuorumStatus::Lost {
        assert!(report.scanned < 2);
    } else {
        assert_eq!(
            report.scanned,
            report.verdicts.len() - report.unscannable().count()
        );
    }
}

#[test]
fn same_fault_seed_yields_byte_identical_reports() {
    let run = || {
        let mut bed = bed(6);
        bed.guests[2]
            .patch_module(&mut bed.hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
        bed.hv.inject_fault_plan(FaultPlan::chaos(99, 0.04));
        let report = ModChecker::new()
            .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
            .unwrap();
        serde_json::to_string_pretty(&report.to_json()).unwrap()
    };
    assert_eq!(run(), run(), "same seed must reproduce the exact report");
}
