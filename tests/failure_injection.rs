//! Failure injection: hostile guests must degrade into typed errors and
//! report-level discrepancies, never panics or hangs.

use mc_hypervisor::{AddressWidth, PAGE_SIZE};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{CheckError, ModChecker};
use modchecker_repro::testbed::Testbed;

fn bed(n: usize) -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        n,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 16 * 1024),
            ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
        ],
    )
}

#[test]
fn dkom_hidden_module_is_a_failed_comparison_and_discrepancy() {
    let mut bed = bed(5);
    bed.guests[2].dkom_hide(&mut bed.hv, "hal.dll").unwrap();

    // The hidden VM can't serve as a comparison peer...
    let report = ModChecker::new()
        .check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll")
        .unwrap();
    assert_eq!(report.errors.len(), 1);
    assert!(report.clean, "3 of 4 still a majority");

    // ...and the pool check flags it with the error attached.
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert!(pool.any_discrepancy());
    let hidden = pool.verdicts.iter().find(|v| v.vm_name == "dom3").unwrap();
    assert!(!hidden.clean);
    assert!(hidden.error.as_deref().unwrap_or("").contains("not loaded"));
}

#[test]
fn reference_vm_with_hidden_module_is_an_error() {
    let mut bed = bed(4);
    bed.guests[0].dkom_hide(&mut bed.hv, "hal.dll").unwrap();
    let result = ModChecker::new().check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll");
    assert!(matches!(result, Err(CheckError::ModuleNotFound { .. })));
}

#[test]
fn smashed_pe_header_is_flagged_not_fatal() {
    let mut bed = bed(4);
    // Overwrite the DOS magic of the in-memory module on one VM.
    bed.guests[1]
        .patch_module(&mut bed.hv, "ndis.sys", 0, b"XX")
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom2").unwrap();
    assert!(!bad.clean);
    assert!(bad
        .error
        .as_deref()
        .unwrap_or("")
        .contains("not a valid PE"));
    // Everyone else remains clean.
    assert!(pool
        .verdicts
        .iter()
        .filter(|v| v.vm_name != "dom2")
        .all(|v| v.clean));
}

#[test]
fn unmapped_module_page_is_flagged_not_fatal() {
    let mut bed = bed(4);
    let base = bed.guests[3].find_module("hal.dll").unwrap().base;
    {
        let vm = bed.hv.vm_mut(bed.vm_ids[3]).unwrap();
        let aspace = vm.aspace;
        aspace
            .unmap(&mut vm.mem, base + 2 * PAGE_SIZE as u64)
            .unwrap();
    }
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom4").unwrap();
    assert!(!bad.clean);
    assert!(bad.error.is_some());
}

#[test]
fn cyclic_module_list_is_flagged_not_hung() {
    let mut bed = bed(4);
    // Self-loop the first entry so the walk cycles before it can reach the
    // module being searched (ndis.sys is the second list entry).
    let e0 = bed.guests[1].modules[0].ldr_entry_va;
    bed.hv
        .vm_mut(bed.vm_ids[1])
        .unwrap()
        .write_ptr(e0, e0)
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom2").unwrap();
    assert!(bad.error.as_deref().unwrap_or("").contains("corrupt"));
}

#[test]
fn forged_section_geometry_is_flagged_not_fatal() {
    let mut bed = bed(4);
    // Corrupt the first section header's VirtualAddress in guest memory so
    // the captured image fails section bounds validation.
    let m = bed.guests[2].find_module("ndis.sys").unwrap().clone();
    let vm = bed.hv.vm(bed.vm_ids[2]).unwrap();
    // Find e_lfanew to locate the section header.
    let mut lfanew = [0u8; 4];
    vm.read_virt(m.base + 0x3C, &mut lfanew).unwrap();
    let lfanew = u32::from_le_bytes(lfanew) as u64;
    let sh0 = m.base + lfanew + 4 + 20 + 224; // NT sig + file hdr + optional
    bed.guests[2]
        .patch_module(
            &mut bed.hv,
            "ndis.sys",
            sh0 - m.base + 12,
            &0xFFFF_0000u32.to_le_bytes(),
        )
        .unwrap();
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    let bad = pool.verdicts.iter().find(|v| v.vm_name == "dom3").unwrap();
    assert!(!bad.clean);
}

#[test]
fn whole_pool_unreadable_module_errors_cleanly() {
    let mut bed = bed(3);
    for g in &bed.guests {
        g.dkom_hide(&mut bed.hv, "ndis.sys").unwrap();
    }
    let pool = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
        .unwrap();
    assert!(pool.any_discrepancy());
    assert!(pool.verdicts.iter().all(|v| v.error.is_some()));
    assert!(pool.matrix.is_empty(), "no comparable captures at all");
}
