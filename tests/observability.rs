//! Observability suite: the exported spans and metrics must be a faithful,
//! deterministic rendering of the scan.
//!
//! 1. **No lost simulated time.** The `check_pool` root span's duration
//!    equals the report's wall-clock total, and its children (per-VM
//!    `capture` spans plus the pool-level `vote`) sum to it exactly — in
//!    both scan modes.
//! 2. **Mode-invariant export.** Under the same fault seed, sequential and
//!    parallel scans export byte-identical metrics JSON and span trees.
//! 3. **Round-trip.** The JSON exporter's output parses back to the same
//!    numbers, and every Prometheus text line is well formed.

use mc_hypervisor::{AddressWidth, FaultPlan};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{observe_scan, CheckConfig, ModChecker, ScanMode, ScanObservation};
use modchecker_repro::testbed::Testbed;

fn bed(n: usize) -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        n,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 16 * 1024),
            ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
        ],
    )
}

fn chaos_scan(mode: ScanMode) -> ScanObservation {
    let mut bed = bed(6);
    bed.guests[4]
        .patch_module(&mut bed.hv, "ndis.sys", 0x1007, &[0x90, 0x90])
        .unwrap();
    bed.hv.inject_fault_plan(FaultPlan::chaos(0xC0FFEE, 0.06));
    let report = ModChecker::with_config(CheckConfig {
        mode,
        ..CheckConfig::default()
    })
    .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
    .unwrap();
    observe_scan(&report)
}

#[test]
fn span_durations_sum_to_the_report_wall_clock_in_both_modes() {
    for mode in [ScanMode::Sequential, ScanMode::Parallel] {
        let bed = bed(5);
        let report = ModChecker::with_config(CheckConfig {
            mode,
            ..CheckConfig::default()
        })
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
        let obs = observe_scan(&report);

        assert_eq!(
            obs.trace.duration_ns,
            report.times.total().as_nanos(),
            "{mode:?}: root span must carry the scan's wall-clock"
        );
        assert_eq!(
            obs.trace.children_total_ns(),
            obs.trace.duration_ns,
            "{mode:?}: children must cover the root with no lost time"
        );
        assert_eq!(obs.trace.self_time_ns(), 0, "{mode:?}");

        // 5 capture spans + 1 vote span, each capture internally covered
        // by page_map + parse + hash.
        assert_eq!(obs.trace.children.len(), 6, "{mode:?}");
        let captures: Vec<_> = obs
            .trace
            .children
            .iter()
            .filter(|c| c.name == "capture")
            .collect();
        assert_eq!(captures.len(), 5, "{mode:?}");
        for c in &captures {
            assert_eq!(
                c.children_total_ns(),
                c.duration_ns,
                "{mode:?}: capture {:?} leaks simulated time",
                c.attrs
            );
        }
        assert!(
            obs.trace.children.iter().any(|c| c.name == "vote"),
            "{mode:?}"
        );
    }
}

#[test]
fn metrics_export_is_byte_identical_across_scan_modes_under_chaos() {
    let export = |mode| {
        let obs = chaos_scan(mode);
        let metrics = serde_json::to_string_pretty(&obs.registry.to_json()).unwrap();
        let trace = obs.trace.to_jsonl();
        (metrics, trace)
    };
    let seq = export(ScanMode::Sequential);
    let par = export(ScanMode::Parallel);
    assert_eq!(seq.0, par.0, "metrics JSON must not depend on scheduling");
    assert_eq!(seq.1, par.1, "span tree must not depend on scheduling");
    // And the chaos actually left fingerprints worth exporting.
    let obs = chaos_scan(ScanMode::Sequential);
    assert!(obs.registry.counter("vmi_retries_total") > 0);
    assert!(obs.registry.counter("hv_fault_injections_total") > 0);
    assert_eq!(obs.registry.counter("scan_verdict_suspect_total"), 1);
}

#[test]
fn json_export_round_trips_through_the_parser() {
    let obs = chaos_scan(ScanMode::Sequential);
    let rendered = serde_json::to_string_pretty(&obs.registry.to_json()).unwrap();
    let parsed = serde_json::from_str(&rendered).expect("exported metrics must re-parse");

    let counters = parsed
        .get("counters")
        .and_then(|c| c.as_object())
        .expect("counters object");
    for (name, value) in counters {
        let u = value.as_u64().expect("counters are integers");
        assert_eq!(u, obs.registry.counter(name), "{name}");
    }
    assert!(counters.iter().any(|(k, _)| k == "scan_rounds_total"));

    let gauges = parsed
        .get("gauges")
        .and_then(|g| g.as_object())
        .expect("gauges object");
    for (name, value) in gauges {
        let f = value.as_f64().expect("gauges are numbers");
        assert_eq!(Some(f), obs.registry.gauge(name), "{name}");
    }

    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("scan_vm_capture_ms"))
        .expect("per-VM capture histogram");
    let h = obs.registry.histogram("scan_vm_capture_ms").unwrap();
    assert_eq!(
        hist.get("count").and_then(serde_json::Value::as_u64),
        Some(h.count())
    );
}

#[test]
fn prometheus_text_export_is_well_formed() {
    let obs = chaos_scan(ScanMode::Parallel);
    let text = obs.registry.to_prometheus_text();
    assert!(!text.is_empty());
    let mut samples = 0usize;
    for line in text.lines() {
        assert!(
            mc_obs::is_valid_prometheus_line(line),
            "bad exposition line: {line:?}"
        );
        if !line.starts_with('#') && !line.is_empty() {
            samples += 1;
        }
    }
    assert!(samples > 0, "exposition must carry sample lines");
    assert!(text.contains("scan_rounds_total"));
    assert!(text.contains("scan_vm_capture_ms"));
}

#[test]
fn trace_jsonl_is_one_parsable_span_per_line() {
    let obs = chaos_scan(ScanMode::Sequential);
    let jsonl = obs.trace.to_jsonl();
    let mut names = Vec::new();
    for line in jsonl.lines() {
        let span = serde_json::from_str(line).expect("each trace line must be standalone JSON");
        names.push(
            span.get("name")
                .and_then(|n| n.as_str())
                .expect("span name")
                .to_string(),
        );
        assert!(span
            .get("duration_ns")
            .and_then(serde_json::Value::as_u64)
            .is_some());
    }
    assert_eq!(names.first().map(String::as_str), Some("check_pool"));
    // Depth-first: every VM contributes capture -> page_map -> parse ->
    // hash, then the pool-level vote closes the scan.
    assert_eq!(names.iter().filter(|n| *n == "capture").count(), 6);
    assert_eq!(names.last().map(String::as_str), Some("vote"));
}
