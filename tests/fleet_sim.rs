//! Randomized cloud-simulation property suite for the fleet scheduler.
//!
//! Each seeded case generates a random fleet topology *with ground truth*
//! ([`modchecker_repro::fleetgen::random_fleet`]): pool count and sizes,
//! module sets, infection placement (code patches, DKOM hiding) and fault
//! plans (lost VMs, transient read noise). The oracle then holds in all
//! four execution-mode combinations (pairwise/canonical × sequential/
//! sharded), plus a fifth mode layering the per-bucket static pre-pass on
//! canonical comparison:
//!
//! * every infected `(VM, module)` is flagged `Suspect`;
//! * no clean VM is flagged anywhere — in particular the vote-invisible
//!   IAT pivot stays vote-clean in *every* mode;
//! * per-unit quorum degradation matches the fault plan exactly;
//! * lost VMs are `Unscannable`, never suspects;
//! * under the pre-pass, every stealth (IAT-pivot) victim is statically
//!   flagged, nothing outside `infected ∪ stealth` ever is, and the
//!   analyzer ran at most once per content bucket per unit;
//! * within one compare strategy, sharded and sequential sweeps serialize
//!   to byte-identical `FleetReport` JSON.
//!
//! Every assertion message carries the reproducing seed. Case count
//! defaults to 200 (the CI smoke floor) and is overridable via
//! `FLEET_SIM_CASES`.

use modchecker::{
    CheckConfig, CompareStrategy, FleetConfig, FleetReport, FleetScheduler, QuorumStatus,
    RetryPolicy, VerdictStatus,
};
use modchecker_repro::fleetgen::{random_fleet, FleetBed};

fn case_count() -> u64 {
    std::env::var("FLEET_SIM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// A 6-retry budget makes the generator's 2% transient noise statistically
/// invisible (loss probability ~1e-12 per read), so the oracle never has
/// to model retry exhaustion.
fn config(compare: CompareStrategy) -> CheckConfig {
    CheckConfig {
        compare,
        retry: RetryPolicy::with_max_retries(6),
        ..CheckConfig::default()
    }
}

fn run_mode(
    bed: &FleetBed,
    compare: CompareStrategy,
    shards: usize,
    inflight: usize,
) -> FleetReport {
    let sched = FleetScheduler::new(FleetConfig {
        check: config(compare),
        shards,
        max_inflight_per_vm: inflight,
    });
    sched.sweep(&bed.hv, &bed.fleet)
}

fn assert_oracle(seed: u64, mode: &str, bed: &FleetBed, report: &FleetReport) {
    let ctx = format!("seed {seed}, mode {mode}");
    assert_eq!(
        report.units_failed(),
        0,
        "no unit may fail as a whole ({ctx})"
    );
    // The flagged set is exactly the infected set: every infected
    // (pool, module, vm) flagged, no clean VM flagged.
    assert_eq!(
        report.suspects(),
        bed.truth.infected,
        "flagged set != infected set ({ctx})"
    );

    assert_eq!(report.pools.len(), bed.truth.consensus.len(), "{ctx}");
    for (pool, (truth_pool, truth_modules)) in report.pools.iter().zip(&bed.truth.consensus) {
        assert_eq!(&pool.pool, truth_pool, "pool order ({ctx})");
        let lists = pool
            .lists
            .as_ref()
            .unwrap_or_else(|| panic!("{truth_pool}: list scan failed ({ctx})"));
        let mut consensus = lists.consensus_modules.clone();
        consensus.sort();
        assert_eq!(
            &consensus, truth_modules,
            "consensus module set ({truth_pool}, {ctx})"
        );
        assert_eq!(
            pool.units.len(),
            truth_modules.len(),
            "one unit per consensus module ({truth_pool}, {ctx})"
        );

        for unit in &pool.units {
            let r = unit
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{truth_pool}/{}: {e} ({ctx})", unit.module));
            let expected_quorum = if bed
                .truth
                .degraded
                .contains(&(pool.pool.clone(), unit.module.clone()))
            {
                QuorumStatus::Degraded
            } else {
                QuorumStatus::Full
            };
            assert_eq!(
                r.quorum, expected_quorum,
                "quorum ({truth_pool}/{}, {ctx})",
                unit.module
            );
            for v in &r.verdicts {
                let lost = bed
                    .truth
                    .lost
                    .contains(&(pool.pool.clone(), v.vm_name.clone()));
                if lost {
                    assert_eq!(
                        v.status,
                        VerdictStatus::Unscannable,
                        "lost VM must be unscannable, not voted on ({truth_pool}/{}/{}, {ctx})",
                        unit.module,
                        v.vm_name
                    );
                }
            }
        }
    }
}

/// Canonical comparison with the per-bucket static pre-pass on top.
/// Returns the scheduler too so the caller can audit `analysis_runs`.
fn run_prepass_mode(
    bed: &FleetBed,
    shards: usize,
    inflight: usize,
) -> (FleetScheduler, FleetReport) {
    let sched = FleetScheduler::new(FleetConfig {
        check: CheckConfig {
            static_prepass: true,
            ..config(CompareStrategy::Canonical)
        },
        shards,
        max_inflight_per_vm: inflight,
    });
    let report = sched.sweep(&bed.hv, &bed.fleet);
    (sched, report)
}

/// Pre-pass-specific oracle: stealth victims are exactly the extra VMs the
/// static pass may name, and the per-bucket cache bounds analyzer work.
fn assert_prepass_oracle(seed: u64, bed: &FleetBed, sched: &FleetScheduler, report: &FleetReport) {
    let ctx = format!("seed {seed}, mode canonical+prepass");
    let mut flagged: Vec<(String, String, String)> = Vec::new();
    let mut run_budget = 0u64;
    for pool in &report.pools {
        for unit in &pool.units {
            let Ok(r) = &unit.result else { continue };
            for vm in r.statically_flagged_vms() {
                flagged.push((pool.pool.clone(), unit.module.clone(), vm.to_string()));
            }
            // One run for the clean bucket, plus at most one per infected
            // or stealth capture of this unit (each distinct content).
            let extra = bed
                .truth
                .infected
                .iter()
                .chain(&bed.truth.stealth)
                .filter(|(p, m, _)| p == &pool.pool && m == &unit.module)
                .count() as u64;
            run_budget += 1 + extra;
        }
    }
    flagged.sort();
    for s in &bed.truth.stealth {
        assert!(
            flagged.contains(s),
            "stealth victim not statically flagged: {s:?} ({ctx})\nflagged: {flagged:?}"
        );
    }
    for f in &flagged {
        assert!(
            bed.truth.infected.contains(f) || bed.truth.stealth.contains(f),
            "clean VM statically flagged: {f:?} ({ctx})"
        );
    }
    let runs = sched.analysis_stats().runs;
    assert!(
        runs <= run_budget,
        "analyzer ran {runs} times, bucket bound is {run_budget} ({ctx})"
    );
}

fn render(report: &FleetReport) -> String {
    serde_json::to_string_pretty(&report.to_json()).expect("report serializes")
}

#[test]
fn randomized_fleets_match_the_oracle_in_all_four_modes() {
    let cases = case_count();
    for seed in 0..cases {
        let bed = random_fleet(seed);
        let pairwise_seq = run_mode(&bed, CompareStrategy::Pairwise, 1, 1);
        assert_oracle(seed, "pairwise/sequential", &bed, &pairwise_seq);
        let pairwise_sharded = run_mode(&bed, CompareStrategy::Pairwise, 8, 4);
        assert_oracle(seed, "pairwise/sharded", &bed, &pairwise_sharded);
        let canonical_seq = run_mode(&bed, CompareStrategy::Canonical, 1, 1);
        assert_oracle(seed, "canonical/sequential", &bed, &canonical_seq);
        let canonical_sharded = run_mode(&bed, CompareStrategy::Canonical, 8, 4);
        assert_oracle(seed, "canonical/sharded", &bed, &canonical_sharded);

        // Fifth mode: canonical comparison + per-bucket static pre-pass.
        // The vote oracle is unchanged (the IAT pivot stays vote-clean);
        // the pre-pass oracle adds the stealth and run-bound checks.
        let (prepass_sched, prepass_seq) = run_prepass_mode(&bed, 1, 1);
        assert_oracle(seed, "canonical+prepass/sequential", &bed, &prepass_seq);
        assert_prepass_oracle(seed, &bed, &prepass_sched, &prepass_seq);
        let (sharded_sched, prepass_sharded) = run_prepass_mode(&bed, 8, 4);
        assert_oracle(seed, "canonical+prepass/sharded", &bed, &prepass_sharded);
        assert_prepass_oracle(seed, &bed, &sharded_sched, &prepass_sharded);

        // Execution mode must not change a byte of the report.
        assert_eq!(
            render(&pairwise_seq),
            render(&pairwise_sharded),
            "pairwise sweep not shard-invariant (seed {seed})"
        );
        assert_eq!(
            render(&canonical_seq),
            render(&canonical_sharded),
            "canonical sweep not shard-invariant (seed {seed})"
        );
        assert_eq!(
            render(&prepass_seq),
            render(&prepass_sharded),
            "prepass sweep not shard-invariant (seed {seed})"
        );
    }
}
