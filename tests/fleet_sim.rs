//! Randomized cloud-simulation property suite for the fleet scheduler.
//!
//! Each seeded case generates a random fleet topology *with ground truth*
//! ([`modchecker_repro::fleetgen::random_fleet`]): pool count and sizes,
//! module sets, infection placement (code patches, DKOM hiding) and fault
//! plans (lost VMs, transient read noise). The oracle then holds in all
//! four execution-mode combinations (pairwise/canonical × sequential/
//! sharded), plus a fifth mode layering the per-bucket static pre-pass on
//! canonical comparison:
//!
//! * every infected `(VM, module)` is flagged `Suspect`;
//! * no clean VM is flagged anywhere — in particular the vote-invisible
//!   IAT pivot stays vote-clean in *every* mode;
//! * per-unit quorum degradation matches the fault plan exactly;
//! * lost VMs are `Unscannable`, never suspects;
//! * under the pre-pass, every stealth (IAT-pivot) victim is statically
//!   flagged, nothing outside `infected ∪ stealth` ever is, and the
//!   analyzer ran at most once per content bucket per unit;
//! * within one compare strategy, sharded and sequential sweeps serialize
//!   to byte-identical `FleetReport` JSON.
//!
//! Every assertion message carries the reproducing seed. Case count
//! defaults to 200 (the CI smoke floor) and is overridable via
//! `FLEET_SIM_CASES`.

use modchecker::{
    CheckConfig, CompareStrategy, FleetConfig, FleetReport, FleetScheduler, QuorumStatus,
    RetryPolicy, VerdictStatus,
};
use modchecker_repro::fleetgen::{random_fleet, FleetBed};

fn case_count() -> u64 {
    std::env::var("FLEET_SIM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// A 6-retry budget makes the generator's 2% transient noise statistically
/// invisible (loss probability ~1e-12 per read), so the oracle never has
/// to model retry exhaustion.
fn config(compare: CompareStrategy) -> CheckConfig {
    CheckConfig {
        compare,
        retry: RetryPolicy::with_max_retries(6),
        ..CheckConfig::default()
    }
}

fn run_mode(
    bed: &FleetBed,
    compare: CompareStrategy,
    shards: usize,
    inflight: usize,
) -> FleetReport {
    let sched = FleetScheduler::new(FleetConfig {
        check: config(compare),
        shards,
        max_inflight_per_vm: inflight,
    });
    sched.sweep(&bed.hv, &bed.fleet)
}

fn assert_oracle(seed: u64, mode: &str, bed: &FleetBed, report: &FleetReport) {
    let ctx = format!("seed {seed}, mode {mode}");
    assert_eq!(
        report.units_failed(),
        0,
        "no unit may fail as a whole ({ctx})"
    );
    // The flagged set is exactly the infected set: every infected
    // (pool, module, vm) flagged, no clean VM flagged.
    assert_eq!(
        report.suspects(),
        bed.truth.infected,
        "flagged set != infected set ({ctx})"
    );

    assert_eq!(report.pools.len(), bed.truth.consensus.len(), "{ctx}");
    for (pool, (truth_pool, truth_modules)) in report.pools.iter().zip(&bed.truth.consensus) {
        assert_eq!(&pool.pool, truth_pool, "pool order ({ctx})");
        let lists = pool
            .lists
            .as_ref()
            .unwrap_or_else(|| panic!("{truth_pool}: list scan failed ({ctx})"));
        let mut consensus = lists.consensus_modules.clone();
        consensus.sort();
        assert_eq!(
            &consensus, truth_modules,
            "consensus module set ({truth_pool}, {ctx})"
        );
        assert_eq!(
            pool.units.len(),
            truth_modules.len(),
            "one unit per consensus module ({truth_pool}, {ctx})"
        );

        for unit in &pool.units {
            let r = unit
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{truth_pool}/{}: {e} ({ctx})", unit.module));
            let expected_quorum = if bed
                .truth
                .degraded
                .contains(&(pool.pool.clone(), unit.module.clone()))
            {
                QuorumStatus::Degraded
            } else {
                QuorumStatus::Full
            };
            assert_eq!(
                r.quorum, expected_quorum,
                "quorum ({truth_pool}/{}, {ctx})",
                unit.module
            );
            for v in &r.verdicts {
                let lost = bed
                    .truth
                    .lost
                    .contains(&(pool.pool.clone(), v.vm_name.clone()));
                if lost {
                    assert_eq!(
                        v.status,
                        VerdictStatus::Unscannable,
                        "lost VM must be unscannable, not voted on ({truth_pool}/{}/{}, {ctx})",
                        unit.module,
                        v.vm_name
                    );
                }
            }
        }
    }
}

/// Canonical comparison with the per-bucket static pre-pass on top.
/// Returns the scheduler too so the caller can audit `analysis_runs`.
fn run_prepass_mode(
    bed: &FleetBed,
    shards: usize,
    inflight: usize,
) -> (FleetScheduler, FleetReport) {
    let sched = FleetScheduler::new(FleetConfig {
        check: CheckConfig {
            static_prepass: true,
            ..config(CompareStrategy::Canonical)
        },
        shards,
        max_inflight_per_vm: inflight,
    });
    let report = sched.sweep(&bed.hv, &bed.fleet);
    (sched, report)
}

/// Pre-pass-specific oracle: stealth victims are exactly the extra VMs the
/// static pass may name, and the per-bucket cache bounds analyzer work.
fn assert_prepass_oracle(seed: u64, bed: &FleetBed, sched: &FleetScheduler, report: &FleetReport) {
    let ctx = format!("seed {seed}, mode canonical+prepass");
    let mut flagged: Vec<(String, String, String)> = Vec::new();
    let mut run_budget = 0u64;
    for pool in &report.pools {
        for unit in &pool.units {
            let Ok(r) = &unit.result else { continue };
            for vm in r.statically_flagged_vms() {
                flagged.push((pool.pool.clone(), unit.module.clone(), vm.to_string()));
            }
            // One run for the clean bucket, plus at most one per infected
            // or stealth capture of this unit (each distinct content).
            let extra = bed
                .truth
                .infected
                .iter()
                .chain(&bed.truth.stealth)
                .filter(|(p, m, _)| p == &pool.pool && m == &unit.module)
                .count() as u64;
            run_budget += 1 + extra;
        }
    }
    flagged.sort();
    for s in &bed.truth.stealth {
        assert!(
            flagged.contains(s),
            "stealth victim not statically flagged: {s:?} ({ctx})\nflagged: {flagged:?}"
        );
    }
    for f in &flagged {
        assert!(
            bed.truth.infected.contains(f) || bed.truth.stealth.contains(f),
            "clean VM statically flagged: {f:?} ({ctx})"
        );
    }
    let runs = sched.analysis_stats().runs;
    assert!(
        runs <= run_budget,
        "analyzer ran {runs} times, bucket bound is {run_budget} ({ctx})"
    );
}

fn render(report: &FleetReport) -> String {
    serde_json::to_string_pretty(&report.to_json()).expect("report serializes")
}

#[test]
fn randomized_fleets_match_the_oracle_in_all_four_modes() {
    let cases = case_count();
    for seed in 0..cases {
        let bed = random_fleet(seed);
        let pairwise_seq = run_mode(&bed, CompareStrategy::Pairwise, 1, 1);
        assert_oracle(seed, "pairwise/sequential", &bed, &pairwise_seq);
        let pairwise_sharded = run_mode(&bed, CompareStrategy::Pairwise, 8, 4);
        assert_oracle(seed, "pairwise/sharded", &bed, &pairwise_sharded);
        let canonical_seq = run_mode(&bed, CompareStrategy::Canonical, 1, 1);
        assert_oracle(seed, "canonical/sequential", &bed, &canonical_seq);
        let canonical_sharded = run_mode(&bed, CompareStrategy::Canonical, 8, 4);
        assert_oracle(seed, "canonical/sharded", &bed, &canonical_sharded);

        // Fifth mode: canonical comparison + per-bucket static pre-pass.
        // The vote oracle is unchanged (the IAT pivot stays vote-clean);
        // the pre-pass oracle adds the stealth and run-bound checks.
        let (prepass_sched, prepass_seq) = run_prepass_mode(&bed, 1, 1);
        assert_oracle(seed, "canonical+prepass/sequential", &bed, &prepass_seq);
        assert_prepass_oracle(seed, &bed, &prepass_sched, &prepass_seq);
        let (sharded_sched, prepass_sharded) = run_prepass_mode(&bed, 8, 4);
        assert_oracle(seed, "canonical+prepass/sharded", &bed, &prepass_sharded);
        assert_prepass_oracle(seed, &bed, &sharded_sched, &prepass_sharded);

        // Execution mode must not change a byte of the report.
        assert_eq!(
            render(&pairwise_seq),
            render(&pairwise_sharded),
            "pairwise sweep not shard-invariant (seed {seed})"
        );
        assert_eq!(
            render(&canonical_seq),
            render(&canonical_sharded),
            "canonical sweep not shard-invariant (seed {seed})"
        );
        assert_eq!(
            render(&prepass_seq),
            render(&prepass_sharded),
            "prepass sweep not shard-invariant (seed {seed})"
        );
    }
}

// ---------------------------------------------------------------------
// Adversarial mode: active adversaries vs. the full defense stack.
// ---------------------------------------------------------------------

use modchecker::{ContinuousMonitor, MonitorConfig, ScanJitter};
use modchecker_repro::fleetgen::{adversarial_fleet, AdversaryKind};
use modchecker_repro::hypervisor::RoundCtx;

const PERIOD_NS: u64 = 1_000_000_000;
const ROUNDS: usize = 3;

/// The detection-rate regression gate: over `case_count()` seeded fleets
/// mixing active adversaries (DKOM unlinking, scrub-race restorers,
/// checker blinding — plus clean pools), every ground-truth-detectable
/// instance is detected through its intended channel and *nothing else*
/// is ever flagged:
///
/// * `dkom-unlink`: invisible to the jittered polling rounds (the module
///   is not even in the consensus), caught by the cross-view
///   hidden-module vote with all `n` VMs voting;
/// * `scrub-race`: each round's verdict matches the jitter oracle exactly
///   (suspect iff the scan-phase offset exceeds the learned restore
///   window); rounds the restore does cover leave the tamper-evidence
///   generation trail instead — the union always detects;
/// * `blind-checker`: every polling round votes clean (the decoy is
///   coherent), caught by the cross-view unlisted-image vote attributed
///   to the victim entry by its unique `SizeOfImage`;
/// * clean pools: zero suspects, zero cross-view findings, zero
///   tamper-evidence flags across every round — the false-positive pin.
///
/// Every assertion message carries the reproducing seed.
#[test]
fn adversarial_fleets_are_detected_via_their_intended_channels() {
    let cases = case_count();
    for seed in 0..cases {
        let (mut bed, mut replay) = adversarial_fleet(seed);
        let jitter = ScanJitter {
            seed: seed ^ 0x5EED_1A57,
            max_ns: 1_000_000,
        };
        let monitors: Vec<ContinuousMonitor> = bed
            .truth
            .consensus
            .iter()
            .map(|(_, modules)| {
                ContinuousMonitor::new(MonitorConfig {
                    modules: modules.clone(),
                    check: CheckConfig {
                        tamper_evidence: true,
                        ..CheckConfig::default()
                    },
                    scan_jitter: Some(jitter),
                    ..MonitorConfig::default()
                })
            })
            .collect();

        // Suspect VM names per (pool index, module, round).
        // Per pool: rounds, each a list of (module, sorted suspect names).
        type RoundSuspects = Vec<(String, Vec<String>)>;
        let mut suspects: Vec<Vec<RoundSuspects>> = vec![Vec::new(); bed.fleet.pools.len()];
        for round in 0..ROUNDS {
            let ctx = RoundCtx {
                round,
                period_ns: PERIOD_NS,
                scan_offset_ns: jitter.offset_ns(round),
            };
            replay
                .step(&mut bed.hv, &ctx)
                .unwrap_or_else(|e| panic!("seed {seed} round {round}: replay failed: {e}"));
            for (p, monitor) in monitors.iter().enumerate() {
                let vms = &bed.fleet.pools[p].vms;
                let mut this_round = Vec::new();
                for (module, result) in monitor.run_round(&bed.hv, vms) {
                    let report = result.unwrap_or_else(|e| {
                        panic!("seed {seed} round {round} pool{p} {module}: {e}")
                    });
                    let mut names: Vec<String> =
                        report.suspects().map(|v| v.vm_name.clone()).collect();
                    names.sort();
                    this_round.push((module, names));
                }
                suspects[p].push(this_round);
            }
        }

        for (p, monitor) in monitors.iter().enumerate() {
            let pool_name = &bed.fleet.pools[p].name;
            let n = bed.fleet.pools[p].vms.len();
            let adversary = bed.truth.evasive.iter().find(|e| &e.pool == pool_name);
            let cv = monitor
                .run_crossview(&bed.hv, &bed.fleet.pools[p].vms)
                .unwrap_or_else(|e| panic!("seed {seed} {pool_name}: cross-view failed: {e}"));
            let flagged = monitor.silent_restores();

            match adversary.map(|e| e.kind) {
                None => {
                    for (round, mods) in suspects[p].iter().enumerate() {
                        for (module, names) in mods {
                            assert!(
                                names.is_empty(),
                                "seed {seed} {pool_name} round {round} {module}: \
                                 clean pool flagged {names:?}"
                            );
                        }
                    }
                    assert!(
                        cv.is_clean(),
                        "seed {seed} {pool_name}: clean pool cross-view findings: {cv}"
                    );
                    assert!(
                        flagged.is_empty(),
                        "seed {seed} {pool_name}: clean pool tamper flags: {flagged:?}"
                    );
                }
                Some(AdversaryKind::Dkom) => {
                    let truth = adversary.unwrap();
                    for (round, mods) in suspects[p].iter().enumerate() {
                        for (module, names) in mods {
                            assert!(
                                names.is_empty(),
                                "seed {seed} {pool_name} round {round} {module}: \
                                 polling must not see the unlinked module's pool"
                            );
                        }
                    }
                    let hidden: Vec<_> = cv.hidden_modules().collect();
                    assert_eq!(
                        hidden.len(),
                        1,
                        "seed {seed} {pool_name}: expected one hidden-module finding: {cv}"
                    );
                    assert_eq!(
                        hidden[0].module.as_deref(),
                        Some(truth.module.as_str()),
                        "seed {seed} {pool_name}"
                    );
                    assert_eq!(
                        hidden[0].votes, n,
                        "seed {seed} {pool_name}: unlinked on all VMs, all must vote"
                    );
                    assert_eq!(
                        cv.unlisted_images().count(),
                        0,
                        "seed {seed} {pool_name}: {cv}"
                    );
                    assert!(flagged.is_empty(), "seed {seed} {pool_name}: {flagged:?}");
                }
                Some(AdversaryKind::Scrub) => {
                    let truth = adversary.unwrap();
                    let victim = truth.vm.clone().expect("scrub truth names its victim");
                    // Jitter channel: suspect exactly on rounds whose
                    // scan-phase offset exceeds the learned window.
                    let mut jitter_hits = 0usize;
                    for (round, mods) in suspects[p].iter().enumerate() {
                        for (module, names) in mods {
                            if *module == truth.module && jitter.offset_ns(round) > truth.window_ns
                            {
                                assert_eq!(
                                    names,
                                    &vec![victim.clone()],
                                    "seed {seed} {pool_name} round {round}: jittered scan \
                                     (offset {} > window {}) must catch the victim",
                                    jitter.offset_ns(round),
                                    truth.window_ns
                                );
                                jitter_hits += 1;
                            } else {
                                assert!(
                                    names.is_empty(),
                                    "seed {seed} {pool_name} round {round} {module}: \
                                     unexpected suspects {names:?}"
                                );
                            }
                        }
                    }
                    // Tamper-evidence channel: a round r ≥ 1 whose
                    // at-scan bytes equal round r−1's leaves the moved-
                    // generations/identical-bytes trail.
                    let visible = |r: usize| jitter.offset_ns(r) > truth.window_ns;
                    let tamper_expected = (1..ROUNDS).any(|r| visible(r) == visible(r - 1));
                    let expected_flag = (
                        bed.guests[p]
                            .iter()
                            .find(|g| bed.hv.vm(g.vm).unwrap().name == victim)
                            .unwrap()
                            .vm,
                        truth.module.clone(),
                    );
                    if tamper_expected {
                        assert_eq!(
                            flagged,
                            vec![expected_flag],
                            "seed {seed} {pool_name}: tamper evidence must flag the victim"
                        );
                    } else {
                        assert!(
                            flagged.is_empty() || flagged == vec![expected_flag],
                            "seed {seed} {pool_name}: stray tamper flags {flagged:?}"
                        );
                    }
                    assert!(
                        jitter_hits > 0 || tamper_expected,
                        "seed {seed} {pool_name}: scrub-race escaped both channels"
                    );
                    assert!(cv.is_clean(), "seed {seed} {pool_name}: {cv}");
                }
                Some(AdversaryKind::Blind) => {
                    let truth = adversary.unwrap();
                    for (round, mods) in suspects[p].iter().enumerate() {
                        for (module, names) in mods {
                            assert!(
                                names.is_empty(),
                                "seed {seed} {pool_name} round {round} {module}: \
                                 the coherent decoy must vote clean, got {names:?}"
                            );
                        }
                    }
                    let unlisted: Vec<_> = cv.unlisted_images().collect();
                    assert_eq!(
                        unlisted.len(),
                        1,
                        "seed {seed} {pool_name}: expected one unlisted-image finding: {cv}"
                    );
                    assert_eq!(
                        unlisted[0].module.as_deref(),
                        Some(truth.module.as_str()),
                        "seed {seed} {pool_name}: attribution by unique SizeOfImage"
                    );
                    assert_eq!(
                        unlisted[0].votes, n,
                        "seed {seed} {pool_name}: blinded on all VMs, all must vote"
                    );
                    assert_eq!(
                        cv.hidden_modules().count(),
                        0,
                        "seed {seed} {pool_name}: {cv}"
                    );
                    assert!(flagged.is_empty(), "seed {seed} {pool_name}: {flagged:?}");
                }
            }
        }
    }
}
