//! Golden snapshot tests: full `FleetReport` and metrics JSON pinned for
//! two fixed generator seeds under `tests/golden/`.
//!
//! The sweep is re-run in three execution configurations (sequential,
//! moderately sharded, heavily sharded); all three must serialize
//! byte-identically and match the pinned file. Refresh the snapshots
//! after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_fleet
//! ```
//!
//! (documented in README; a bare mismatch message repeats the recipe).

use std::fs;
use std::path::PathBuf;

use modchecker::{observe_fleet, FleetConfig, FleetScheduler};
use modchecker_repro::fleetgen::random_fleet;

const SEEDS: [u64; 2] = [11, 42];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test golden_fleet` to create it", path.display())
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}\nif the change is intentional, refresh with `UPDATE_GOLDEN=1 cargo test --test golden_fleet`"
    );
}

#[test]
fn fleet_report_and_metrics_json_are_pinned_and_mode_invariant() {
    for seed in SEEDS {
        let bed = random_fleet(seed);
        let mut first: Option<(modchecker::FleetReport, String)> = None;
        for (shards, inflight) in [(1, 1), (4, 2), (8, 4)] {
            let sched = FleetScheduler::new(FleetConfig {
                shards,
                max_inflight_per_vm: inflight,
                ..FleetConfig::default()
            });
            let report = sched.sweep(&bed.hv, &bed.fleet);
            let rendered =
                serde_json::to_string_pretty(&report.to_json()).expect("serializes") + "\n";
            match &first {
                None => first = Some((report, rendered)),
                Some((_, baseline)) => assert_eq!(
                    baseline, &rendered,
                    "seed {seed}: shards={shards} inflight={inflight} changed the report bytes"
                ),
            }
        }
        let (report, rendered) = first.expect("at least one configuration ran");
        check_golden(&format!("fleet_report_{seed}.json"), &rendered);

        let obs = observe_fleet(&report);
        let metrics =
            serde_json::to_string_pretty(&obs.registry.to_json()).expect("serializes") + "\n";
        check_golden(&format!("fleet_metrics_{seed}.json"), &metrics);
    }
}
