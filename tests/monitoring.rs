//! Continuous monitoring + remediation, and worm-regime behaviour,
//! end to end across crates.

use crossbeam::channel::unbounded;
use mc_attacks::{worm, Technique};
use mc_hypervisor::{AddressWidth, FaultPlan};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{
    remediate, CheckConfig, ContinuousMonitor, HealthPolicy, ModChecker, MonitorConfig,
    MonitorEvent, ScanMode,
};
use modchecker_repro::testbed::Testbed;

fn blueprints() -> Vec<ModuleBlueprint> {
    let w = AddressWidth::W32;
    vec![
        ModuleBlueprint::new("hal.dll", w, 16 * 1024),
        ModuleBlueprint::new("tcpip.sys", w, 16 * 1024),
    ]
}

#[test]
fn detect_remediate_verify_cycle() {
    // 7 VMs, 2 infected: clean VMs match 4 of 6 (> 3) and stay clean, so
    // the verdict isolates exactly the two victims.
    let mut bed = Testbed::cloud_with(7, AddressWidth::W32, &blueprints());
    for id in &bed.vm_ids {
        bed.hv.vm_mut(*id).unwrap().snapshot("clean");
    }

    // Infect two VMs in memory (a TCPIRPHOOK-style runtime hook).
    for i in [1usize, 3] {
        bed.guests[i]
            .patch_module(
                &mut bed.hv,
                "tcpip.sys",
                0x100B,
                &[0xE9, 0x44, 0x01, 0x00, 0x00],
            )
            .unwrap();
    }

    let monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into(), "tcpip.sys".into()],
        ..MonitorConfig::default()
    });

    let round = monitor.run_round(&bed.hv, &bed.vm_ids);
    let tcpip_report = round
        .iter()
        .find(|(m, _)| m == "tcpip.sys")
        .unwrap()
        .1
        .as_ref()
        .unwrap();
    let suspects: Vec<&str> = tcpip_report
        .suspects()
        .map(|v| v.vm_name.as_str())
        .collect();
    assert_eq!(suspects, vec!["dom2", "dom4"]);

    let reverted = remediate(&mut bed.hv, tcpip_report, "clean").unwrap();
    assert_eq!(reverted, vec!["dom2", "dom4"]);

    let round2 = monitor.run_round(&bed.hv, &bed.vm_ids);
    for (module, result) in round2 {
        assert!(result.unwrap().all_clean(), "{module} dirty after revert");
    }
}

#[test]
fn threaded_monitor_streams_events() {
    let mut bed = Testbed::cloud_with(4, AddressWidth::W32, &blueprints());
    bed.guests[0]
        .patch_module(&mut bed.hv, "hal.dll", 0x1002, &[0x90])
        .unwrap();

    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into(), "tcpip.sys".into()],
        check: CheckConfig {
            mode: ScanMode::Parallel,
            ..CheckConfig::default()
        },
        ..MonitorConfig::default()
    });
    let (tx, rx) = unbounded();
    let hv = &bed.hv;
    let ids = bed.vm_ids.clone();
    crossbeam::scope(|s| {
        let sender = tx.clone();
        s.spawn(move |_| monitor.run(hv, &ids, 3, &sender));
        drop(tx);
        let mut discrepancies = 0;
        let mut cleans = 0;
        for event in &rx {
            match event {
                MonitorEvent::Discrepancy { module, .. } => {
                    assert_eq!(module, "hal.dll");
                    discrepancies += 1;
                }
                MonitorEvent::Clean { module, .. } => {
                    assert_eq!(module, "tcpip.sys");
                    cleans += 1;
                }
                other => panic!("unexpected event: {other:?}"),
            }
        }
        assert_eq!(discrepancies, 3);
        assert_eq!(cleans, 3);
    })
    .unwrap();
}

#[test]
fn dead_vm_degrades_rounds_then_trips_the_breaker() {
    let mut bed = Testbed::cloud_with(5, AddressWidth::W32, &blueprints());
    // dom5 disappears for good after its first few reads.
    bed.hv
        .set_fault_plan(bed.vm_ids[4], Some(FaultPlan::none(3).lose_after(2)))
        .unwrap();

    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into()],
        health: HealthPolicy {
            failure_threshold: 2,
            cooldown_rounds: 3,
        },
        ..MonitorConfig::default()
    });
    let (tx, rx) = unbounded();
    monitor.run(&bed.hv, &bed.vm_ids, 4, &tx);
    drop(tx);
    let events: Vec<MonitorEvent> = rx.iter().collect();

    // Rounds 0-1 degrade (dom5 unscannable, survivors still vote clean);
    // the breaker trips at round 1 and rounds 2-3 run clean without dom5.
    let degraded = events
        .iter()
        .filter(|e| matches!(e, MonitorEvent::Degraded { .. }))
        .count();
    let clean = events
        .iter()
        .filter(|e| matches!(e, MonitorEvent::Clean { .. }))
        .count();
    assert_eq!((degraded, clean), (2, 2));
    assert!(events.iter().any(|e| matches!(
        e,
        MonitorEvent::VmQuarantined { vm_name, consecutive_failures: 2, .. } if vm_name == "dom5"
    )));
    assert!(!events
        .iter()
        .any(|e| matches!(e, MonitorEvent::Discrepancy { .. })));
    assert_eq!(monitor.quarantined(), vec![bed.vm_ids[4]]);
}

#[test]
fn worm_outbreak_alerts_even_without_majority() {
    let mut bed = Testbed::cloud_with(7, AddressWidth::W32, &blueprints());
    let bp = blueprints()
        .into_iter()
        .find(|b| b.name == "hal.dll")
        .unwrap();
    let infection = Technique::InlineHook.infection();
    let victims =
        worm::infect_fraction(&mut bed.hv, &bed.guests, &*infection, &bp.generate(), 0.72).unwrap();
    assert_eq!(victims.len(), 5, "5 of 7 infected — a strict majority");

    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    // Majority voting now *favors the worm*: infected VMs match 4 of 6
    // (> 3) and read as clean; the true-clean VMs are flagged. The paper's
    // §III claim is that the discrepancy signal itself survives:
    assert!(report.any_discrepancy());
    let flagged: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(flagged, vec!["dom6", "dom7"], "clean minority flagged");
    // ...which is precisely the false-alarm regime the paper warns about.
}
