//! Differential adversary × defense matrix.
//!
//! Each active adversary ([`mc_attacks::active`]) must *evade* the defenses
//! it is designed to evade — otherwise it is not testing anything — and be
//! *caught* once its counter-defense is enabled:
//!
//! | Adversary | Must evade | Must be caught by |
//! |---|---|---|
//! | DKOM unlink (all VMs) | list diff, content vote | cross-view hidden-module vote |
//! | scrub-race restorer | fixed-phase polling | scan-phase jitter; tamper evidence |
//! | checker blinding | the content vote | cross-view unlisted-image vote |
//!
//! Plus the jitter determinism property: a fixed jitter seed yields
//! byte-identical verdicts across scan modes and fleet shard counts.

use modchecker::{
    CheckConfig, CompareStrategy, ContinuousMonitor, CrossView, FleetConfig, FleetScheduler,
    ListDiff, ModChecker, MonitorConfig, ScanJitter, ScanMode,
};
use modchecker_repro::attacks::active::{BlindChecker, DkomUnlink, ScrubRace};
use modchecker_repro::fleetgen::adversarial_fleet;
use modchecker_repro::guest::GuestOs;
use modchecker_repro::hypervisor::{AddressWidth, Hypervisor, Replay, VmId};
use modchecker_repro::pe::corpus::ModuleBlueprint;

const PERIOD_NS: u64 = 1_000_000_000; // 1 s nominal scan period

fn cloud(n: usize) -> (Hypervisor, Vec<GuestOs>, Vec<VmId>) {
    let mut hv = Hypervisor::new();
    let bps = vec![
        ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
        ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 12 * 1024),
    ];
    let guests = mc_guest::build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
    let ids = guests.iter().map(|g| g.vm).collect();
    (hv, guests, ids)
}

/// Verdict-relevant JSON: everything except simulated times and VMI
/// counters (which legitimately differ across modes).
fn verdict_bytes(report: &modchecker::PoolCheckReport) -> String {
    let mut v = report.to_json();
    if let serde_json::Value::Object(ref mut obj) = v {
        obj.retain(|(k, _)| k != "times_ms" && k != "vmi");
    }
    serde_json::to_string_pretty(&v).unwrap()
}

#[test]
fn dkom_unlink_on_every_vm_evades_list_walk_and_is_caught_by_cross_view() {
    let (mut hv, guests, ids) = cloud(5);

    // Pre-adversary baseline: the module is in the pool consensus.
    let before = ListDiff::scan(&hv, &ids).unwrap();
    assert!(before.consensus_modules.contains(&"ndis.sys".to_string()));

    let mut replay = Replay::new();
    replay.add(DkomUnlink::new(&guests, "ndis.sys"));
    replay
        .step(
            &mut hv,
            &modchecker_repro::hypervisor::RoundCtx::unjittered(0, PERIOD_NS),
        )
        .unwrap();

    // EVASION — the list diff has no majority left to vote with: the
    // module simply vanishes from the consensus, anomaly-free.
    let after = ListDiff::scan(&hv, &ids).unwrap();
    assert!(
        !after.consensus_modules.contains(&"ndis.sys".to_string()),
        "unlinked-everywhere module must drop out of the consensus"
    );
    assert!(
        after.anomalies.is_empty(),
        "no listing disagrees with any other: {:?}",
        after.anomalies
    );

    // EVASION — the whole-pool sweep enumerates work from the consensus,
    // so the hidden module is never even scanned: one clean unit
    // (hal.dll) and zero suspects anywhere.
    let (lists, results) = ModChecker::new().check_all_modules(&hv, &ids).unwrap();
    assert_eq!(lists.consensus_modules, vec!["hal.dll".to_string()]);
    for (module, result) in &results {
        let report = result.as_ref().unwrap();
        assert_eq!(
            report.suspects().count(),
            0,
            "list-walk-only sweep must see nothing ({module})"
        );
    }

    // DETECTION — the orphaned entries and still-mapped images vote.
    let cv = CrossView::new().scan(&hv, &ids).unwrap();
    let hidden: Vec<_> = cv.hidden_modules().collect();
    assert_eq!(hidden.len(), 1, "{cv}");
    assert_eq!(hidden[0].module.as_deref(), Some("ndis.sys"));
    assert_eq!(hidden[0].votes, 5);
    // The untouched module stays unflagged.
    assert_eq!(cv.unlisted_images().count(), 0, "{cv}");
}

fn scrub_monitor(jitter: Option<ScanJitter>, tamper: bool) -> ContinuousMonitor {
    ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into(), "ndis.sys".into()],
        check: CheckConfig {
            tamper_evidence: tamper,
            ..CheckConfig::default()
        },
        scan_jitter: jitter,
        ..MonitorConfig::default()
    })
}

const SCRUB_WINDOW_NS: u64 = 10_000;

fn scrub_bed() -> (Hypervisor, Vec<GuestOs>, Vec<VmId>, ScrubRace) {
    let (hv, guests, ids) = cloud(5);
    let adv = ScrubRace::new(
        &hv,
        &guests[1..=1], // dom2 is the foothold
        "hal.dll",
        0x1003,
        vec![0xD1, 0xD2, 0xD3],
        SCRUB_WINDOW_NS,
    )
    .unwrap();
    (hv, guests, ids, adv)
}

#[test]
fn scrub_race_evades_fixed_phase_polling() {
    let (mut hv, _guests, ids, adv) = scrub_bed();
    let mut replay = Replay::new();
    replay.add(adv);
    let monitor = scrub_monitor(None, false);
    for round in 0..4 {
        let ctx = monitor.round_ctx(round, PERIOD_NS);
        assert_eq!(ctx.scan_offset_ns, 0, "no jitter configured");
        replay.step(&mut hv, &ctx).unwrap();
        for (module, result) in monitor.run_round(&hv, &ids) {
            let report = result.unwrap();
            assert_eq!(
                report.suspects().count(),
                0,
                "round {round} {module}: fixed-phase polling must read clean"
            );
        }
    }
    assert!(monitor.silent_restores().is_empty(), "tamper evidence off");
}

#[test]
fn scrub_race_is_caught_by_scan_phase_jitter_exactly_on_predicted_rounds() {
    let (mut hv, _guests, ids, adv) = scrub_bed();
    let mut replay = Replay::new();
    replay.add(adv);
    let jitter = ScanJitter {
        seed: 42,
        max_ns: 1_000_000,
    };
    let monitor = scrub_monitor(Some(jitter), false);
    let mut caught = 0usize;
    for round in 0..4 {
        let ctx = monitor.round_ctx(round, PERIOD_NS);
        assert_eq!(ctx.scan_offset_ns, jitter.offset_ns(round), "pure function");
        replay.step(&mut hv, &ctx).unwrap();
        let results = monitor.run_round(&hv, &ids);
        let (_, hal) = &results[0];
        let hal = hal.as_ref().unwrap();
        let suspects: Vec<_> = hal.suspects().map(|v| v.vm_name.clone()).collect();
        if ctx.scan_offset_ns > SCRUB_WINDOW_NS {
            assert_eq!(
                suspects,
                vec!["dom2"],
                "round {round} (offset {}) scans mid-infection",
                ctx.scan_offset_ns
            );
            caught += 1;
        } else {
            assert!(suspects.is_empty(), "restored before a within-window scan");
        }
        // The unattacked module never flags.
        assert_eq!(results[1].1.as_ref().unwrap().suspects().count(), 0);
    }
    // With max_ns = 100 × the window, the seed-42 offsets land outside the
    // window on every one of the four rounds; at minimum the property
    // needs at least one catching round to be meaningful.
    assert!(caught > 0, "jitter never exceeded the restore window");
}

#[test]
fn scrub_race_is_caught_by_tamper_evidence_even_at_fixed_phase() {
    let (mut hv, guests, ids, adv) = scrub_bed();
    let mut replay = Replay::new();
    replay.add(adv);
    let monitor = scrub_monitor(None, true);
    for round in 0..3 {
        let ctx = monitor.round_ctx(round, PERIOD_NS);
        replay.step(&mut hv, &ctx).unwrap();
        for (module, result) in monitor.run_round(&hv, &ids) {
            assert_eq!(
                result.unwrap().suspects().count(),
                0,
                "round {round} {module}: bytes still read clean"
            );
        }
    }
    // Round 0 capture is a cold miss; rounds 1+ see moved generations with
    // identical bytes — the scrubbed-then-restored signature.
    let flagged = monitor.silent_restores();
    assert_eq!(
        flagged,
        vec![(guests[1].vm, "hal.dll".to_string())],
        "exactly the scrubbed (vm, module) pair must be flagged"
    );
    assert!(monitor.cache_stats().silent_restores >= 1);
}

#[test]
fn blind_checker_evades_the_content_vote_and_is_caught_by_cross_view() {
    let (mut hv, guests, ids) = cloud(5);
    let mut replay = Replay::new();
    replay.add(BlindChecker::new(
        &guests,
        "ndis.sys",
        0x1003,
        vec![0xCC, 0xCC],
    ));
    replay
        .step(
            &mut hv,
            &modchecker_repro::hypervisor::RoundCtx::unjittered(0, PERIOD_NS),
        )
        .unwrap();

    // EVASION — every capture reads the pristine decoy; the vote agrees.
    let report = ModChecker::new().check_pool(&hv, &ids, "ndis.sys").unwrap();
    assert!(
        report.all_clean(),
        "blinded captures must vote clean: {report}"
    );
    // EVASION — the list itself is intact: no diff anomaly either.
    let diff = ListDiff::scan(&hv, &ids).unwrap();
    assert!(diff.anomalies.is_empty(), "{:?}", diff.anomalies);

    // DETECTION — the truly mapped (and infected) image is claimed by no
    // entry; the sweep attributes it by its unique SizeOfImage.
    let cv = CrossView::new().scan(&hv, &ids).unwrap();
    let unlisted: Vec<_> = cv.unlisted_images().collect();
    assert_eq!(unlisted.len(), 1, "{cv}");
    assert_eq!(unlisted[0].module.as_deref(), Some("ndis.sys"));
    assert_eq!(unlisted[0].votes, 5);
    assert_eq!(cv.hidden_modules().count(), 0, "{cv}");
}

#[test]
fn clean_pool_trips_no_adversary_channel() {
    let (hv, _guests, ids) = cloud(4);
    let monitor = scrub_monitor(
        Some(ScanJitter {
            seed: 7,
            max_ns: 1_000_000,
        }),
        true,
    );
    for round in 0..3 {
        let _ = monitor.round_ctx(round, PERIOD_NS);
        for (module, result) in monitor.run_round(&hv, &ids) {
            assert!(result.unwrap().all_clean(), "round {round} {module}");
        }
    }
    assert!(monitor.silent_restores().is_empty());
    let cv = monitor.run_crossview(&hv, &ids).unwrap();
    assert!(cv.is_clean(), "{cv}");
    let m = monitor.metrics();
    assert!(m.counter("crossview_scans_total") >= 1);
}

/// Jitter determinism: with a fixed seed, the jittered monitor's verdicts
/// are byte-identical between sequential and parallel scan modes, and a
/// jittered fleet sweep is byte-identical across shard counts. The jitter
/// offsets themselves are a pure function of (seed, round) — nothing about
/// execution order can perturb them.
#[test]
fn jittered_verdicts_are_mode_and_shard_invariant() {
    for seed in 0..8u64 {
        let jitter = ScanJitter {
            seed: seed ^ 0x5EED_1A57,
            max_ns: 1_000_000,
        };
        let mut renders: Vec<Vec<String>> = Vec::new();
        for mode in [ScanMode::Sequential, ScanMode::Parallel] {
            let (mut bed, mut replay) = adversarial_fleet(seed);
            let monitor = ContinuousMonitor::new(MonitorConfig {
                modules: bed.truth.consensus[0].1.clone(),
                check: CheckConfig {
                    mode,
                    tamper_evidence: true,
                    ..CheckConfig::default()
                },
                scan_jitter: Some(jitter),
                ..MonitorConfig::default()
            });
            let pool_vms = bed.fleet.pools[0].vms.clone();
            let mut rounds = Vec::new();
            for round in 0..3 {
                let ctx = monitor.round_ctx(round, PERIOD_NS);
                replay.step(&mut bed.hv, &ctx).unwrap();
                for (module, result) in monitor.run_round(&bed.hv, &pool_vms) {
                    match result {
                        Ok(report) => rounds.push(verdict_bytes(&report)),
                        Err(e) => rounds.push(format!("{module}: {e}")),
                    }
                }
            }
            renders.push(rounds);
        }
        assert_eq!(
            renders[0], renders[1],
            "seed {seed}: sequential vs parallel verdict bytes diverged"
        );

        // Shard invariance of a full (jitter-phase-stepped) fleet sweep.
        let mut sweeps = Vec::new();
        for shards in [1usize, 4] {
            let (mut bed, mut replay) = adversarial_fleet(seed);
            for round in 0..2 {
                let ctx = modchecker_repro::hypervisor::RoundCtx {
                    round,
                    period_ns: PERIOD_NS,
                    scan_offset_ns: jitter.offset_ns(round),
                };
                replay.step(&mut bed.hv, &ctx).unwrap();
            }
            let sched = FleetScheduler::new(FleetConfig {
                check: CheckConfig {
                    compare: CompareStrategy::Canonical,
                    ..CheckConfig::default()
                },
                shards,
                max_inflight_per_vm: 2,
            });
            let report = sched.sweep(&bed.hv, &bed.fleet);
            sweeps.push(serde_json::to_string_pretty(&report.to_json()).unwrap());
        }
        assert_eq!(
            sweeps[0], sweeps[1],
            "seed {seed}: fleet sweep bytes diverged across shard counts"
        );
    }
}
