//! Chaos suite: the scanner must hold its verdicts — and never panic —
//! while the hypervisor injects deterministic faults underneath it.
//!
//! The invariants, in rough order of importance:
//!
//! 1. **No panics, ever.** Whatever the fault plan, `check_one` /
//!    `check_pool` return a report or a typed error.
//! 2. **Transient faults are invisible.** A clean pool under retryable
//!    fault rates scans fully clean with a full quorum — retries absorb
//!    the noise.
//! 3. **Degradation is graceful and honest.** VMs that drop out mid-scan
//!    leave the vote without dragging surviving verdicts with them, and
//!    the report's quorum status says what happened.
//! 4. **Determinism.** The same fault seed reproduces the same report,
//!    byte for byte.

use mc_hypervisor::{AddressWidth, FaultPlan, SimDuration};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{
    CheckConfig, ModChecker, QuorumStatus, RetryPolicy, ScanMode, VerdictErrorKind, VerdictStatus,
};
use modchecker_repro::testbed::Testbed;
use proptest::prelude::*;

fn bed(n: usize) -> Testbed {
    let w = AddressWidth::W32;
    Testbed::cloud_with(
        n,
        w,
        &[
            ModuleBlueprint::new("hal.dll", w, 16 * 1024),
            ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
        ],
    )
}

fn scanner(mode: ScanMode) -> ModChecker {
    ModChecker::with_config(CheckConfig {
        mode,
        ..CheckConfig::default()
    })
}

#[test]
fn clean_pool_under_transient_faults_scans_clean_with_full_quorum() {
    // The headline acceptance scenario: 8 VMs, 5% transient read faults
    // everywhere. The retry budget rides the noise out; nobody is flagged
    // and nobody drops out.
    for mode in [ScanMode::Sequential, ScanMode::Parallel] {
        let mut bed = bed(8);
        bed.hv.inject_fault_plan(FaultPlan::transient(1234, 0.05));
        let report = scanner(mode)
            .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
            .unwrap();
        assert!(
            report.all_clean(),
            "{mode:?}: transient faults flagged a VM"
        );
        assert!(!report.any_discrepancy());
        assert_eq!(report.quorum, QuorumStatus::Full, "{mode:?}");
        assert_eq!(report.scanned, 8);
        assert!(report.verdicts.iter().all(|v| v.error.is_none()));
    }
}

#[test]
fn infected_vm_is_still_named_under_fault_load() {
    // Fault injection must not blur the signal: with faults on every VM
    // and one real infection, the vote still pinpoints exactly the victim.
    let mut bed = bed(8);
    bed.guests[2]
        .patch_module(&mut bed.hv, "hal.dll", 0x1003, &[0xCC])
        .unwrap();
    bed.hv.inject_fault_plan(FaultPlan::transient(77, 0.05));
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert_eq!(report.quorum, QuorumStatus::Full);
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"]);
}

#[test]
fn vms_lost_mid_scan_degrade_quorum_without_disturbing_survivors() {
    // Baseline: 8 VMs, dom3 infected, no faults.
    let infect = |bed: &mut Testbed| {
        bed.guests[2]
            .patch_module(&mut bed.hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
    };
    let mut baseline_bed = bed(8);
    infect(&mut baseline_bed);
    let baseline = ModChecker::new()
        .check_pool(&baseline_bed.hv, &baseline_bed.vm_ids, "hal.dll")
        .unwrap();

    // Same pool, but two clean VMs die partway through their captures.
    let mut chaos_bed = bed(8);
    infect(&mut chaos_bed);
    for &idx in &[5usize, 6] {
        chaos_bed
            .hv
            .set_fault_plan(
                chaos_bed.vm_ids[idx],
                Some(FaultPlan::none(9).lose_after(4)),
            )
            .unwrap();
    }
    let report = ModChecker::new()
        .check_pool(&chaos_bed.hv, &chaos_bed.vm_ids, "hal.dll")
        .unwrap();

    assert_eq!(report.quorum, QuorumStatus::Degraded);
    assert_eq!(report.scanned, 6);
    let lost: Vec<&str> = report.unscannable().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(lost, vec!["dom6", "dom7"]);
    for v in report.unscannable() {
        assert_eq!(
            v.error.as_ref().unwrap().kind,
            VerdictErrorKind::VmUnreachable
        );
    }
    // Survivors keep exactly the verdicts they had with the full pool.
    for v in &report.verdicts {
        if v.status == VerdictStatus::Unscannable {
            continue;
        }
        let base = baseline
            .verdicts
            .iter()
            .find(|b| b.vm_name == v.vm_name)
            .unwrap();
        assert_eq!(v.clean, base.clean, "{}", v.vm_name);
        assert_eq!(v.status, base.status, "{}", v.vm_name);
        assert_eq!(v.suspect_parts, base.suspect_parts, "{}", v.vm_name);
    }
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom3"], "the infection survives the outage");
}

#[test]
fn pool_below_min_quorum_reports_lost_without_panicking() {
    let mut bed = bed(4);
    for &idx in &[1usize, 2, 3] {
        bed.hv
            .set_fault_plan(bed.vm_ids[idx], Some(FaultPlan::none(5).lose_after(0)))
            .unwrap();
    }
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert_eq!(report.scanned, 1);
    assert_eq!(report.quorum, QuorumStatus::Lost);
    // One capture alone proves nothing: every verdict is unscannable and
    // none is clean.
    assert!(report
        .verdicts
        .iter()
        .all(|v| v.status == VerdictStatus::Unscannable && !v.clean));
    assert_eq!(report.matrix.len(), 0);
}

#[test]
fn tight_deadline_is_a_typed_error_not_a_hang() {
    let mut bed = bed(4);
    bed.hv.inject_fault_plan(FaultPlan::transient(3, 0.1));
    let checker = ModChecker::with_config(CheckConfig {
        deadline: Some(SimDuration::from_micros(1)),
        ..CheckConfig::default()
    });
    let report = checker.check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
    assert_eq!(report.quorum, QuorumStatus::Lost);
    for v in &report.verdicts {
        assert_eq!(v.status, VerdictStatus::Unscannable);
        assert_eq!(v.error.as_ref().unwrap().kind, VerdictErrorKind::Deadline);
    }
}

#[test]
fn paused_vms_ride_out_within_the_retry_budget() {
    let mut bed = bed(5);
    // dom2 pauses for 2 attempts after its 6th read; the default backoff
    // schedule waits it out and the scan completes at full quorum.
    bed.hv
        .set_fault_plan(bed.vm_ids[1], Some(FaultPlan::none(8).pause_after(6, 2)))
        .unwrap();
    let report = ModChecker::new()
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap();
    assert_eq!(report.quorum, QuorumStatus::Full);
    assert!(report.all_clean());
}

#[test]
fn same_seed_reproduces_the_report_byte_for_byte() {
    let run = |mode: ScanMode| {
        let mut bed = bed(6);
        bed.guests[4]
            .patch_module(&mut bed.hv, "ndis.sys", 0x1007, &[0x90, 0x90])
            .unwrap();
        bed.hv.inject_fault_plan(FaultPlan::chaos(0xC0FFEE, 0.06));
        let report = scanner(mode)
            .check_pool(&bed.hv, &bed.vm_ids, "ndis.sys")
            .unwrap();
        serde_json::to_string_pretty(&report.to_json()).unwrap()
    };
    assert_eq!(run(ScanMode::Sequential), run(ScanMode::Sequential));
    assert_eq!(run(ScanMode::Parallel), run(ScanMode::Parallel));
    // Per-VM fault streams are seeded independently of scheduling, so the
    // two modes also agree with each other.
    assert_eq!(run(ScanMode::Sequential), run(ScanMode::Parallel));
}

#[test]
fn retry_jitter_shifts_schedules_per_vm_without_touching_verdicts() {
    // Backoff jitter decorrelates retry storms: each VM draws its waits
    // from its own seeded stream, so schedules are *distinct* across VMs
    // yet fully *deterministic* — same seed, same report, regardless of
    // scan mode.
    let run = |mode: ScanMode, jitter: f64| {
        let mut bed = bed(6);
        // Scatter-gather captures consult the fault layer once per batch
        // (not per page), so the per-consult probability is raised to keep
        // several VMs retrying — the comparison below needs them.
        bed.hv.inject_fault_plan(FaultPlan::transient(0xBEEF, 0.2));
        ModChecker::with_config(CheckConfig {
            mode,
            retry: RetryPolicy::with_max_retries(6).with_jitter(jitter),
            ..CheckConfig::default()
        })
        .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
        .unwrap()
    };
    let render =
        |r: &modchecker::PoolCheckReport| serde_json::to_string_pretty(&r.to_json()).unwrap();

    let on = run(ScanMode::Sequential, 0.5);
    // Deterministic: the jittered run reproduces byte-for-byte, and the
    // per-VM streams don't care how the scan was scheduled.
    assert_eq!(render(&on), render(&run(ScanMode::Sequential, 0.5)));
    assert_eq!(render(&on), render(&run(ScanMode::Parallel, 0.5)));

    // Jitter moves timing only: verdicts and quorum match the unjittered
    // run exactly.
    let off = run(ScanMode::Sequential, 0.0);
    assert_eq!(on.quorum, off.quorum);
    for (a, b) in on.verdicts.iter().zip(&off.verdicts) {
        assert_eq!(a.vm_name, b.vm_name);
        assert_eq!(a.status, b.status);
    }

    // Distinct schedules: among the VMs that actually retried, the time
    // the jitter added differs VM to VM — per-VM streams, not one shared
    // wobble.
    let deltas: Vec<i128> = on
        .per_vm
        .iter()
        .zip(&off.per_vm)
        .filter(|(a, _)| a.vmi.retries > 0)
        .map(|(a, b)| {
            i128::from(a.times.total().as_nanos()) - i128::from(b.times.total().as_nanos())
        })
        .collect();
    assert!(
        deltas.len() >= 2,
        "fault plan produced too few retrying VMs to compare"
    );
    assert!(
        deltas.iter().any(|&d| d != 0),
        "jitter 0.5 never changed a retrying VM's schedule"
    );
    assert!(
        deltas.windows(2).any(|w| w[0] != w[1]),
        "all retrying VMs shifted identically — jitter stream is not per-VM"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the fault cocktail, the scan returns a structurally
    /// consistent report — no panics, no hangs, no impossible counters.
    #[test]
    fn no_fault_plan_can_panic_the_scanner(
        seed in 0u64..1_000,
        transient_pct in 0u32..30,
        chaotic in proptest::bool::ANY,
        parallel in proptest::bool::ANY,
        retries in 0u32..6,
        lose_victim in 0usize..5,
        lose_after in 0u64..40,
    ) {
        let rate = f64::from(transient_pct) / 100.0;
        let plan = if chaotic {
            FaultPlan::chaos(seed, rate)
        } else {
            FaultPlan::transient(seed, rate)
        };
        let mut bed = bed(5);
        bed.hv.inject_fault_plan(plan);
        bed.hv
            .set_fault_plan(
                bed.vm_ids[lose_victim],
                Some(plan.lose_after(lose_after)),
            )
            .unwrap();
        let checker = ModChecker::with_config(CheckConfig {
            mode: if parallel { ScanMode::Parallel } else { ScanMode::Sequential },
            retry: RetryPolicy::with_max_retries(retries),
            ..CheckConfig::default()
        });

        // check_pool always completes with a report.
        let report = checker.check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert_eq!(report.verdicts.len(), 5);
        prop_assert!(report.scanned <= 5);
        let unscannable = report.verdicts.iter()
            .filter(|v| v.status == VerdictStatus::Unscannable)
            .count();
        let suspect_errors = report.verdicts.iter()
            .filter(|v| v.status == VerdictStatus::Suspect && v.error.is_some())
            .count();
        match report.quorum {
            QuorumStatus::Full => prop_assert_eq!(report.scanned, 5),
            QuorumStatus::Degraded => prop_assert!((2..5).contains(&report.scanned)),
            QuorumStatus::Lost => {
                prop_assert!(report.scanned < 2);
                // Below quorum nothing is clean: every VM is unreachable,
                // or suspect through its own capture failure.
                prop_assert_eq!(unscannable + suspect_errors, 5);
            }
        }
        for v in &report.verdicts {
            prop_assert!(v.successes <= v.comparisons);
            prop_assert_eq!(v.clean, v.status == VerdictStatus::Clean);
        }

        // check_one returns a report or a typed error, never a panic.
        match checker.check_one(&bed.hv, bed.vm_ids[0], &bed.peers_of(0), "hal.dll") {
            Ok(r) => prop_assert!(r.successes <= r.comparisons),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Transient-only fault plans can *never* produce a false infection:
    /// a clean pool either scans a VM successfully or drops it from the
    /// vote — it must not vote it infected.
    #[test]
    fn transient_faults_never_vote_a_clean_vm_infected(
        seed in 0u64..1_000,
        rate_pct in 0u32..25,
        retries in 0u32..6,
    ) {
        let mut bed = bed(4);
        bed.hv.inject_fault_plan(
            FaultPlan::transient(seed, f64::from(rate_pct) / 100.0),
        );
        let checker = ModChecker::with_config(CheckConfig {
            retry: RetryPolicy::with_max_retries(retries),
            ..CheckConfig::default()
        });
        let report = checker.check_pool(&bed.hv, &bed.vm_ids, "ndis.sys").unwrap();
        prop_assert!(
            report.suspects().next().is_none(),
            "clean pool voted a VM infected under transient faults (quorum {:?})",
            report.quorum
        );
    }
}
