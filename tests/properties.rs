//! Property-based integration tests across the whole stack: cloud
//! construction → infection → introspection → verdicts.

use mc_hypervisor::AddressWidth;
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{ModChecker, PartId};
use modchecker_repro::testbed::Testbed;
use proptest::prelude::*;

/// A fast 4-VM bed with one small module.
fn bed() -> Testbed {
    Testbed::cloud_with(
        4,
        AddressWidth::W32,
        &[ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024)],
    )
}

/// .text occupies the image's second page onward; its size for the 8 KiB
/// blueprint comfortably exceeds 4 KiB.
const TEXT_START: u64 = 0x1000;
const TEXT_SAFE_LEN: u64 = 0x1800;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any non-identity in-memory patch inside .text on one VM is flagged,
    /// and only on that VM — unless the patch lands entirely inside a
    /// relocation slot AND happens to encode a plausible shared RVA, which
    /// the generator avoids by always flipping bits (the slot's value then
    /// disagrees between VMs and still flags).
    #[test]
    fn any_text_patch_is_detected(
        victim in 0usize..4,
        offset in 0u64..TEXT_SAFE_LEN,
        flips in proptest::collection::vec(1u8..=255, 1..4),
    ) {
        let mut bed = bed();
        // Read current bytes, XOR with the flips (guaranteed != original).
        let base = bed.guests[victim].find_module("hal.dll").unwrap().base;
        let vm = bed.hv.vm(bed.vm_ids[victim]).unwrap();
        let mut original = vec![0u8; flips.len()];
        vm.read_virt(base + TEXT_START + offset, &mut original).unwrap();
        let patched: Vec<u8> = original.iter().zip(&flips).map(|(o, f)| o ^ f).collect();
        bed.guests[victim]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + offset, &patched)
            .unwrap();

        let report = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert!(report.any_discrepancy(), "patch at {offset:#x} missed");
        let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
        prop_assert_eq!(suspects, vec![format!("dom{}", victim + 1)]);
        // Flag set is .text only (we never touched headers).
        let victim_verdict = report.suspects().next().unwrap();
        prop_assert_eq!(
            &victim_verdict.suspect_parts,
            &vec![PartId::SectionData(".text".into())]
        );
    }

    /// Reverting the patch restores a fully clean pool (the check has no
    /// memory/side effects on guests).
    #[test]
    fn patch_then_restore_round_trips(
        victim in 0usize..4,
        offset in 0u64..TEXT_SAFE_LEN,
    ) {
        let mut bed = bed();
        let base = bed.guests[victim].find_module("hal.dll").unwrap().base;
        let mut original = [0u8; 2];
        bed.hv.vm(bed.vm_ids[victim]).unwrap()
            .read_virt(base + TEXT_START + offset, &mut original).unwrap();

        bed.guests[victim]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + offset, &[original[0] ^ 0xFF, original[1] ^ 0x0F])
            .unwrap();
        let dirty = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert!(!dirty.all_clean());

        bed.guests[victim]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + offset, &original)
            .unwrap();
        let clean = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert!(clean.all_clean());
    }

    /// Pool verdicts are invariant under VM scan order.
    #[test]
    fn verdicts_invariant_under_vm_order(seed in 0u64..1000) {
        let mut bed = bed();
        let victim = (seed % 4) as usize;
        bed.guests[victim]
            .patch_module(&mut bed.hv, "hal.dll", TEXT_START + 5, &[0xCC])
            .unwrap();

        let mut order = bed.vm_ids.clone();
        // Deterministic shuffle from the seed.
        for i in (1..order.len()).rev() {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        let a = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        let b = ModChecker::new().check_pool(&bed.hv, &order, "hal.dll").unwrap();
        let mut sa: Vec<(String, bool)> = a.verdicts.iter().map(|v| (v.vm_name.clone(), v.clean)).collect();
        let mut sb: Vec<(String, bool)> = b.verdicts.iter().map(|v| (v.vm_name.clone(), v.clean)).collect();
        sa.sort();
        sb.sort();
        prop_assert_eq!(sa, sb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clean clouds of any size ≥ 4 and either width are fully clean, and
    /// repeated checks are deterministic.
    #[test]
    fn clean_cloud_is_clean_at_any_size(n in 4usize..9, wide in proptest::bool::ANY) {
        let width = if wide { AddressWidth::W64 } else { AddressWidth::W32 };
        let bed = Testbed::cloud_with(
            n,
            width,
            &[ModuleBlueprint::new("hal.dll", width, 8 * 1024)],
        );
        let r1 = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert!(r1.all_clean());
        let r2 = ModChecker::new().check_pool(&bed.hv, &bed.vm_ids, "hal.dll").unwrap();
        prop_assert_eq!(r1.times.total(), r2.times.total(), "simulated time deterministic");
    }
}
