//! Umbrella crate for the ModChecker reproduction workspace.
//!
//! This crate exists so the repository-level `tests/` and `examples/`
//! directories are real cargo targets with access to every workspace member.
//! It also provides [`testbed`], a small convenience layer used by the
//! integration tests and examples to stand up the paper's evaluation cloud
//! (a Xen-like host with a pool of identical Windows-XP-like guests) in a
//! couple of lines.

#![warn(missing_docs)]

pub use mc_attacks as attacks;
pub use mc_guest as guest;
pub use mc_hypervisor as hypervisor;
pub use mc_loadgen as loadgen;
pub use mc_md5 as md5;
pub use mc_pe as pe;
pub use mc_vmi as vmi;
pub use modchecker as core;

pub mod fleetgen;
pub mod testbed;
