//! Evaluation testbed: the paper's cloud in a few lines.
//!
//! The paper's testbed is a Xen host with 15 Windows XP SP2 clones
//! (Dom1–Dom15). [`Testbed::cloud`] builds the simulated equivalent with
//! the standard module corpus; [`Testbed::infected_cloud`] additionally
//! applies one of the §V.B infection techniques to chosen victims *at
//! build time* (the paper's on-disk infection followed by a reboot);
//! in-memory infections can be applied afterwards via
//! `guests[i].patch_module(..)` or the worm helpers.

use mc_attacks::{AttackError, Technique};
use mc_guest::GuestOs;
use mc_hypervisor::{AddressWidth, Hypervisor, VmId};
use mc_pe::corpus::{standard_corpus, ModuleBlueprint};
use mc_pe::PeFile;

/// A built cloud: host, ground-truth guests, and convenience id list.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// The simulated host.
    pub hv: Hypervisor,
    /// Ground truth per VM (for attacks and assertions; ModChecker itself
    /// never reads this).
    pub guests: Vec<GuestOs>,
    /// VM ids in creation order (`dom1..domN`).
    pub vm_ids: Vec<VmId>,
    /// Guest pointer width.
    pub width: AddressWidth,
}

impl Testbed {
    /// Builds `n` clean VMs with the standard corpus (32-bit, as the
    /// paper's XP SP2 guests).
    pub fn cloud(n: usize) -> Self {
        Self::cloud_with(n, AddressWidth::W32, &standard_corpus(AddressWidth::W32))
    }

    /// Builds `n` clean VMs with a custom blueprint set (small sets keep
    /// tests fast).
    pub fn cloud_with(n: usize, width: AddressWidth, blueprints: &[ModuleBlueprint]) -> Self {
        let mut hv = Hypervisor::new();
        let guests = mc_guest::build_cloud_with_modules(&mut hv, n, width, blueprints)
            .expect("cloud construction is infallible on a fresh host");
        let vm_ids = guests.iter().map(|g| g.vm).collect();
        Testbed {
            hv,
            guests,
            vm_ids,
            width,
        }
    }

    /// A small, fast cloud for tests: three small modules.
    pub fn small_cloud(n: usize) -> Self {
        let width = AddressWidth::W32;
        Self::cloud_with(
            n,
            width,
            &[
                ModuleBlueprint::new("hal.dll", width, 16 * 1024),
                ModuleBlueprint::new("http.sys", width, 24 * 1024),
                ModuleBlueprint::new("dummy.sys", width, 12 * 1024)
                    .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])]),
                ModuleBlueprint::new("helloworld.sys", width, 8 * 1024),
            ],
        )
    }

    /// Builds `n` VMs where `victims` (indices) carry the technique's
    /// infected module file — the paper's modify-on-disk-then-reboot flow.
    pub fn infected_cloud(
        n: usize,
        technique: Technique,
        victims: &[usize],
    ) -> Result<(Self, Vec<modchecker::PartId>), AttackError> {
        Self::infected_cloud_with(
            n,
            AddressWidth::W32,
            &standard_corpus(AddressWidth::W32),
            technique,
            victims,
        )
    }

    /// [`Self::infected_cloud`] with a custom blueprint set.
    pub fn infected_cloud_with(
        n: usize,
        width: AddressWidth,
        blueprints: &[ModuleBlueprint],
        technique: Technique,
        victims: &[usize],
    ) -> Result<(Self, Vec<modchecker::PartId>), AttackError> {
        let infection = technique.infection();
        let target = infection.target_module();
        let artifacts = blueprints
            .iter()
            .find(|bp| bp.name == target)
            .unwrap_or_else(|| panic!("corpus lacks the technique's target {target}"))
            .generate();
        let infected_file = infection.infect(&artifacts)?;

        // Resolve the expected mismatch set against a clean extraction.
        let clean_file = artifacts.build()?;
        let expected = {
            let parsed = mc_pe::parser::ParsedModule::parse_file(clean_file.bytes())
                .expect("clean corpus parses");
            let parts =
                modchecker::parts::ModuleParts::from_parsed(&parsed, clean_file.bytes().len());
            let ids: Vec<modchecker::PartId> = parts.parts.iter().map(|p| p.id.clone()).collect();
            mc_attacks::resolve_expectations(&infection.expected_mismatches(), &ids)
        };

        let clean_corpus: Vec<(String, PeFile)> = blueprints
            .iter()
            .map(|bp| (bp.name.clone(), bp.build().expect("corpus builds")))
            .collect();

        let mut hv = Hypervisor::new();
        let mut guests = Vec::with_capacity(n);
        for i in 0..n {
            let vm = hv
                .create_vm(&format!("dom{}", i + 1), width)
                .expect("fresh names");
            let modules: Vec<(String, PeFile)> = clean_corpus
                .iter()
                .map(|(name, pe)| {
                    if victims.contains(&i) && name == target {
                        (name.clone(), infected_file.clone())
                    } else {
                        (name.clone(), pe.clone())
                    }
                })
                .collect();
            guests.push(
                mc_guest::GuestOs::install_with_modules(&mut hv, vm, &modules, i as u64 + 1)
                    .expect("guest install"),
            );
        }
        let vm_ids = guests.iter().map(|g| g.vm).collect();
        Ok((
            Testbed {
                hv,
                guests,
                vm_ids,
                width,
            },
            expected,
        ))
    }

    /// VM ids excluding the given index (peers of a reference VM).
    pub fn peers_of(&self, reference: usize) -> Vec<VmId> {
        self.vm_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != reference)
            .map(|(_, id)| *id)
            .collect()
    }
}
