//! Deterministic fleet-topology generators for tests and benches.
//!
//! Two builders over the same [`FleetBed`] shape:
//!
//! * [`uniform_fleet`] — a clean, mildly heterogeneous multi-pool cloud
//!   (pool sizes and module sizes vary deterministically with the pool
//!   index) for benches and CLI demos.
//! * [`random_fleet`] — a seeded random topology *with ground truth*: pool
//!   count and sizes, per-pool module sets, infection placement (code
//!   patches and DKOM hiding) and fault plans (lost VMs, transient read
//!   noise), constrained so majority voting provably identifies exactly
//!   the infected set. The returned [`FleetTruth`] is the oracle the
//!   `fleet_sim` property suite checks every sweep against.
//!
//! ## Why the constraints are what they are
//!
//! For one `(pool, module)` unit over a pool of `n` VMs with `l` lost,
//! `d` DKOM-hidden and `i` distinctly-patched VMs, the checker scans
//! `scanned = n − l − d` captures and every scanned VM votes over
//! `scanned − 1` comparisons:
//!
//! * a clean VM stays clean iff `(scanned − i − 1) · 2 > scanned − 1`,
//!   i.e. `scanned ≥ 2i + 2` — the generator caps `i` at
//!   `(scanned − 2) / 2`;
//! * a DKOM-hidden module stays in the pool's consensus list iff it is
//!   present on a strict majority of readable listings:
//!   `(s − d) · 2 > s` for `s = n − l` readable VMs — with `d ≤ 1` the
//!   generator requires `s ≥ 4`;
//! * quorum is `Full` iff `l = 0` and `d = 0`, else `Degraded` (the
//!   constraints keep `scanned ≥ 2`, so `Lost` never occurs).

use mc_guest::GuestOs;
use mc_hypervisor::{AddressWidth, FaultPlan, Hypervisor};
use mc_pe::corpus::ModuleBlueprint;
use mc_pe::PeFile;
use modchecker::sched::{Fleet, PoolSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ground truth for a generated fleet: what a correct sweep must find.
#[derive(Clone, Debug, Default)]
pub struct FleetTruth {
    /// Every infected `(pool, module, vm)` — code-patched or DKOM-hidden.
    /// Exactly these must be flagged `Suspect`; nothing else may be.
    pub infected: Vec<(String, String, String)>,
    /// `(pool, vm)` pairs lost before the sweep: `Unscannable` in every
    /// unit of their pool and unreadable in its list scan.
    pub lost: Vec<(String, String)>,
    /// `(pool, module)` units whose quorum must degrade (a lost VM in the
    /// pool or a DKOM victim for the module). All other units are `Full`.
    pub degraded: Vec<(String, String)>,
    /// Expected consensus module names per pool, sorted.
    pub consensus: Vec<(String, Vec<String>)>,
}

/// A generated fleet: hypervisor, pool topology, per-pool guests, truth.
#[derive(Debug)]
pub struct FleetBed {
    /// The host.
    pub hv: Hypervisor,
    /// Explicit pool topology (generation order).
    pub fleet: Fleet,
    /// Guests per pool, pool order.
    pub guests: Vec<Vec<GuestOs>>,
    /// The oracle.
    pub truth: FleetTruth,
}

fn build_pool(
    hv: &mut Hypervisor,
    pool_idx: usize,
    vm_count: usize,
    modules: &[(String, usize)],
    seed: u64,
) -> (PoolSpec, Vec<GuestOs>) {
    let files: Vec<(String, PeFile)> = modules
        .iter()
        .map(|(name, text)| {
            let pe = ModuleBlueprint::new(name, AddressWidth::W32, *text)
                .build()
                .expect("blueprint builds");
            (name.clone(), pe)
        })
        .collect();
    let mut vms = Vec::with_capacity(vm_count);
    let mut guests = Vec::with_capacity(vm_count);
    for i in 0..vm_count {
        let vm = hv
            .create_vm(&format!("p{pool_idx}dom{i}"), AddressWidth::W32)
            .expect("unique VM names per pool");
        let g = GuestOs::install_with_modules(
            hv,
            vm,
            &files,
            seed.wrapping_mul(1000)
                .wrapping_add((pool_idx * 100 + i + 1) as u64),
        )
        .expect("guest installs");
        vms.push(vm);
        guests.push(g);
    }
    (
        PoolSpec {
            name: format!("pool{pool_idx}"),
            vms,
        },
        guests,
    )
}

/// A clean multi-pool fleet with deterministic heterogeneity: pool `p`
/// has `base_vms + (p mod 3)` VMs and module `m` of pool `p` has a
/// `(8 + 4·((m + p) mod 3))` KiB text section. The cost spread is what
/// makes `fig_fleet`'s LPT speedup sub-linear (equal pools would divide
/// perfectly).
pub fn uniform_fleet(
    pools: usize,
    base_vms: usize,
    modules_per_pool: usize,
    seed: u64,
) -> FleetBed {
    let mut hv = Hypervisor::new();
    let mut specs = Vec::with_capacity(pools);
    let mut guests = Vec::with_capacity(pools);
    let mut consensus = Vec::with_capacity(pools);
    for p in 0..pools {
        let modules: Vec<(String, usize)> = (0..modules_per_pool)
            .map(|m| (format!("p{p}m{m}.sys"), (8 + 4 * ((m + p) % 3)) * 1024))
            .collect();
        let (spec, pool_guests) = build_pool(&mut hv, p, base_vms.max(2) + p % 3, &modules, seed);
        let mut names: Vec<String> = modules.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        consensus.push((spec.name.clone(), names));
        specs.push(spec);
        guests.push(pool_guests);
    }
    FleetBed {
        hv,
        fleet: Fleet::from_pools(specs),
        guests,
        truth: FleetTruth {
            consensus,
            ..FleetTruth::default()
        },
    }
}

/// A seeded random fleet topology with ground truth (see the module docs
/// for the constraint system). The same seed always yields the same
/// cloud, byte for byte — reproduce any `fleet_sim` failure by rerunning
/// its printed seed.
#[allow(clippy::too_many_lines)]
pub fn random_fleet(seed: u64) -> FleetBed {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7));
    let mut hv = Hypervisor::new();
    let mut truth = FleetTruth::default();
    let mut specs = Vec::new();
    let mut all_guests = Vec::new();

    let pool_count = rng.random_range(1..=3usize);
    for p in 0..pool_count {
        // Pool sizes 2–16, biased small so 200 cases stay fast.
        let n = if rng.random_bool(0.2) {
            rng.random_range(7..=16usize)
        } else {
            rng.random_range(2..=6usize)
        };
        let module_count = rng.random_range(1..=3usize);
        let modules: Vec<(String, usize)> = (0..module_count)
            .map(|m| {
                (
                    format!("p{p}m{m}.sys"),
                    (2 + rng.random_range(0..=6usize)) * 1024,
                )
            })
            .collect();
        let (spec, guests) = build_pool(&mut hv, p, n, &modules, seed);
        let pool_name = spec.name.clone();

        // Lose at most one VM, and only in pools big enough that every
        // downstream constraint still has room (readable s = n − 1 ≥ 3).
        let lost_idx: Option<usize> = if n >= 4 && rng.random_bool(0.3) {
            Some(rng.random_range(0..n))
        } else {
            None
        };
        let readable = n - usize::from(lost_idx.is_some());

        for (module, text) in &modules {
            let mut victims: Vec<usize> = (0..n).filter(|i| Some(*i) != lost_idx).collect();
            // DKOM-hide on one victim: needs a strict majority of readable
            // listings to still carry the module (readable ≥ 4 gives
            // margin) and costs one scanned VM.
            let dkom = readable >= 4 && rng.random_bool(0.25);
            if dkom {
                let v = victims.remove(rng.random_range(0..victims.len()));
                guests[v]
                    .dkom_hide(&mut hv, module)
                    .expect("dkom target exists");
                truth
                    .infected
                    .push((pool_name.clone(), module.clone(), format!("p{p}dom{v}")));
            }
            let scanned = readable - usize::from(dkom);
            // Distinct patches: capped so clean VMs keep a strict majority
            // (scanned ≥ 2i + 2).
            let i_max = scanned.saturating_sub(2) / 2;
            let patches = if i_max > 0 && rng.random_bool(0.5) {
                rng.random_range(1..=i_max.min(2))
            } else {
                0
            };
            for k in 0..patches {
                let v = victims.remove(rng.random_range(0..victims.len()));
                // Inside .text (RVA 0x1000..), even offset, VM-distinct
                // bytes so no two infected captures match each other.
                let offset = 0x1000 + 2 * rng.random_range(0..((text - 8) / 2) as u64);
                #[allow(clippy::cast_possible_truncation)]
                let bytes = [0xD1, p as u8, v as u8, 0x5E ^ k as u8];
                guests[v]
                    .patch_module(&mut hv, module, offset, &bytes)
                    .expect("patch target exists");
                truth
                    .infected
                    .push((pool_name.clone(), module.clone(), format!("p{p}dom{v}")));
            }
            if lost_idx.is_some() || dkom {
                truth.degraded.push((pool_name.clone(), module.clone()));
            }
        }

        // Fault plans: the lost VM dies at first touch; surviving VMs may
        // see transient read noise, quiet enough for a 6-retry budget to
        // ride out deterministically.
        let noisy = rng.random_bool(0.4);
        for (i, g) in guests.iter().enumerate() {
            if Some(i) == lost_idx {
                hv.set_fault_plan(g.vm, Some(FaultPlan::none(seed ^ 0xDEAD).lose_after(0)))
                    .expect("vm exists");
                truth.lost.push((pool_name.clone(), format!("p{p}dom{i}")));
            } else if noisy {
                hv.set_fault_plan(
                    g.vm,
                    Some(FaultPlan::transient(seed.wrapping_add(p as u64), 0.02)),
                )
                .expect("vm exists");
            }
        }

        let mut names: Vec<String> = modules.iter().map(|(m, _)| m.clone()).collect();
        names.sort();
        truth.consensus.push((pool_name, names));
        specs.push(spec);
        all_guests.push(guests);
    }

    truth.infected.sort();
    truth.lost.sort();
    truth.degraded.sort();
    FleetBed {
        hv,
        fleet: Fleet::from_pools(specs),
        guests: all_guests,
        truth,
    }
}
