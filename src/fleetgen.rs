//! Deterministic fleet-topology generators for tests and benches.
//!
//! Two builders over the same [`FleetBed`] shape:
//!
//! * [`uniform_fleet`] — a clean, mildly heterogeneous multi-pool cloud
//!   (pool sizes and module sizes vary deterministically with the pool
//!   index) for benches and CLI demos.
//! * [`random_fleet`] — a seeded random topology *with ground truth*: pool
//!   count and sizes, per-pool module sets, infection placement (code
//!   patches and DKOM hiding) and fault plans (lost VMs, transient read
//!   noise), constrained so majority voting provably identifies exactly
//!   the infected set. The returned [`FleetTruth`] is the oracle the
//!   `fleet_sim` property suite checks every sweep against.
//!
//! ## Why the constraints are what they are
//!
//! For one `(pool, module)` unit over a pool of `n` VMs with `l` lost,
//! `d` DKOM-hidden and `i` distinctly-patched VMs, the checker scans
//! `scanned = n − l − d` captures and every scanned VM votes over
//! `scanned − 1` comparisons:
//!
//! * a clean VM stays clean iff `(scanned − i − 1) · 2 > scanned − 1`,
//!   i.e. `scanned ≥ 2i + 2` — the generator caps `i` at
//!   `(scanned − 2) / 2`;
//! * a DKOM-hidden module stays in the pool's consensus list iff it is
//!   present on a strict majority of readable listings:
//!   `(s − d) · 2 > s` for `s = n − l` readable VMs — with `d ≤ 1` the
//!   generator requires `s ≥ 4`;
//! * quorum is `Full` iff `l = 0` and `d = 0`, else `Degraded` (the
//!   constraints keep `scanned ≥ 2`, so `Lost` never occurs).

use mc_attacks::active::{BlindChecker, DkomUnlink, ScrubRace};
use mc_attacks::Technique;
use mc_guest::GuestOs;
use mc_hypervisor::{AddressWidth, FaultPlan, Hypervisor, Replay};
use mc_pe::corpus::ModuleBlueprint;
use mc_pe::PeFile;
use modchecker::sched::{Fleet, PoolSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ground truth for a generated fleet: what a correct sweep must find.
#[derive(Clone, Debug, Default)]
pub struct FleetTruth {
    /// Every infected `(pool, module, vm)` — code-patched, DKOM-hidden or
    /// carrying a vote-visible evasive infection. Exactly these must be
    /// flagged `Suspect`; nothing else may be.
    pub infected: Vec<(String, String, String)>,
    /// Vote-*invisible* infections `(pool, module, vm)`: the IAT pivot
    /// rewrites only `.idata`, which the paper's hash deliberately skips,
    /// so the vote must stay clean — only the static pre-pass (lint L6)
    /// can name these VMs.
    pub stealth: Vec<(String, String, String)>,
    /// `(pool, vm)` pairs lost before the sweep: `Unscannable` in every
    /// unit of their pool and unreadable in its list scan.
    pub lost: Vec<(String, String)>,
    /// `(pool, module)` units whose quorum must degrade (a lost VM in the
    /// pool or a DKOM victim for the module). All other units are `Full`.
    pub degraded: Vec<(String, String)>,
    /// Expected consensus module names per pool, sorted.
    pub consensus: Vec<(String, Vec<String>)>,
    /// Active adversaries planted by [`adversarial_fleet`], with the
    /// metadata a detection oracle needs: which unit is attacked, by what,
    /// and (for the scrub-race) the learned restore window that decides
    /// which jittered rounds scan mid-infection. Sorted by (pool, module).
    pub evasive: Vec<EvasiveTruth>,
}

/// Which active adversary ([`mc_attacks::active`]) a fleet unit carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// [`DkomUnlink`] on every VM of the pool. Invisible to the list-walk
    /// consensus; expected channel: cross-view hidden-module vote.
    Dkom,
    /// [`ScrubRace`] on one VM. Invisible to fixed-phase polling; expected
    /// channels: jittered rounds past the window (content vote) and the
    /// tamper-evidence generation trail on restored rounds.
    Scrub,
    /// [`BlindChecker`] on every VM. Invisible to the content vote itself;
    /// expected channel: cross-view unlisted-image vote.
    Blind,
}

/// Ground truth for one planted active adversary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvasiveTruth {
    /// Pool name.
    pub pool: String,
    /// Victim module.
    pub module: String,
    /// Victim VM name for the single-VM scrub-race; `None` for the
    /// pool-wide adversaries.
    pub vm: Option<String>,
    /// Adversary class.
    pub kind: AdversaryKind,
    /// The scrub-race's learned restore window (ns); 0 for other kinds. A
    /// round whose scan-phase offset exceeds this observes the payload.
    pub window_ns: u64,
}

/// A generated fleet: hypervisor, pool topology, per-pool guests, truth.
#[derive(Debug)]
pub struct FleetBed {
    /// The host.
    pub hv: Hypervisor,
    /// Explicit pool topology (generation order).
    pub fleet: Fleet,
    /// Guests per pool, pool order.
    pub guests: Vec<Vec<GuestOs>>,
    /// The oracle.
    pub truth: FleetTruth,
}

/// Builds blueprint module files from `(name, text size)` pairs.
fn blueprint_files(modules: &[(String, usize)]) -> Vec<(String, PeFile)> {
    modules
        .iter()
        .map(|(name, text)| {
            let pe = ModuleBlueprint::new(name, AddressWidth::W32, *text)
                .build()
                .expect("blueprint builds");
            (name.clone(), pe)
        })
        .collect()
}

/// Installs `files` on `vm_count` fresh VMs. `overrides` replaces one
/// named module's file for one VM index — how a file-level (pre-load)
/// infection lands on exactly its victim while every peer gets the clean
/// build.
fn build_pool(
    hv: &mut Hypervisor,
    pool_idx: usize,
    vm_count: usize,
    files: &[(String, PeFile)],
    overrides: &[(usize, String, PeFile)],
    seed: u64,
) -> (PoolSpec, Vec<GuestOs>) {
    let mut vms = Vec::with_capacity(vm_count);
    let mut guests = Vec::with_capacity(vm_count);
    for i in 0..vm_count {
        let vm = hv
            .create_vm(&format!("p{pool_idx}dom{i}"), AddressWidth::W32)
            .expect("unique VM names per pool");
        let vm_files: Vec<(String, PeFile)> = files
            .iter()
            .map(|(name, pe)| {
                let file = overrides
                    .iter()
                    .find(|(v, n, _)| *v == i && n == name)
                    .map_or(pe, |(_, _, f)| f);
                (name.clone(), file.clone())
            })
            .collect();
        let g = GuestOs::install_with_modules(
            hv,
            vm,
            &vm_files,
            seed.wrapping_mul(1000)
                .wrapping_add((pool_idx * 100 + i + 1) as u64),
        )
        .expect("guest installs");
        vms.push(vm);
        guests.push(g);
    }
    (
        PoolSpec {
            name: format!("pool{pool_idx}"),
            vms,
        },
        guests,
    )
}

/// A clean multi-pool fleet with deterministic heterogeneity: pool `p`
/// has `base_vms + (p mod 3)` VMs and module `m` of pool `p` has a
/// `(8 + 4·((m + p) mod 3))` KiB text section. The cost spread is what
/// makes `fig_fleet`'s LPT speedup sub-linear (equal pools would divide
/// perfectly).
pub fn uniform_fleet(
    pools: usize,
    base_vms: usize,
    modules_per_pool: usize,
    seed: u64,
) -> FleetBed {
    let mut hv = Hypervisor::new();
    let mut specs = Vec::with_capacity(pools);
    let mut guests = Vec::with_capacity(pools);
    let mut consensus = Vec::with_capacity(pools);
    for p in 0..pools {
        let modules: Vec<(String, usize)> = (0..modules_per_pool)
            .map(|m| (format!("p{p}m{m}.sys"), (8 + 4 * ((m + p) % 3)) * 1024))
            .collect();
        let files = blueprint_files(&modules);
        let (spec, pool_guests) =
            build_pool(&mut hv, p, base_vms.max(2) + p % 3, &files, &[], seed);
        let mut names: Vec<String> = modules.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        consensus.push((spec.name.clone(), names));
        specs.push(spec);
        guests.push(pool_guests);
    }
    FleetBed {
        hv,
        fleet: Fleet::from_pools(specs),
        guests,
        truth: FleetTruth {
            consensus,
            ..FleetTruth::default()
        },
    }
}

/// A seeded random fleet topology with ground truth (see the module docs
/// for the constraint system). The same seed always yields the same
/// cloud, byte for byte — reproduce any `fleet_sim` failure by rerunning
/// its printed seed.
#[allow(clippy::too_many_lines)]
pub fn random_fleet(seed: u64) -> FleetBed {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7));
    let mut hv = Hypervisor::new();
    let mut truth = FleetTruth::default();
    let mut specs = Vec::new();
    let mut all_guests = Vec::new();

    let pool_count = rng.random_range(1..=3usize);
    for p in 0..pool_count {
        // Pool sizes 2–16, biased small so 200 cases stay fast.
        let n = if rng.random_bool(0.2) {
            rng.random_range(7..=16usize)
        } else {
            rng.random_range(2..=6usize)
        };
        let module_count = rng.random_range(1..=3usize);
        let modules: Vec<(String, usize)> = (0..module_count)
            .map(|m| {
                (
                    format!("p{p}m{m}.sys"),
                    (2 + rng.random_range(0..=6usize)) * 1024,
                )
            })
            .collect();
        // Lose at most one VM, and only in pools big enough that every
        // downstream constraint still has room (readable s = n − 1 ≥ 3).
        // Drawn *before* the build: the evasive tier infects module files,
        // so victims must be known at install time.
        let lost_idx: Option<usize> = if n >= 4 && rng.random_bool(0.3) {
            Some(rng.random_range(0..n))
        } else {
            None
        };
        let readable = n - usize::from(lost_idx.is_some());

        // Evasive tier: one extra module per pool may carry a file-level
        // anti-disassembly infection on one surviving VM. The vote-visible
        // techniques (hidden-jump, overlapping-decode) patch `.text`, so
        // they are one distinct infection (i = 1) needing `scanned ≥ 4`;
        // the IAT pivot rewrites only `.idata` and must stay vote-clean.
        let evasive: Option<(Technique, usize)> = if readable >= 4 && rng.random_bool(0.35) {
            let tech = Technique::EVASIVE[rng.random_range(0..Technique::EVASIVE.len())];
            let candidates: Vec<usize> = (0..n).filter(|i| Some(*i) != lost_idx).collect();
            let victim = candidates[rng.random_range(0..candidates.len())];
            Some((tech, victim))
        } else {
            None
        };

        let mut files = blueprint_files(&modules);
        let mut overrides = Vec::new();
        let evs_name = format!("p{p}evs.sys");
        if let Some((tech, victim)) = evasive {
            let art = ModuleBlueprint::new(&evs_name, AddressWidth::W32, 16 * 1024)
                .with_exports(&["EvsAlpha", "EvsBeta"])
                .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])])
                .generate();
            let clean = art.build().expect("evasive blueprint builds");
            let infected = tech
                .infection()
                .infect(&art)
                .expect("evasive infection applies to the blueprint");
            files.push((evs_name.clone(), clean));
            overrides.push((victim, evs_name.clone(), infected));
        }

        let (spec, guests) = build_pool(&mut hv, p, n, &files, &overrides, seed);
        let pool_name = spec.name.clone();

        if let Some((tech, victim)) = evasive {
            let vm = format!("p{p}dom{victim}");
            if tech == Technique::IatPivot {
                truth
                    .stealth
                    .push((pool_name.clone(), evs_name.clone(), vm));
            } else {
                truth
                    .infected
                    .push((pool_name.clone(), evs_name.clone(), vm));
            }
            if lost_idx.is_some() {
                truth.degraded.push((pool_name.clone(), evs_name.clone()));
            }
        }

        for (module, text) in &modules {
            let mut victims: Vec<usize> = (0..n).filter(|i| Some(*i) != lost_idx).collect();
            // DKOM-hide on one victim: needs a strict majority of readable
            // listings to still carry the module (readable ≥ 4 gives
            // margin) and costs one scanned VM.
            let dkom = readable >= 4 && rng.random_bool(0.25);
            if dkom {
                let v = victims.remove(rng.random_range(0..victims.len()));
                guests[v]
                    .dkom_hide(&mut hv, module)
                    .expect("dkom target exists");
                truth
                    .infected
                    .push((pool_name.clone(), module.clone(), format!("p{p}dom{v}")));
            }
            let scanned = readable - usize::from(dkom);
            // Distinct patches: capped so clean VMs keep a strict majority
            // (scanned ≥ 2i + 2).
            let i_max = scanned.saturating_sub(2) / 2;
            let patches = if i_max > 0 && rng.random_bool(0.5) {
                rng.random_range(1..=i_max.min(2))
            } else {
                0
            };
            for k in 0..patches {
                let v = victims.remove(rng.random_range(0..victims.len()));
                // Inside .text (RVA 0x1000..), even offset, VM-distinct
                // bytes so no two infected captures match each other.
                let offset = 0x1000 + 2 * rng.random_range(0..((text - 8) / 2) as u64);
                #[allow(clippy::cast_possible_truncation)]
                let bytes = [0xD1, p as u8, v as u8, 0x5E ^ k as u8];
                guests[v]
                    .patch_module(&mut hv, module, offset, &bytes)
                    .expect("patch target exists");
                truth
                    .infected
                    .push((pool_name.clone(), module.clone(), format!("p{p}dom{v}")));
            }
            if lost_idx.is_some() || dkom {
                truth.degraded.push((pool_name.clone(), module.clone()));
            }
        }

        // Fault plans: the lost VM dies at first touch; surviving VMs may
        // see transient read noise, quiet enough for a 6-retry budget to
        // ride out deterministically.
        let noisy = rng.random_bool(0.4);
        for (i, g) in guests.iter().enumerate() {
            if Some(i) == lost_idx {
                hv.set_fault_plan(g.vm, Some(FaultPlan::none(seed ^ 0xDEAD).lose_after(0)))
                    .expect("vm exists");
                truth.lost.push((pool_name.clone(), format!("p{p}dom{i}")));
            } else if noisy {
                hv.set_fault_plan(
                    g.vm,
                    Some(FaultPlan::transient(seed.wrapping_add(p as u64), 0.02)),
                )
                .expect("vm exists");
            }
        }

        let mut names: Vec<String> = modules.iter().map(|(m, _)| m.clone()).collect();
        if evasive.is_some() {
            names.push(evs_name);
        }
        names.sort();
        truth.consensus.push((pool_name, names));
        specs.push(spec);
        all_guests.push(guests);
    }

    truth.infected.sort();
    truth.stealth.sort();
    truth.lost.sort();
    truth.degraded.sort();
    FleetBed {
        hv,
        fleet: Fleet::from_pools(specs),
        guests: all_guests,
        truth,
    }
}

/// A seeded fleet mixing *active* adversaries, plus the [`Replay`] that
/// drives them between scan rounds.
///
/// Each pool draws at most one adversary (or none — clean pools pin the
/// false-positive rate). The draw stream is independent of
/// [`random_fleet`]'s, so the existing fleet goldens are untouched.
/// Constraints, per the detection math:
///
/// * every pool has `n ∈ [4, 6]` VMs, all readable — the scrub-race's one
///   visible infection needs `scanned ≥ 2·1 + 2 = 4` for a sound vote,
///   and the pool-wide cross-view findings carry `n` of `n` votes;
/// * every pool has ≥ 2 modules with pairwise-distinct sizes: an honest
///   module anchors the cross-view sweep span after a DKOM unlink, and a
///   unique `SizeOfImage` lets the sweep attribute a blinded module's
///   real image to its (decoy-claiming) entry;
/// * truth `consensus` reflects the *post-adversary* fleet: a module
///   unlinked everywhere is gone from the consensus — which is exactly
///   the evasion the cross-view channel exists to close.
pub fn adversarial_fleet(seed: u64) -> (FleetBed, Replay) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(29));
    let mut hv = Hypervisor::new();
    let mut truth = FleetTruth::default();
    let mut replay = Replay::new();
    let mut specs = Vec::new();
    let mut all_guests = Vec::new();

    let pool_count = rng.random_range(1..=2usize);
    for p in 0..pool_count {
        let n = rng.random_range(4..=6usize);
        let module_count = rng.random_range(2..=3usize);
        let modules: Vec<(String, usize)> = (0..module_count)
            .map(|m| (format!("p{p}m{m}.sys"), (4 + 4 * m) * 1024))
            .collect();
        let files = blueprint_files(&modules);
        let (spec, guests) = build_pool(&mut hv, p, n, &files, &[], seed);
        let pool_name = spec.name.clone();

        // 0 = clean pool, 1 = DKOM unlink, 2 = scrub-race, 3 = blinding.
        let kind = rng.random_range(0..4u32);
        let (victim_mod, victim_text) = {
            let (m, t) = &modules[rng.random_range(0..module_count)];
            (m.clone(), *t)
        };
        let offset = 0x1000 + 2 * rng.random_range(0..((victim_text - 8) / 2) as u64);
        #[allow(clippy::cast_possible_truncation)]
        match kind {
            1 => {
                replay.add(DkomUnlink::new(&guests, &victim_mod));
                truth.evasive.push(EvasiveTruth {
                    pool: pool_name.clone(),
                    module: victim_mod.clone(),
                    vm: None,
                    kind: AdversaryKind::Dkom,
                    window_ns: 0,
                });
            }
            2 => {
                let v = rng.random_range(0..n);
                // The adversary has only ever observed fixed-phase scans
                // (offset 0), so its learned window is pure slack.
                let window_ns =
                    ScrubRace::learn_window(&[0], 20_000 * (1 + rng.random_range(0..5u64)));
                let payload = vec![0xD1, p as u8, v as u8, 0x5F];
                replay.add(
                    ScrubRace::new(&hv, &guests[v..=v], &victim_mod, offset, payload, window_ns)
                        .expect("scrub-race snapshots clean bytes"),
                );
                truth.evasive.push(EvasiveTruth {
                    pool: pool_name.clone(),
                    module: victim_mod.clone(),
                    vm: Some(format!("p{p}dom{v}")),
                    kind: AdversaryKind::Scrub,
                    window_ns,
                });
            }
            3 => {
                replay.add(BlindChecker::new(
                    &guests,
                    &victim_mod,
                    offset,
                    vec![0xCC, p as u8, 0xCC],
                ));
                truth.evasive.push(EvasiveTruth {
                    pool: pool_name.clone(),
                    module: victim_mod.clone(),
                    vm: None,
                    kind: AdversaryKind::Blind,
                    window_ns: 0,
                });
            }
            _ => {}
        }

        let mut names: Vec<String> = modules
            .iter()
            .map(|(m, _)| m.clone())
            .filter(|m| !(kind == 1 && *m == victim_mod))
            .collect();
        names.sort();
        truth.consensus.push((pool_name, names));
        specs.push(spec);
        all_guests.push(guests);
    }

    truth
        .evasive
        .sort_by(|a, b| (&a.pool, &a.module).cmp(&(&b.pool, &b.module)));
    (
        FleetBed {
            hv,
            fleet: Fleet::from_pools(specs),
            guests: all_guests,
            truth,
        },
        replay,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_evasive_technique_applies_to_the_evs_blueprint() {
        // `random_fleet` unwraps `infect()` on this exact blueprint for a
        // randomly drawn technique; if any technique cannot find a suitable
        // site in it, some seed would panic mid-generation.
        for p in 0..3 {
            let art = ModuleBlueprint::new(&format!("p{p}evs.sys"), AddressWidth::W32, 16 * 1024)
                .with_exports(&["EvsAlpha", "EvsBeta"])
                .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])])
                .generate();
            let clean = art.build().expect("clean build");
            for tech in Technique::EVASIVE {
                let infected = tech.infection().infect(&art).unwrap_or_else(|e| {
                    panic!("{tech} found no site in p{p}evs.sys: {e}");
                });
                assert_ne!(clean.bytes(), infected.bytes(), "{tech}");
            }
        }
    }
}
