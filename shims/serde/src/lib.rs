//! Offline stand-in for `serde`.
//!
//! The workspace's only serde dependency is `modchecker`'s non-default
//! `serde` cargo feature, which gates `#[cfg_attr(feature = "serde",
//! derive(serde::Serialize))]` attributes; with the feature off (the offline
//! default) those attributes are inert and nothing here is referenced. This
//! crate exists so dependency resolution succeeds without the registry. The
//! `derive` feature is accepted but provides no macro — enabling the
//! downstream `serde` feature requires the real crate.

#![warn(missing_docs)]

/// Marker for serializable types (the real trait's methods are absent; see
/// the crate docs for why that is sufficient offline).
pub trait Serialize {}
