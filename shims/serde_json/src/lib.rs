//! Offline stand-in for `serde_json`.
//!
//! Provides a JSON [`Value`] tree, the [`json!`] constructor macro and
//! [`to_string_pretty`] — the full surface the workspace's CLI uses to emit
//! machine-readable reports. Two deliberate differences from the real crate:
//! object keys keep insertion order (a `Vec` of pairs, not a map — stable
//! output for tests), and the `json!` value grammar takes expressions *by
//! reference* via [`ToValue`], so struct fields can be spliced in without
//! moving out of borrowed data.

#![warn(missing_docs)]

use std::fmt;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

/// Conversion into [`Value`] by reference (how [`json!`] splices exprs).
pub trait ToValue {
    /// Builds the JSON value representing `self`.
    fn to_value(&self) -> Value;
}

/// Free-function form of [`ToValue`] used by the macro expansion.
pub fn to_value<T: ToValue + ?Sized>(v: &T) -> Value {
    v.to_value()
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_to_value_int {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_to_value_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Builds a [`Value`] from JSON-shaped syntax. Object values may be nested
/// `{..}` / `[..]` literals or arbitrary expressions (captured by
/// reference through [`ToValue`]).
#[macro_export]
macro_rules! json {
    // -- object entry muncher ------------------------------------------------
    (@obj $obj:ident) => {};
    (@obj $obj:ident $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : { $($inner:tt)* }) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    (@obj $obj:ident $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : [ $($inner:tt)* ]) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    (@obj $obj:ident $key:literal : null , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : null) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
    };
    (@obj $obj:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };
    // -- entry points --------------------------------------------------------
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json!(@obj __obj $($tt)*);
        $crate::Value::Object(__obj)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$elem)),*])
    };
    ($value:expr) => { $crate::to_value(&$value) };
}

/// Serialization failure. The shim's printer is total, so this is never
/// constructed; it exists to keep `to_string_pretty`'s `Result` signature.
#[derive(Clone, Copy, Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization failed")
    }
}

impl std::error::Error for Error {}

/// Pretty-prints a value as two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, depth + 1);
                write_pretty(elem, depth + 1, out);
            }
            push_newline_indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, depth + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            push_newline_indent(out, depth);
            out.push('}');
        }
    }
}

fn push_newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splicing_does_not_move_borrowed_fields() {
        struct Verdict {
            name: String,
            clean: bool,
        }
        let verdicts = vec![
            Verdict {
                name: "dom1".into(),
                clean: true,
            },
            Verdict {
                name: "dom2".into(),
                clean: false,
            },
        ];
        let v = json!({
            "verdicts": verdicts.iter().map(|v| json!({
                "vm": v.name,
                "clean": v.clean,
            })).collect::<Vec<_>>(),
            "nested": {
                "total_ms": 1.5,
                "count": 2usize,
            },
            "missing": Option::<String>::None,
        });
        // The borrowed structs are still usable afterwards.
        assert_eq!(verdicts[0].name, "dom1");
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"vm\": \"dom2\""));
        assert!(text.contains("\"total_ms\": 1.5"));
        assert!(text.contains("\"count\": 2"));
        assert!(text.contains("\"missing\": null"));
    }

    #[test]
    fn pretty_printer_escapes_and_indents() {
        let v = json!({
            "text": "line1\nline2\t\"quoted\"",
            "arr": [1, 2, 3],
            "empty_obj": {},
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.starts_with("{\n  \"text\""));
        assert!(text.contains("\"arr\": [\n    1,\n    2,\n    3\n  ]"));
        assert!(text.contains("\"empty_obj\": {}"));
    }

    #[test]
    fn ints_and_floats_format_distinctly() {
        assert_eq!(to_string_pretty(&json!(42u64)).unwrap(), "42");
        assert_eq!(to_string_pretty(&json!(42.0f64)).unwrap(), "42.0");
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
    }
}
