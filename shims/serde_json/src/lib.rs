//! Offline stand-in for `serde_json`.
//!
//! Provides a JSON [`Value`] tree, the [`json!`] constructor macro,
//! [`to_string`] / [`to_string_pretty`] writers, a [`from_str`] parser and
//! the accessor subset (`get`, `as_i64`, …) — the full surface the
//! workspace's CLI and observability layer use to emit and re-read
//! machine-readable reports. Two deliberate differences from the real crate:
//! object keys keep insertion order (a `Vec` of pairs, not a map — stable
//! output for tests), and the `json!` value grammar takes expressions *by
//! reference* via [`ToValue`], so struct fields can be spliced in without
//! moving out of borrowed data.

#![warn(missing_docs)]

use std::fmt;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number (serialized without a decimal point).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or a missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if this is a non-negative `Int`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (both `Int` and `Float`).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The key/value pairs (insertion order), if this is an `Object`.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Conversion into [`Value`] by reference (how [`json!`] splices exprs).
pub trait ToValue {
    /// Builds the JSON value representing `self`.
    fn to_value(&self) -> Value;
}

/// Free-function form of [`ToValue`] used by the macro expansion.
pub fn to_value<T: ToValue + ?Sized>(v: &T) -> Value {
    v.to_value()
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_to_value_int {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            #[allow(clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_to_value_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Builds a [`Value`] from JSON-shaped syntax. Object values may be nested
/// `{..}` / `[..]` literals or arbitrary expressions (captured by
/// reference through [`ToValue`]).
#[macro_export]
macro_rules! json {
    // -- object entry muncher ------------------------------------------------
    (@obj $obj:ident) => {};
    (@obj $obj:ident $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : { $($inner:tt)* }) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    (@obj $obj:ident $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : [ $($inner:tt)* ]) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    (@obj $obj:ident $key:literal : null , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : null) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
    };
    (@obj $obj:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json!(@obj $obj $($rest)*);
    };
    (@obj $obj:ident $key:literal : $value:expr) => {
        $obj.push(($key.to_string(), $crate::to_value(&$value)));
    };
    // -- entry points --------------------------------------------------------
    (null) => { $crate::Value::Null };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let __obj = {
            let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json!(@obj __obj $($tt)*);
            __obj
        };
        $crate::Value::Object(__obj)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$elem)),*])
    };
    ($value:expr) => { $crate::to_value(&$value) };
}

/// Serialization or parse failure. The shim's printers are total, so only
/// [`from_str`] ever constructs one; for writers the `Result` mirrors the
/// real API.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn parse(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: format!("{} at byte {pos}", msg.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.msg.is_empty() {
            f.write_str("JSON serialization failed")
        } else {
            write!(f, "JSON error: {}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Pretty-prints a value as two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Prints a value as single-line compact JSON (no spaces after `,` / `:`),
/// matching the real crate — the form the JSONL trace exporter needs.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: ToValue + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Array(elems) => {
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(elem, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        scalar => write_pretty(scalar, 0, out),
    }
}

/// Parses a JSON document. Numbers without `.` / exponent that fit an `i64`
/// become [`Value::Int`]; everything else numeric becomes [`Value::Float`].
///
/// # Errors
///
/// Returns a message-carrying [`Error`] on malformed input or trailing
/// non-whitespace.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected '{lit}'"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes up to the next escape or closing quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self
            .peek()
            .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a trailing \uXXXX low surrogate.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.parse_hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::parse("invalid low surrogate", self.pos));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::parse("lone surrogate", self.pos));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?,
                );
            }
            _ => return Err(Error::parse("invalid escape", self.pos - 1)),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| Error::parse("bad \\u escape", self.pos))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::parse("bad \\u escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("bad number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse("bad number", start))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::parse("bad number", start))
        }
    }
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a decimal point.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, depth + 1);
                write_pretty(elem, depth + 1, out);
            }
            push_newline_indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, depth + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            push_newline_indent(out, depth);
            out.push('}');
        }
    }
}

fn push_newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splicing_does_not_move_borrowed_fields() {
        struct Verdict {
            name: String,
            clean: bool,
        }
        let verdicts = [
            Verdict {
                name: "dom1".into(),
                clean: true,
            },
            Verdict {
                name: "dom2".into(),
                clean: false,
            },
        ];
        let v = json!({
            "verdicts": verdicts.iter().map(|v| json!({
                "vm": v.name,
                "clean": v.clean,
            })).collect::<Vec<_>>(),
            "nested": {
                "total_ms": 1.5,
                "count": 2usize,
            },
            "missing": Option::<String>::None,
        });
        // The borrowed structs are still usable afterwards.
        assert_eq!(verdicts[0].name, "dom1");
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"vm\": \"dom2\""));
        assert!(text.contains("\"total_ms\": 1.5"));
        assert!(text.contains("\"count\": 2"));
        assert!(text.contains("\"missing\": null"));
    }

    #[test]
    fn pretty_printer_escapes_and_indents() {
        let v = json!({
            "text": "line1\nline2\t\"quoted\"",
            "arr": [1, 2, 3],
            "empty_obj": {},
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.starts_with("{\n  \"text\""));
        assert!(text.contains("\"arr\": [\n    1,\n    2,\n    3\n  ]"));
        assert!(text.contains("\"empty_obj\": {}"));
    }

    #[test]
    fn ints_and_floats_format_distinctly() {
        assert_eq!(to_string_pretty(&json!(42u64)).unwrap(), "42");
        assert_eq!(to_string_pretty(&json!(42.0f64)).unwrap(), "42.0");
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn compact_writer_is_single_line() {
        let v = json!({
            "a": [1, 2],
            "b": { "c": "x y", "d": null },
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,2],"b":{"c":"x y","d":null}}"#
        );
    }

    #[test]
    fn parser_round_trips_both_print_forms() {
        let v = json!({
            "name": "torn\npage \"q\"",
            "counts": [0, -3, 123456789012345i64],
            "ratio": 0.25,
            "whole": 42.0f64,
            "flag": true,
            "nothing": null,
            "nested": { "empty": [], "obj": {} },
        });
        let pretty = to_string_pretty(&v).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = from_str(r#"{"s": "a\u0041\n\\ \ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\n\\ \u{1F600}"));
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"lone \\ud800\"").is_err());
    }

    #[test]
    fn accessors_select_the_expected_variants() {
        let v = json!({
            "i": 7u64,
            "f": 1.5,
            "s": "hi",
            "b": false,
            "arr": [1],
            "nil": null,
        });
        assert_eq!(v.get("i").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("i").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("i").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("arr").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
        assert!(v.get("nil").is_some_and(Value::is_null));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().map(Vec::len), Some(6));
    }
}
