//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro (runs each
//! property as a `#[test]` over N deterministically-seeded random cases), the
//! range / `any` / `collection::vec` / `collection::hash_set` / `bool::ANY`
//! strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, accepted for offline builds:
//! * no shrinking — a failing case reports the panic from `prop_assert*`
//!   directly (the deterministic seed makes it reproducible);
//! * `prop_assume!` rejects a case by `continue`-ing the case loop, so it
//!   must appear at the top level of the property body (true of every call
//!   site in this workspace), not inside a nested loop;
//! * the default case count is 64 rather than 256.

#![warn(missing_docs)]

use std::marker::PhantomData;

pub use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng, Uniform};

/// Per-block runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: Uniform> Strategy for core::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: Uniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The whole-domain strategy for `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `sizes`.
    pub fn hash_set<S>(element: S, sizes: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, sizes }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = rng.random_range(self.sizes.clone());
            let mut set = HashSet::with_capacity(target);
            // Retry on collision, with a cap so a tiny element domain cannot
            // hang the test (the set is then simply smaller than drawn).
            let mut attempts = 0usize;
            while set.len() < target && attempts < 10_000 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The strategy for both boolean values.
pub mod bool {
    /// Strategy producing `true` or `false` uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolStrategy = BoolStrategy;

    impl super::Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut super::StdRng) -> bool {
            use rand::RngExt;
            rng.random()
        }
    }
}

/// Builds the deterministic per-test generator (FNV-1a of the test path).
#[doc(hidden)]
#[must_use]
pub fn __test_rng(test_path: &str) -> StdRng {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one rule per property fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Rejects the current case when `cond` is false (top-level use only).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_respects_size_and_element_bounds(
            v in crate::collection::vec(1u8..=255, 1..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b >= 1));
        }

        #[test]
        fn assume_rejects_cases(a in 0u8..4, b in 0u8..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn hash_set_has_distinct_elements(s in crate::collection::hash_set(0u64..0x8_0000, 1..32)) {
            prop_assert!(!s.is_empty() && s.len() < 32);
        }

        #[test]
        fn bool_any_produces_both(_x in crate::bool::ANY) {
            // Determinism of the stream is exercised by the runner itself.
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use crate::Strategy;
        let mut a = crate::__test_rng("some::test");
        let mut b = crate::__test_rng("some::test");
        let strat = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
