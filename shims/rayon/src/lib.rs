//! Offline stand-in for `rayon`.
//!
//! Implements the one parallel-iterator chain this workspace uses —
//! `slice.par_iter().map(f).collect()` — on scoped std threads: the input is
//! split into one contiguous chunk per available core, each chunk is mapped
//! on its own thread, and results are reassembled in input order (the same
//! ordering guarantee rayon's indexed collect gives). No work stealing, so
//! one straggler chunk can idle other threads; for this workspace's
//! uniform per-VM work items that is an acceptable trade for zero
//! dependencies.

#![warn(missing_docs)]

use std::thread;

/// Borrowing parallel iteration (`.par_iter()`), as rayon spells it.
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: Sync + 'a;

    /// A parallel iterator borrowing `self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T` items.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped parallel iterator; consumed by [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<T, R, F> ParMap<'_, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    /// Runs the map across threads and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let workers = thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(n);
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        thread::scope(|scope| {
            for (in_chunk, out_chunk) in self.items.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (item, out) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(f(item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index is written by exactly one chunk"))
            .collect()
    }
}

/// The glob-imported surface (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_slices_and_empty_input() {
        let slice: &[u32] = &[3, 1, 2];
        let plus: Vec<u32> = slice.par_iter().map(|&x| x + 1).collect();
        assert_eq!(plus, vec![4, 2, 3]);
        let empty: Vec<u32> = Vec::<u32>::new().par_iter().map(|&x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _out: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(threads >= cores.min(2), "expected parallel execution");
    }
}
