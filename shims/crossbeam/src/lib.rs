//! Offline stand-in for `crossbeam`.
//!
//! The workspace uses two slices of crossbeam: multi-producer channels
//! (`crossbeam::channel`) and scoped threads (`crossbeam::scope`). Both have
//! had std equivalents since Rust 1.63, so this shim maps crossbeam's names
//! onto `std::sync::mpsc` and `std::thread::scope`. Semantics match at the
//! call sites this workspace has; the full crossbeam feature set (select!,
//! bounded channels, work-stealing deques) is deliberately absent.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Multi-producer channels (std mpsc under crossbeam's names).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// An unbounded channel (`std::sync::mpsc::channel`).
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Handle for spawning threads inside a [`scope`] call.
///
/// Crossbeam passes a scope reference into each spawned closure so nested
/// spawns are possible; no call site in this workspace nests, so the closure
/// here receives a unit placeholder (`|_|` at call sites still binds).
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the handle joins on scope exit if dropped.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scoped-thread handle, joining every spawned thread before
/// returning. Returns `Err` with the panic payload if `f` or any spawned
/// thread panicked (matching crossbeam's `Result`-wrapped API).
///
/// # Errors
///
/// Returns the boxed panic payload when the scope panics.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn channel_fans_in_from_scoped_threads() {
        let (tx, rx) = unbounded();
        super::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
