//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! narrow slice of `rand`'s API it actually consumes: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling helpers
//! (`random_range`, `random_bool`, `random`). The generator is SplitMix64 —
//! not the real crate's ChaCha12, but every consumer in this workspace only
//! needs *deterministic* streams with reasonable statistical spread (the PE
//! code generator derives synthetic driver bodies from fixed seeds), which
//! SplitMix64 provides in a dozen lines with no dependencies.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one addition and two
            // xor-shift-multiply rounds per output word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait Uniform: Copy + PartialOrd {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: Uniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: Uniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo + 1; // never overflows: callers stay below u64::MAX
        T::from_u64(lo + rng.next_u64() % span)
    }
}

/// Types with a "standard" full-width distribution (for [`RngExt::random`]).
pub trait Random {
    /// Draws one value covering the type's whole domain.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random!(u8, u16, u32, u64, usize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Sampling conveniences, mirroring `rand`'s modern `Rng` surface.
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits give a uniform float in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Full-domain draw for `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1u8..=255);
            assert!(w >= 1);
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn full_domain_u8_hits_high_values() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..1000).any(|_| rng.random::<u8>() > 0xF0));
    }
}
