//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches compile against
//! (`Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!`) without registry
//! access. Instead of statistical sampling it runs each routine a handful of
//! iterations and prints mean wall-clock time — enough to smoke-test that
//! every bench still runs, not a measurement tool. Use the real criterion
//! when the registry is reachable and numbers matter.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Iterations per routine: enough to amortise clock overhead, few enough
/// that heavyweight end-to-end benches stay quick in smoke runs.
const ITERS: u32 = 3;

/// Top-level bench context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the smoke harness ignores throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the smoke harness has a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified within the group by `id`.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Closes the group (a no-op in the smoke harness).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared input volume per iteration (ignored by the smoke harness).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to each routine; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        #[allow(clippy::cast_precision_loss)]
        let per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
        self.nanos_per_iter = Some(per_iter);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) => println!("bench {label:<48} {ns:>12.0} ns/iter"),
        None => println!("bench {label:<48} (no iter() call)"),
    }
}

/// Collects bench functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` invoking each group runner in turn.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_routines() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Bytes(4096));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("closure".to_string(), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs > 0, "iter() must actually run the routine");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("parse", 64).to_string(), "parse/64");
        assert_eq!(BenchmarkId::from_parameter("md5").to_string(), "md5");
    }
}
