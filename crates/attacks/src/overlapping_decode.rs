//! Overlapping-decode stub — opcode aliasing plus a poisoned dispatch slot.
//!
//! Two instruction streams share the same bytes at different offsets:
//!
//! ```text
//! offset   bytes                          sweep / fall-through   via poisoned pointer
//! k        B8 90 90 90 55                 MOV EAX, 0x55909090    —
//! k+4      55 89 E5 83 EC 20              —                      PUSH EBP; MOV EBP,ESP;
//! k+5      89 E5                          MOV EBP, ESP             SUB ESP, 0x20  (a full
//! k+7      83 EC 20                       SUB ESP, 0x20            function prologue)
//! k+10..   90 ...                         NOP sled (both streams converge)
//! ```
//!
//! The `MOV EAX` swallows the `PUSH EBP` that starts a *second*, shifted
//! decoding of the same bytes. To make that hidden prologue reachable, the
//! attack also rewrites one `.text` relocation-slot *value* to point at
//! `k+4` — the pointer-table poisoning real rootkits use for dispatch
//! hooks. The linear sweep decodes one clean stream and sees an ordinary
//! data pointer; the CFG takes the relocated pointer as a root, decodes
//! the aliased stream, and reports the byte-range collision (L9).
//!
//! Both the rewritten window and the redirected slot value diverge from
//! the clean image, so the cross-VM vote still flags `.text`.

use mc_pe::corpus::ModuleArtifacts;
use mc_pe::parser::ParsedModule;
use mc_pe::{write_u32, write_u64, AddressWidth, PeFile};
use modchecker::PartId;

use crate::evasion::{find_patch_window, mode_of};
use crate::{AttackError, Expectation, Infection};

/// The aliased stub: `MOV EAX, imm32` whose imm bytes begin a prologue.
const STUB: [u8; 10] = [0xB8, 0x90, 0x90, 0x90, 0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20];

/// Plants two overlapping decodings of one byte range, reachable through a
/// poisoned relocated pointer.
#[derive(Clone, Copy, Debug)]
pub struct OverlappingDecode;

impl Infection for OverlappingDecode {
    fn name(&self) -> &'static str {
        "overlapping-decode aliased stub"
    }

    fn target_module(&self) -> &str {
        "ntoskrnl.exe"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let f0 = *pristine
            .code
            .functions
            .first()
            .ok_or(AttackError::NoSuitableSite("module has no functions"))?;
        let pe = pristine.build()?;
        let mut bytes = pe.bytes().to_vec();
        let parsed = ParsedModule::parse_file(&bytes).map_err(AttackError::Build)?;
        let (text_va, range) = parsed
            .find_section(".text")
            .map(|i| {
                (
                    parsed.sections[i].virtual_address,
                    parsed.sections[i].data_range.clone(),
                )
            })
            .ok_or(AttackError::NoSuitableSite("module has no .text"))?;
        let mode = mode_of(pristine.width);
        let slot_len = pristine.width.bytes();
        let (k, end) = find_patch_window(
            &bytes[range.clone()],
            f0,
            &pristine.code.reloc_offsets,
            slot_len,
            STUB.len(),
            mode,
        )
        .ok_or(AttackError::NoSuitableSite(
            "no patchable window in the first function",
        ))?;
        // A relocation slot outside the patch window whose value we divert
        // to the hidden prologue at k+4. The slot *site* stays listed in
        // `.reloc`; only the stored pointer changes.
        let slot = pristine
            .code
            .reloc_offsets
            .iter()
            .map(|&r| r as usize)
            .find(|&r| r + slot_len <= k || r >= end)
            .ok_or(AttackError::NoSuitableSite("no relocation slot to poison"))?;

        let text = &mut bytes[range];
        text[k..k + STUB.len()].copy_from_slice(&STUB);
        for b in &mut text[k + STUB.len()..end] {
            *b = 0x90;
        }
        let target = text_va + (k as u32) + 4;
        match pristine.width {
            AddressWidth::W32 => write_u32(text, slot, target),
            AddressWidth::W64 => write_u64(text, slot, u64::from(target)),
        }
        Ok(PeFile::from_parts(
            bytes,
            pristine.width,
            pe.reloc_rvas().to_vec(),
            pe.size_of_image(),
        ))
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![Expectation::Part(PartId::SectionData(".text".into()))]
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        // The aliased stream is invisible to the sweep; the CFG reaches it
        // through the poisoned pointer and reports the overlap.
        Some("L9")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_analysis::decoder::{Kind, Mode, Sweep};
    use mc_pe::corpus::ModuleBlueprint;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("ntoskrnl.exe", AddressWidth::W32, 64 * 1024)
            .with_exports(&["ExAllocatePoolWithTag", "IoCreateDevice"])
            .generate()
    }

    #[test]
    fn sweep_stays_synchronized_over_the_stub() {
        let art = pristine();
        let infected = OverlappingDecode.infect(&art).unwrap();
        let p = ParsedModule::parse_file(infected.bytes()).unwrap();
        let text = p.section_data(infected.bytes(), 0).unwrap();
        for insn in Sweep::new(text, Mode::Bits32) {
            assert!(!matches!(insn.kind, Kind::Unknown), "sweep desynced");
            assert!(
                !matches!(insn.kind, Kind::RelBranch { rel32: true, .. }),
                "no rel32 may be visible"
            );
        }
    }

    #[test]
    fn a_reloc_slot_points_at_the_hidden_prologue() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = OverlappingDecode.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        assert_eq!(pc.nt_bytes(clean.bytes()), pi.nt_bytes(infected.bytes()));
        let it = pi.section_data(infected.bytes(), 0).unwrap();
        let text_va = pi.sections[0].virtual_address;

        // Find the stub, then verify some slot stores the RVA of stub+4
        // and that the pointed-at bytes are a genuine prologue.
        let k = it
            .windows(STUB.len())
            .position(|w| w == STUB)
            .expect("stub present");
        let hidden = text_va + k as u32 + 4;
        let slot_hits = art
            .code
            .reloc_offsets
            .iter()
            .filter(|&&r| mc_pe::read_u32(it, r as usize) == Some(hidden))
            .count();
        assert!(
            slot_hits >= 1,
            "a poisoned slot targets the hidden prologue"
        );
        assert_eq!(&it[k + 4..k + 10], &[0x55, 0x89, 0xE5, 0x83, 0xEC, 0x20]);
    }
}
