//! Majority-infection (worm) scenarios — the paper's §III discussion.
//!
//! "Malware such as SQL Slammer can rapidly infect most of the machines in
//! a network and this would possibly make the above approach raise false
//! alarms. However, in either of the above cases, ModChecker is capable of
//! detecting discrepancies among VMs." This module infects an arbitrary
//! subset of a cloud with one technique so tests and benches can exercise
//! exactly that regime.
//!
//! (The paper also notes SQL Slammer itself is a buffer-overflow exploit
//! that never touches kernel code and is thus invisible to ModChecker —
//! a scoping test below pins that behaviour.)

use mc_guest::GuestOs;
use mc_hypervisor::Hypervisor;

use crate::{AttackError, Infection};

/// Applies `infection` to `fraction` of the guests (rounded down, at least
/// one if `fraction > 0`) by patching the already-loaded module image in
/// memory with the infected file's `.text` bytes. Returns the names of
/// infected VMs.
///
/// In-memory application keeps the scenario orthogonal to cloud
/// construction: the same pool can be checked before and after the
/// outbreak.
pub fn infect_fraction(
    hv: &mut Hypervisor,
    guests: &[GuestOs],
    infection: &dyn Infection,
    pristine: &mc_pe::corpus::ModuleArtifacts,
    fraction: f64,
) -> Result<Vec<String>, AttackError> {
    let count = ((guests.len() as f64 * fraction) as usize)
        .max(usize::from(fraction > 0.0))
        .min(guests.len());
    let infected_file = infection.infect(pristine)?;
    let clean_file = pristine.build()?;

    // Diff the two *file* images section-wise and apply the .text delta to
    // the loaded image of each victim (relocation slots are untouched by
    // construction of the techniques' text edits only when sizes match;
    // for size-changing attacks we overwrite the whole section range that
    // both files share).
    let clean_parsed =
        mc_pe::parser::ParsedModule::parse_file(clean_file.bytes()).expect("clean parses");
    let infected_parsed =
        mc_pe::parser::ParsedModule::parse_file(infected_file.bytes()).expect("infected parses");
    let text_c = clean_parsed
        .section_data(clean_file.bytes(), 0)
        .expect("text");
    let text_i = infected_parsed
        .section_data(infected_file.bytes(), 0)
        .expect("text");
    let common = text_c.len().min(text_i.len());
    let text_va = clean_parsed.sections[0].virtual_address as u64;

    // Byte positions covered by the *loaded* (clean) module's relocation
    // slots. The loader rebased these per-VM, so a worm that blindly wrote
    // file bytes there would desynchronize the slot from the VM's own base;
    // a real in-memory payload leaves live pointers alone.
    let slot_width = clean_file.width().bytes();
    let mut in_slot = vec![false; common];
    for &rva in clean_file.reloc_rvas() {
        let rva = rva as usize;
        let start = rva.saturating_sub(text_va as usize);
        if (text_va as usize) <= rva && start < common {
            for flag in &mut in_slot[start..(start + slot_width).min(common)] {
                *flag = true;
            }
        }
    }

    let mut infected_vms = Vec::with_capacity(count);
    for guest in guests.iter().take(count) {
        // Write only the bytes that differ, mimicking an in-memory worm
        // payload (and keeping relocated slots intact).
        let mut i = 0usize;
        while i < common {
            if text_c[i] != text_i[i] && !in_slot[i] {
                let start = i;
                while i < common && text_c[i] != text_i[i] && !in_slot[i] {
                    i += 1;
                }
                guest
                    .patch_module(
                        hv,
                        &pristine.name,
                        text_va + start as u64,
                        &text_i[start..i],
                    )
                    .expect("victim has the module loaded");
            } else {
                i += 1;
            }
        }
        let name = hv.vm(guest.vm).expect("vm exists").name.clone();
        infected_vms.push(name);
    }
    Ok(infected_vms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technique;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;
    use modchecker::ModChecker;

    fn cloud(n: usize) -> (Hypervisor, Vec<GuestOs>, ModuleBlueprint) {
        let mut hv = Hypervisor::new();
        let bp = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 16 * 1024);
        let guests =
            build_cloud_with_modules(&mut hv, n, AddressWidth::W32, std::slice::from_ref(&bp))
                .unwrap();
        (hv, guests, bp)
    }

    #[test]
    fn majority_infection_detected_as_discrepancy() {
        let (mut hv, guests, bp) = cloud(5);
        let infection = Technique::InlineHook.infection();
        let infected = infect_fraction(&mut hv, &guests, &*infection, &bp.generate(), 0.6).unwrap();
        assert_eq!(infected.len(), 3);

        let ids: Vec<_> = guests.iter().map(|g| g.vm).collect();
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert!(
            report.any_discrepancy(),
            "worm outbreak must still produce a pool-wide discrepancy"
        );
    }

    #[test]
    fn infected_vms_match_each_other() {
        // All victims carry the identical payload: their pairwise
        // comparisons match; only clean-vs-infected pairs mismatch.
        let (mut hv, guests, bp) = cloud(4);
        let infection = Technique::OpcodeReplacement.infection();
        infect_fraction(&mut hv, &guests, &*infection, &bp.generate(), 0.5).unwrap();

        let ids: Vec<_> = guests.iter().map(|g| g.vm).collect();
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let mismatching_pairs = report.matrix.iter().filter(|o| !o.matches()).count();
        // 2 infected, 2 clean → 2×2 cross pairs mismatch, 2 same-side pairs
        // match.
        assert_eq!(mismatching_pairs, 4);
        assert_eq!(report.matrix.len(), 6);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let (mut hv, guests, bp) = cloud(3);
        let infection = Technique::InlineHook.infection();
        let infected = infect_fraction(&mut hv, &guests, &*infection, &bp.generate(), 0.0).unwrap();
        assert!(infected.is_empty());
        let ids: Vec<_> = guests.iter().map(|g| g.vm).collect();
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert!(report.all_clean());
    }

    #[test]
    fn user_space_only_malware_is_out_of_scope() {
        // The SQL-Slammer caveat: an exploit that never modifies kernel
        // module code produces no discrepancy — by design.
        let (mut hv, guests, _bp) = cloud(3);
        // Simulate a user-space compromise: write into a guest page that is
        // NOT part of any kernel module.
        let vm = hv.vm_mut(guests[0].vm).unwrap();
        vm.map_range(0x0040_0000, 4096).unwrap();
        vm.write_virt(0x0040_0000, b"slammer payload").unwrap();

        let ids: Vec<_> = guests.iter().map(|g| g.vm).collect();
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert!(report.all_clean(), "kernel modules untouched → no flag");
    }
}
