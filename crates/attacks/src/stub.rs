//! EXP-B3 — trivial modification in the stub program (§V.B.3, Figure 6).
//!
//! Replace three characters of the DOS stub message in the "Hello World"
//! dummy driver: "This program cannot be run in DOS mode" becomes
//! "... in CHK mode". Code alignment is untouched, nothing else in the
//! image moves; ModChecker must flag *only* the DOS header hash (the DOS
//! part covers `[0, e_lfanew)`, stub included).

use mc_pe::consts::DOS_STUB_MESSAGE;
use mc_pe::corpus::ModuleArtifacts;
use mc_pe::PeFile;
use modchecker::PartId;

use crate::{AttackError, Expectation, Infection};

/// "DOS" → "CHK" in the stub message.
#[derive(Clone, Copy, Debug)]
pub struct StubModification;

impl Infection for StubModification {
    fn name(&self) -> &'static str {
        "stub program modification (DOS -> CHK)"
    }

    fn target_module(&self) -> &str {
        "helloworld.sys"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let message: Vec<u8> = {
            let original = DOS_STUB_MESSAGE;
            let needle = b"DOS";
            let at = original
                .windows(needle.len())
                .position(|w| w == needle)
                .ok_or(AttackError::NoSuitableSite("no \"DOS\" in stub message"))?;
            let mut m = original.to_vec();
            m[at..at + 3].copy_from_slice(b"CHK");
            m
        };
        let artifacts = pristine.clone();
        let builder = artifacts.builder.dos_stub_message(&message);
        Ok(builder.build()?)
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![Expectation::Part(PartId::DosHeader)]
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        // The canonical DOS-stub message is a structural invariant (L4).
        Some("L4")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::parser::ParsedModule;
    use mc_pe::AddressWidth;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("helloworld.sys", AddressWidth::W32, 8 * 1024).generate()
    }

    #[test]
    fn stub_message_edited_in_place() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = StubModification.infect(&art).unwrap();
        assert_eq!(clean.bytes().len(), infected.bytes().len());
        assert!(infected
            .bytes()
            .windows(b"CHK mode".len())
            .any(|w| w == b"CHK mode"));
        assert!(!infected
            .bytes()
            .windows(b"DOS mode".len())
            .any(|w| w == b"DOS mode"));
    }

    #[test]
    fn only_dos_region_differs() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = StubModification.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        assert_ne!(pc.dos_bytes(clean.bytes()), pi.dos_bytes(infected.bytes()));
        // Everything from the NT headers on is byte-identical.
        assert_eq!(
            &clean.bytes()[pc.nt_range.start..],
            &infected.bytes()[pi.nt_range.start..]
        );
    }
}
