//! IAT-pivot hook — control-flow hijack with *zero* hashed-byte changes.
//!
//! Unlike [`iat_hook`](crate::iat_hook) (a runtime in-memory probe), this
//! is a file-level infection: it rewrites the first `FirstThunk` (IAT)
//! slot in `.idata` to point at code of the attacker's choosing inside
//! `.text`, while leaving the `OriginalFirstThunk` name table — and every
//! byte the checker hashes — untouched. Every indirect `CALL [slot]`
//! through that import then dispatches to the planted target.
//!
//! ModChecker's vote cannot see it by design: the IAT lives in
//! initialized data, which the paper's Algorithm 2 deliberately excludes
//! from content hashing (resolved pointers legitimately differ across
//! VMs). Headers, `.text` and `.reloc` stay byte-identical, so the
//! infected VM votes *clean* under both compare strategies. Only the L6
//! import-integrity lint — cross-checking the IAT against its name table
//! inside one capture — names the victim.

use mc_pe::consts::DIR_IMPORT;
use mc_pe::corpus::ModuleArtifacts;
use mc_pe::parser::ParsedModule;
use mc_pe::{read_u32, write_u32, write_u64, AddressWidth, PeFile};

use crate::{AttackError, Expectation, Infection};

/// `IMAGE_IMPORT_DESCRIPTOR.FirstThunk` offset within the descriptor.
const DESC_FIRST_THUNK: usize = 16;

/// Replaces the first IAT slot with a pointer into `.text`.
#[derive(Clone, Copy, Debug)]
pub struct IatPivot;

impl Infection for IatPivot {
    fn name(&self) -> &'static str {
        "IAT pivot (import-table pointer hook)"
    }

    fn target_module(&self) -> &str {
        "dummy.sys"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let f0 = *pristine
            .code
            .functions
            .first()
            .ok_or(AttackError::NoSuitableSite("module has no functions"))?;
        let pe = pristine.build()?;
        let mut bytes = pe.bytes().to_vec();
        let parsed = ParsedModule::parse_file(&bytes).map_err(AttackError::Build)?;
        let (dir_rva, _) = parsed
            .data_directory(&bytes, DIR_IMPORT)
            .filter(|&(rva, _)| rva != 0)
            .ok_or(AttackError::NoSuitableSite("module has no import table"))?;
        let desc_off = parsed
            .rva_to_offset(dir_rva)
            .ok_or(AttackError::NoSuitableSite("import directory unmapped"))?;
        let ft_rva = read_u32(&bytes, desc_off + DESC_FIRST_THUNK)
            .filter(|&rva| rva != 0)
            .ok_or(AttackError::NoSuitableSite("descriptor has no IAT"))?;
        let ft_off = parsed
            .rva_to_offset(ft_rva)
            .ok_or(AttackError::NoSuitableSite("IAT unmapped"))?;
        let text_va = parsed
            .find_section(".text")
            .map(|i| parsed.sections[i].virtual_address)
            .ok_or(AttackError::NoSuitableSite("module has no .text"))?;

        // Divert the first import's dispatch slot to the first function —
        // standing in for an attacker stub already resident in .text.
        let target = text_va + f0.entry;
        match pristine.width {
            AddressWidth::W32 => write_u32(&mut bytes, ft_off, target),
            AddressWidth::W64 => write_u64(&mut bytes, ft_off, u64::from(target)),
        }
        Ok(PeFile::from_parts(
            bytes,
            pristine.width,
            pe.reloc_rvas().to_vec(),
            pe.size_of_image(),
        ))
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        // `.idata` is excluded from content hashing: the vote sees nothing.
        Vec::new()
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        Some("L6")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::corpus::ModuleBlueprint;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("dummy.sys", AddressWidth::W32, 12 * 1024)
            .with_imports(&[(
                "ntoskrnl.exe",
                &["IoCreateDevice", "IoDeleteDevice", "IofCompleteRequest"],
            )])
            .generate()
    }

    #[test]
    fn only_the_iat_slot_changes() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = IatPivot.infect(&art).unwrap();
        assert_eq!(clean.bytes().len(), infected.bytes().len());
        let diffs: Vec<usize> = clean
            .bytes()
            .iter()
            .zip(infected.bytes())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert!(!diffs.is_empty(), "the slot must actually change");
        assert!(
            diffs.len() <= 4,
            "at most one 32-bit slot rewritten: {diffs:?}"
        );
        let p = ParsedModule::parse_file(clean.bytes()).unwrap();
        let idata = p
            .find_section(".idata")
            .map(|i| p.sections[i].data_range.clone())
            .unwrap();
        for d in diffs {
            assert!(idata.contains(&d), "diff at {d:#x} outside .idata");
        }
    }

    #[test]
    fn the_slot_points_into_text() {
        let art = pristine();
        let infected = IatPivot.infect(&art).unwrap();
        let p = ParsedModule::parse_file(infected.bytes()).unwrap();
        let (dir_rva, _) = p.data_directory(infected.bytes(), DIR_IMPORT).unwrap();
        let desc = p.rva_to_offset(dir_rva).unwrap();
        let ft_rva = read_u32(infected.bytes(), desc + DESC_FIRST_THUNK).unwrap();
        let ft_off = p.rva_to_offset(ft_rva).unwrap();
        let value = read_u32(infected.bytes(), ft_off).unwrap();
        let text = &p.sections[p.find_section(".text").unwrap()];
        assert!(
            value >= text.virtual_address
                && value < text.virtual_address + text.data_range.len() as u32,
            "slot {value:#x} must resolve into .text"
        );
        assert_eq!(value, text.virtual_address + art.code.functions[0].entry);
    }
}
