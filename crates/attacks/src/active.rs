//! Active adversaries: seeded scripts with simulated-time *behavior*.
//!
//! The file-level techniques in this crate are one-shot byte patches — the
//! paper's on-disk infections, applied once and then scanned. The scripts
//! here model rootkits that *keep acting* while the monitor runs: each
//! implements [`AdversaryScript`] and is stepped by the testbed's replay
//! driver before every scan round, with a [`RoundCtx`] describing the
//! round's (possibly jittered) scan phase.
//!
//! | Adversary | Evades | Caught by |
//! |---|---|---|
//! | [`DkomUnlink`] — unlink on **every** VM | list diff (no majority left) | cross-view orphan vote |
//! | [`ScrubRace`] — restore clean before each scheduled scan | fixed-phase polling | scan-phase jitter; tamper-evidence generations |
//! | [`BlindChecker`] — `DllBase` redirected at a clean decoy | the content vote itself | cross-view unlisted-image vote |
//!
//! All three are deterministic: their effect depends only on construction
//! parameters and the `RoundCtx` sequence, so fleet goldens and the
//! ground-truth oracle can recompute exactly what each round observes.

use mc_guest::ldr::LdrOffsets;
use mc_guest::GuestOs;
use mc_hypervisor::{AddressWidth, AdversaryScript, HvError, Hypervisor, RoundCtx, VmId};

/// Guest VA where [`BlindChecker`] maps its decoy image, per width: 8 MiB
/// into the module region, above the base allocator's reach (≤ 4 MiB skew
/// plus a few hundred KiB of modules and gaps) yet inside the span the
/// cross-view sweep brackets.
fn decoy_base(width: AddressWidth) -> u64 {
    match width {
        AddressWidth::W32 => 0xF780_0000,
        AddressWidth::W64 => 0xFFFF_F880_0080_0000,
    }
}

/// Per-VM victim coordinates captured at construction (ground truth is
/// read once, before the adversary starts acting; scripts then work with
/// nothing but the hypervisor, like a real in-guest implant).
#[derive(Clone, Copy, Debug)]
struct Victim {
    vm: VmId,
    entry_va: u64,
    base: u64,
    size: u32,
    width: AddressWidth,
}

fn victims_of(guests: &[GuestOs], module: &str) -> Vec<Victim> {
    guests
        .iter()
        .filter_map(|g| {
            let m = g.find_module(module)?;
            Some(Victim {
                vm: g.vm,
                entry_va: m.ldr_entry_va,
                base: m.base,
                size: m.size,
                width: g.width,
            })
        })
        .collect()
}

/// DKOM unlinking on **all** of a module's VMs.
///
/// A single-VM unlink is exactly what the EXT-2 list diff catches: the
/// module stays in the pool consensus and the hider shows up as
/// `MissingOn`. Unlinking *everywhere* removes the module from the
/// consensus itself — no list walk, no vote, no scan. The module keeps
/// executing: its `LDR_DATA_TABLE_ENTRY` stays resident in the pool and
/// its image stays mapped, which is precisely the physical residue the
/// cross-view scan votes on.
#[derive(Debug)]
pub struct DkomUnlink {
    victims: Vec<Victim>,
    done: bool,
}

impl DkomUnlink {
    /// Targets `module` on every guest that loaded it.
    pub fn new(guests: &[GuestOs], module: &str) -> Self {
        DkomUnlink {
            victims: victims_of(guests, module),
            done: false,
        }
    }
}

impl AdversaryScript for DkomUnlink {
    fn name(&self) -> &'static str {
        "dkom-unlink"
    }

    fn step(&mut self, hv: &mut Hypervisor, _ctx: &RoundCtx) -> Result<(), HvError> {
        if self.done {
            return Ok(());
        }
        for v in &self.victims {
            let offs = LdrOffsets::for_width(v.width);
            mc_guest::ldr::unlink(hv.vm_mut(v.vm)?, &offs, v.entry_va)?;
        }
        self.done = true;
        Ok(())
    }
}

/// Scrub-race restorer: infected between scans, clean *at* them.
///
/// The adversary has watched the monitor long enough to learn its cadence:
/// every round it re-applies its payload (the dirty window) and restores
/// the clean bytes just before the scheduled scan instant, betting the
/// scan lands within `window_ns` of the nominal phase. Against a
/// fixed-phase poller that bet always wins — every capture reads clean
/// bytes. Two defenses break it:
///
/// * **Scan-phase jitter** moves the actual scan `scan_offset_ns` past the
///   nominal instant; any round whose offset exceeds the adversary's
///   restore window scans mid-infection ([`ScrubRace::visible_at`]).
/// * **Tamper evidence**: even a round that reads clean bytes sees the
///   pages' write-generations moved with identical content — the
///   scrubbed-then-restored signature (`CheckConfig::tamper_evidence`).
#[derive(Debug)]
pub struct ScrubRace {
    sites: Vec<(VmId, u64)>,
    clean: Vec<u8>,
    payload: Vec<u8>,
    window_ns: u64,
}

impl ScrubRace {
    /// Targets `module` at `offset` on every guest that loaded it,
    /// snapshotting the clean bytes the restore pass will replay.
    ///
    /// # Errors
    ///
    /// Fails if the clean bytes cannot be read from a victim.
    ///
    /// # Panics
    ///
    /// Panics if `offset + payload.len()` overruns the module image.
    pub fn new(
        hv: &Hypervisor,
        guests: &[GuestOs],
        module: &str,
        offset: u64,
        payload: Vec<u8>,
        window_ns: u64,
    ) -> Result<Self, HvError> {
        let victims = victims_of(guests, module);
        let mut sites = Vec::new();
        let mut clean = Vec::new();
        for v in &victims {
            assert!(
                offset + payload.len() as u64 <= u64::from(v.size),
                "scrub-race payload overruns {module}"
            );
            let site = v.base + offset;
            if clean.is_empty() {
                clean = vec![0u8; payload.len()];
                hv.vm(v.vm)?.read_virt(site, &mut clean)?;
            }
            sites.push((v.vm, site));
        }
        Ok(ScrubRace {
            sites,
            clean,
            payload,
            window_ns,
        })
    }

    /// Learns a restore window from observed scan offsets: the adversary
    /// assumes future scans land no later than it has ever seen, plus
    /// `slack_ns`. Against an unjittered monitor every observation is 0 —
    /// the learned window is tight and the first jittered round beyond it
    /// scans mid-infection.
    pub fn learn_window(observed_offsets_ns: &[u64], slack_ns: u64) -> u64 {
        observed_offsets_ns
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .saturating_add(slack_ns)
    }

    /// Whether a scan at `scan_offset_ns` past the nominal phase observes
    /// the payload (ground truth for the oracle: the restore only covers
    /// the learned window).
    pub fn visible_at(&self, scan_offset_ns: u64) -> bool {
        scan_offset_ns > self.window_ns
    }
}

impl AdversaryScript for ScrubRace {
    fn name(&self) -> &'static str {
        "scrub-race"
    }

    fn step(&mut self, hv: &mut Hypervisor, ctx: &RoundCtx) -> Result<(), HvError> {
        for &(vm, site) in &self.sites {
            // The dirty window: the payload goes in after the previous
            // scan...
            hv.vm_mut(vm)?.write_virt(site, &self.payload)?;
            // ...and the restore lands before the *scheduled* instant. A
            // scan jittered past the window catches the payload in place.
            if ctx.scan_offset_ns <= self.window_ns {
                hv.vm_mut(vm)?.write_virt(site, &self.clean)?;
            }
        }
        Ok(())
    }
}

/// Checker blinding: the list stays intact, the captures read a decoy.
///
/// On every VM the script manually maps a decoy copy of the victim's
/// clean image in an unused region — processing the image's relocation
/// slots for the new base, exactly like a manually-mapping rootkit —
/// redirects the `LDR_DATA_TABLE_ENTRY.DllBase` at the copy, and only
/// then infects the real image. Every walk finds the module, every
/// capture reads the pristine (coherently relocated) decoy, every vote
/// agrees — the content check is structurally blind. The truly mapped
/// image, though, is now claimed by *no* list entry: the cross-view
/// sweep finds its PE header, fails to match its base against any claim,
/// and attributes it by `SizeOfImage` to the victim entry.
#[derive(Debug)]
pub struct BlindChecker {
    victims: Vec<(Victim, Vec<u32>)>,
    offset: u64,
    payload: Vec<u8>,
    done: bool,
}

impl BlindChecker {
    /// Targets `module` on every guest that loaded it; `offset`/`payload`
    /// is the real-image infection applied once the decoy is in place.
    /// The guests' reloc ground truth stands in for the PE relocation
    /// table an in-guest adversary would parse itself.
    pub fn new(guests: &[GuestOs], module: &str, offset: u64, payload: Vec<u8>) -> Self {
        let victims = guests
            .iter()
            .filter_map(|g| {
                let m = g.find_module(module)?;
                Some((
                    Victim {
                        vm: g.vm,
                        entry_va: m.ldr_entry_va,
                        base: m.base,
                        size: m.size,
                        width: g.width,
                    },
                    m.reloc_rvas.clone(),
                ))
            })
            .collect();
        BlindChecker {
            victims,
            offset,
            payload,
            done: false,
        }
    }
}

impl AdversaryScript for BlindChecker {
    fn name(&self) -> &'static str {
        "blind-checker"
    }

    fn step(&mut self, hv: &mut Hypervisor, _ctx: &RoundCtx) -> Result<(), HvError> {
        if self.done {
            return Ok(());
        }
        for (v, reloc_rvas) in &self.victims {
            assert!(
                self.offset + self.payload.len() as u64 <= u64::from(v.size),
                "blind-checker payload overruns the victim image"
            );
            let decoy = decoy_base(v.width);
            let delta = decoy.wrapping_sub(v.base);
            let vm = hv.vm_mut(v.vm)?;
            let mut image = vec![0u8; v.size as usize];
            vm.read_virt(v.base, &mut image)?;
            // Process relocations for the decoy base so the copy is
            // exactly what a loader would have produced there — a decoy
            // that still carries the original base's absolute addresses
            // would canonicalize to garbage and flag the vote.
            for &rva in reloc_rvas {
                let at = rva as usize;
                match v.width {
                    AddressWidth::W32 => {
                        let old = u32::from_le_bytes(image[at..at + 4].try_into().unwrap());
                        let new = old.wrapping_add(delta as u32);
                        image[at..at + 4].copy_from_slice(&new.to_le_bytes());
                    }
                    AddressWidth::W64 => {
                        let old = u64::from_le_bytes(image[at..at + 8].try_into().unwrap());
                        let new = old.wrapping_add(delta);
                        image[at..at + 8].copy_from_slice(&new.to_le_bytes());
                    }
                }
            }
            vm.map_range(decoy, u64::from(v.size))?;
            vm.write_virt(decoy, &image)?;
            let offs = LdrOffsets::for_width(v.width);
            vm.write_ptr(v.entry_va + offs.dll_base, decoy)?;
            vm.write_virt(v.base + self.offset, &self.payload)?;
        }
        self.done = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<GuestOs>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 12 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        (hv, guests)
    }

    #[test]
    fn dkom_unlink_is_idempotent_and_pool_wide() {
        let (mut hv, guests) = cloud(3);
        let mut adv = DkomUnlink::new(&guests, "ndis.sys");
        adv.step(&mut hv, &RoundCtx::unjittered(0, 1_000)).unwrap();
        // Stepping again must not re-stitch dangling links.
        adv.step(&mut hv, &RoundCtx::unjittered(1, 1_000)).unwrap();
        for g in &guests {
            let head = g.list_head_va;
            let vm = hv.vm(g.vm).unwrap();
            let mut walked = Vec::new();
            let mut cur = vm.read_ptr(head).unwrap();
            while cur != head {
                walked.push(cur);
                cur = vm.read_ptr(cur).unwrap();
            }
            let hidden = g.find_module("ndis.sys").unwrap().ldr_entry_va;
            assert!(!walked.contains(&hidden), "entry still linked");
            assert_eq!(walked.len(), 1, "hal.dll must stay linked");
        }
    }

    #[test]
    fn scrub_race_is_clean_inside_the_window_and_dirty_past_it() {
        let (mut hv, guests) = cloud(3);
        let payload = vec![0xCC, 0xCC];
        let mut adv =
            ScrubRace::new(&hv, &guests, "hal.dll", 0x1003, payload.clone(), 5_000).unwrap();
        let site = guests[0].find_module("hal.dll").unwrap().base + 0x1003;
        let mut buf = [0u8; 2];

        // Scheduled phase (offset 0 <= window): restored to clean.
        let clean = {
            hv.vm(guests[0].vm)
                .unwrap()
                .read_virt(site, &mut buf)
                .unwrap();
            buf
        };
        adv.step(&mut hv, &RoundCtx::unjittered(0, 1_000_000))
            .unwrap();
        hv.vm(guests[0].vm)
            .unwrap()
            .read_virt(site, &mut buf)
            .unwrap();
        assert_eq!(buf, clean, "inside the window the site must read clean");
        assert!(!adv.visible_at(0));

        // Jittered past the window: payload caught in place.
        let ctx = RoundCtx {
            round: 1,
            period_ns: 1_000_000,
            scan_offset_ns: 9_000,
        };
        adv.step(&mut hv, &ctx).unwrap();
        hv.vm(guests[0].vm)
            .unwrap()
            .read_virt(site, &mut buf)
            .unwrap();
        assert_eq!(&buf[..], &payload[..], "past the window the payload shows");
        assert!(adv.visible_at(9_000));
    }

    #[test]
    fn blind_checker_redirects_every_entry_at_a_clean_decoy() {
        let (mut hv, guests) = cloud(3);
        let mut adv = BlindChecker::new(&guests, "ndis.sys", 0x1003, vec![0xCC]);
        adv.step(&mut hv, &RoundCtx::unjittered(0, 1_000)).unwrap();
        adv.step(&mut hv, &RoundCtx::unjittered(1, 1_000)).unwrap(); // idempotent
        let offs = LdrOffsets::for_width(AddressWidth::W32);
        for g in &guests {
            let m = g.find_module("ndis.sys").unwrap();
            let vm = hv.vm(g.vm).unwrap();
            let claimed = vm.read_ptr(m.ldr_entry_va + offs.dll_base).unwrap();
            assert_eq!(claimed, decoy_base(AddressWidth::W32));
            // Decoy reads clean, real image carries the payload.
            let mut real = [0u8; 1];
            vm.read_virt(m.base + 0x1003, &mut real).unwrap();
            assert_eq!(real[0], 0xCC);
            let mut decoy = [0u8; 1];
            vm.read_virt(claimed + 0x1003, &mut decoy).unwrap();
            assert_ne!(decoy[0], 0xCC);
        }
    }
}
