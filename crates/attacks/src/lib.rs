//! Infection techniques from the ModChecker evaluation (§V.B).
//!
//! The paper manually infected Windows XP kernel modules with the
//! techniques common rootkits use, then verified ModChecker flags exactly
//! the right parts. This crate performs the same byte-level edits
//! programmatically, against the synthetic module corpus:
//!
//! | Experiment | Technique | Module | Paper-reported mismatches |
//! |---|---|---|---|
//! | EXP-B1 | [`opcode`] single-opcode replacement (`DEC ECX` → `SUB ECX,1`) | hal.dll | `.text` data only |
//! | EXP-B2 | [`inline_hook`] jmp-hook + opcode-cave payload (Figure 5) | hal.dll | `.text` data only |
//! | EXP-B3 | [`stub`] DOS-stub text edit ("DOS" → "CHK", Figure 6) | helloworld.sys | DOS header only |
//! | EXP-B4 | [`dll_hook`] attach `inject.dll` via PE-header modification | dummy.sys | NT, OPTIONAL, all section headers, `.text` |
//!
//! Each technique implements [`Infection`]: it transforms the pristine
//! module *file* (the paper's on-disk infection, loaded at next boot) and
//! declares which parts ModChecker is expected to flag, so the experiment
//! harness can assert exact agreement with the paper.
//!
//! Additional vectors beyond the paper's table: DKOM module hiding (via
//! `mc_guest::GuestOs::dkom_hide`) and in-memory patching
//! (`GuestOs::patch_module`), plus [`worm`] scenarios that infect a
//! majority of the pool (§III discussion).
//!
//! The *evasive* tier models rootkits that fight the checker's static
//! lints with anti-disassembly tricks (cf. the MemoryRanger line of work:
//! real rootkits hijack dispatch pointers, not entry bytes):
//!
//! | Technique | Module | Vote sees | Sweep (L1–L5) | CFG (L6–L9) |
//! |---|---|---|---|---|
//! | [`jump_over_junk`] hidden `rel32` behind a junk byte | hal.dll | `.text` | silent | L8 |
//! | [`iat_pivot`] IAT slot diverted into `.text` | dummy.sys | **nothing** | silent | L6 |
//! | [`overlapping_decode`] aliased stub via poisoned pointer slot | ntoskrnl.exe | `.text` | silent | L9 |
//!
//! The *active* tier ([`active`]) goes one step further: instead of a
//! one-shot byte patch, each adversary is an
//! [`mc_hypervisor::AdversaryScript`] the testbed replays between scan
//! rounds — unlinking the module list on every VM, racing the scan window
//! with scrub/restore writes, or blinding the checker's captures with a
//! decoy image. Their detection matrix lives in the [`active`] module docs.

#![warn(missing_docs)]

pub mod active;
pub mod dll_hook;
mod evasion;
pub mod iat_hook;
pub mod iat_pivot;
pub mod inline_hook;
pub mod jump_over_junk;
pub mod opcode;
pub mod overlapping_decode;
pub mod stub;
pub mod worm;

use std::fmt;

use mc_pe::corpus::ModuleArtifacts;
use mc_pe::{PeError, PeFile};
use modchecker::PartId;

/// Errors from applying an infection.
#[derive(Clone, Debug)]
pub enum AttackError {
    /// The technique found no suitable site (e.g. no opcode cave large
    /// enough for the payload).
    NoSuitableSite(&'static str),
    /// Rebuilding the infected image failed.
    Build(PeError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoSuitableSite(what) => write!(f, "no suitable site: {what}"),
            AttackError::Build(e) => write!(f, "rebuilding infected image failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<PeError> for AttackError {
    fn from(e: PeError) -> Self {
        AttackError::Build(e)
    }
}

/// How an expected mismatch set refers to section-header parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Exactly this part.
    Part(PartId),
    /// Every section header in the module.
    AllSectionHeaders,
}

/// A file-level infection technique.
pub trait Infection {
    /// Short technique name (for reports).
    fn name(&self) -> &'static str;

    /// Module the technique targets in the standard corpus.
    fn target_module(&self) -> &str;

    /// Transforms the pristine module into its infected variant.
    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError>;

    /// The mismatch set the paper reports for this technique.
    fn expected_mismatches(&self) -> Vec<Expectation>;

    /// The `mc-analysis` lint codes expected to flag this technique on a
    /// *single* VM, with no reference to compare against (EXT-4), or
    /// `None` for techniques below static-analysis resolution (EXP-B1's
    /// one-opcode swap is length-preserving valid code: only the cross-VM
    /// hash comparison sees it).
    fn statically_detectable(&self) -> Option<&'static str> {
        None
    }
}

/// The paper's four techniques plus the evasive tier, in evaluation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Technique {
    /// §V.B.1 single opcode replacement.
    OpcodeReplacement,
    /// §V.B.2 inline hooking.
    InlineHook,
    /// §V.B.3 trivial stub modification.
    StubModification,
    /// §V.B.4 PE-header modification via DLL hooking.
    DllHook,
    /// Evasive: hidden `rel32` behind a junk byte (sweep-invisible).
    JumpOverJunk,
    /// Evasive: IAT slot diverted into `.text` (vote-invisible).
    IatPivot,
    /// Evasive: overlapping decode through a poisoned pointer slot.
    OverlappingDecode,
}

impl Technique {
    /// The paper's four, in paper order.
    pub const ALL: [Technique; 4] = [
        Technique::OpcodeReplacement,
        Technique::InlineHook,
        Technique::StubModification,
        Technique::DllHook,
    ];

    /// The anti-disassembly tier: file-level infections the linear-sweep
    /// lints provably miss and the CFG lints catch.
    pub const EVASIVE: [Technique; 3] = [
        Technique::JumpOverJunk,
        Technique::IatPivot,
        Technique::OverlappingDecode,
    ];

    /// Every file-level technique: the paper's four plus the evasive tier.
    pub const COMPLETE: [Technique; 7] = [
        Technique::OpcodeReplacement,
        Technique::InlineHook,
        Technique::StubModification,
        Technique::DllHook,
        Technique::JumpOverJunk,
        Technique::IatPivot,
        Technique::OverlappingDecode,
    ];

    /// Instantiates the technique's [`Infection`].
    pub fn infection(self) -> Box<dyn Infection> {
        match self {
            Technique::OpcodeReplacement => Box::new(opcode::OpcodeReplacement),
            Technique::InlineHook => Box::new(inline_hook::InlineHook),
            Technique::StubModification => Box::new(stub::StubModification),
            Technique::DllHook => Box::new(dll_hook::DllHook),
            Technique::JumpOverJunk => Box::new(jump_over_junk::JumpOverJunk),
            Technique::IatPivot => Box::new(iat_pivot::IatPivot),
            Technique::OverlappingDecode => Box::new(overlapping_decode::OverlappingDecode),
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::OpcodeReplacement => "single opcode replacement",
            Technique::InlineHook => "inline hooking",
            Technique::StubModification => "stub modification",
            Technique::DllHook => "PE header modification via DLL hooking",
            Technique::JumpOverJunk => "jump-over-junk hidden transfer",
            Technique::IatPivot => "IAT pivot hook",
            Technique::OverlappingDecode => "overlapping-decode aliased stub",
        };
        f.write_str(s)
    }
}

/// Resolves an [`Expectation`] list against a concrete part list (as
/// extracted from a clean module) into the exact expected `PartId` set.
pub fn resolve_expectations(expectations: &[Expectation], all_parts: &[PartId]) -> Vec<PartId> {
    let mut out = Vec::new();
    for e in expectations {
        match e {
            Expectation::Part(p) => out.push(p.clone()),
            Expectation::AllSectionHeaders => out.extend(
                all_parts
                    .iter()
                    .filter(|p| matches!(p, PartId::SectionHeader(_)))
                    .cloned(),
            ),
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_techniques_instantiate() {
        for t in Technique::COMPLETE {
            let inf = t.infection();
            assert!(!inf.name().is_empty());
            assert!(!inf.target_module().is_empty());
            // Every technique must be observable *somewhere*: by the vote
            // (expected mismatches) or by a static lint. IatPivot is the
            // deliberate vote-invisible case.
            assert!(
                !inf.expected_mismatches().is_empty() || inf.statically_detectable().is_some(),
                "{t} is observable by neither the vote nor the lints"
            );
        }
    }

    #[test]
    fn evasive_tier_is_a_subset_of_complete() {
        for t in Technique::EVASIVE {
            assert!(Technique::COMPLETE.contains(&t));
            assert!(!Technique::ALL.contains(&t), "paper set stays untouched");
        }
        assert_eq!(
            Technique::COMPLETE.len(),
            Technique::ALL.len() + Technique::EVASIVE.len()
        );
    }

    #[test]
    fn expectations_resolve_section_headers() {
        let parts = vec![
            PartId::DosHeader,
            PartId::SectionHeader(".text".into()),
            PartId::SectionHeader(".data".into()),
            PartId::SectionData(".text".into()),
        ];
        let resolved = resolve_expectations(
            &[
                Expectation::AllSectionHeaders,
                Expectation::Part(PartId::SectionData(".text".into())),
            ],
            &parts,
        );
        assert_eq!(
            resolved,
            vec![
                PartId::SectionHeader(".data".into()),
                PartId::SectionHeader(".text".into()),
                PartId::SectionData(".text".into()),
            ]
        );
    }
}
