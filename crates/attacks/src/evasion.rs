//! Shared machinery for the anti-disassembly ("evasive") attacks.
//!
//! [`JumpOverJunk`](crate::jump_over_junk::JumpOverJunk) and
//! [`OverlappingDecode`](crate::overlapping_decode::OverlappingDecode) both
//! need a patch window inside a generated function whose bytes they can
//! rewrite so that the *linear sweep* still decodes cleanly — no unknown
//! opcodes, no visible `rel32`, resynchronized before the function's
//! epilogue. That takes a window aligned on clean sweep boundaries at both
//! ends, clear of relocation slots (the guest loader rewrites those at
//! load time and would corrupt the crafted encoding).

use mc_analysis::decoder::{Mode, Sweep};
use mc_pe::codegen::FunctionInfo;
use mc_pe::AddressWidth;

/// Decoder mode for a module width.
pub(crate) fn mode_of(width: AddressWidth) -> Mode {
    match width {
        AddressWidth::W32 => Mode::Bits32,
        AddressWidth::W64 => Mode::Bits64,
    }
}

/// Finds `[start, end)` inside `f`'s body suitable for an evasive patch:
///
/// * both `start` and `end` are clean-sweep instruction boundaries, so the
///   sweep enters and leaves the patch in sync with the original stream;
/// * `start >= entry + 6` (the prologue stays intact — no L1 bait) and
///   `end` is at or before the epilogue;
/// * `end - start >= min_len`;
/// * no relocation slot (`slot_len` bytes each) intersects the window.
pub(crate) fn find_patch_window(
    text: &[u8],
    f: FunctionInfo,
    reloc_offsets: &[u32],
    slot_len: usize,
    min_len: usize,
    mode: Mode,
) -> Option<(usize, usize)> {
    let body_start = f.entry as usize + 6;
    let body_end = (f.entry + f.len) as usize - 4;
    let boundaries: Vec<usize> = Sweep::new(text, mode)
        .map(|i| i.offset)
        .filter(|&o| o >= body_start && o <= body_end)
        .collect();
    for (i, &start) in boundaries.iter().enumerate() {
        let Some(end) = boundaries[i..]
            .iter()
            .copied()
            .find(|&b| b >= start + min_len)
        else {
            continue;
        };
        let clashes = reloc_offsets.iter().any(|&r| {
            let r = r as usize;
            r < end && r + slot_len > start
        });
        if !clashes {
            return Some((start, end));
        }
    }
    None
}
