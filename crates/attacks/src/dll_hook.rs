//! EXP-B4 — PE header modification via DLL hooking (§V.B.4).
//!
//! The paper used CFF Explorer to attach `inject.dll` (exporting
//! `callMessageBox()`) to `dummy.sys`: the import table gains a descriptor,
//! call-stub code referencing the new import is added to `.text` (growing
//! `VirtualSize`), subsequent section locations shift, and the headers that
//! reference them are all adjusted. Rustock.B hooks `ntfs.sys` the same
//! way.
//!
//! Expected detection (verbatim from the paper): "Hash mismatches were
//! detected in IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, all
//! SECTION_HEADER's and .text field." Notably *not* the DOS or FILE
//! headers — the section count does not change because `dummy.sys` already
//! has an import section; the attack extends it.

use mc_pe::builder::ImportSpec;
use mc_pe::codegen::{self, CodeGenConfig};
use mc_pe::corpus::ModuleArtifacts;
use mc_pe::PeFile;
use modchecker::PartId;

use crate::{AttackError, Expectation, Infection};

/// Attach `inject.dll` and its call stubs to the target module.
#[derive(Clone, Copy, Debug)]
pub struct DllHook;

/// Bytes of call-stub code appended to `.text`. Crossing a page boundary is
/// what shifts every subsequent section's `VirtualAddress`, as the paper
/// describes.
const STUB_CODE_SIZE: usize = 4608;

impl Infection for DllHook {
    fn name(&self) -> &'static str {
        "DLL hooking via PE header modification (inject.dll)"
    }

    fn target_module(&self) -> &str {
        "dummy.sys"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let mut artifacts = pristine.clone();
        let width = artifacts.width;

        // Generate the call stubs that invoke the injected export.
        let stubs = codegen::generate(&CodeGenConfig {
            addr_spacing: 24,
            cave_len: 8,
            ..CodeGenConfig::sized(width, STUB_CODE_SIZE, 0x0D11_400C)
        });

        let text = artifacts.builder.section_data_mut(pristine.text_section);
        let original_len = text.len() as u32;
        text.extend_from_slice(&stubs.bytes);

        // The stubs' address slots are relocation sites too.
        let new_sites: Vec<u32> = stubs
            .reloc_offsets
            .iter()
            .map(|off| original_len + off)
            .collect();
        artifacts
            .builder
            .add_reloc_sites(pristine.text_section, new_sites);

        // Extend the import table with the malicious DLL.
        artifacts.builder.add_import(ImportSpec {
            dll: "inject.dll".into(),
            functions: vec!["callMessageBox".into()],
        });

        Ok(artifacts.build()?)
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![
            Expectation::Part(PartId::NtHeaders),
            Expectation::Part(PartId::OptionalHeader),
            Expectation::AllSectionHeaders,
            Expectation::Part(PartId::SectionData(".text".into())),
        ]
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        // inject.dll in a kernel module's import table violates the
        // kernel/HAL allowlist (L4). The appended stub code itself decodes
        // as ordinary functions and stays under the instruction lints.
        Some("L4")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::consts::{E_LFANEW_OFFSET, OH_SIZE_OF_IMAGE, PE_SIGNATURE_SIZE};
    use mc_pe::corpus::standard_corpus;
    use mc_pe::parser::ParsedModule;
    use mc_pe::{read_u32, AddressWidth};

    fn pristine() -> ModuleArtifacts {
        standard_corpus(AddressWidth::W32)
            .into_iter()
            .find(|bp| bp.name == "dummy.sys")
            .unwrap()
            .generate()
    }

    #[test]
    fn section_count_is_preserved() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = DllHook.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        assert_eq!(pc.sections.len(), pi.sections.len());
        // FILE header byte-identical (the paper does not flag it).
        assert_eq!(
            pc.file_header_bytes(clean.bytes()),
            pi.file_header_bytes(infected.bytes())
        );
        // DOS region identical.
        assert_eq!(pc.dos_bytes(clean.bytes()), pi.dos_bytes(infected.bytes()));
    }

    #[test]
    fn headers_and_text_change_as_paper_reports() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = DllHook.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();

        // Optional header changes (SizeOfImage grew).
        assert_ne!(
            pc.optional_bytes(clean.bytes()),
            pi.optional_bytes(infected.bytes())
        );
        let lfanew = read_u32(clean.bytes(), E_LFANEW_OFFSET).unwrap() as usize;
        let oh = lfanew + PE_SIGNATURE_SIZE + 20;
        assert!(
            read_u32(infected.bytes(), oh + OH_SIZE_OF_IMAGE).unwrap()
                > read_u32(clean.bytes(), oh + OH_SIZE_OF_IMAGE).unwrap()
        );

        // Every section header changes (VirtualSize for .text, shifted
        // VirtualAddress/PointerToRawData for the rest).
        for (a, b) in pc.sections.iter().zip(&pi.sections) {
            assert_ne!(
                &clean.bytes()[a.header_range.clone()],
                &infected.bytes()[b.header_range.clone()],
                "section header {} must change",
                a.name
            );
        }

        // .text grew and changed.
        assert!(pi.sections[0].virtual_size > pc.sections[0].virtual_size);
        // The injected DLL name is now in the import data.
        assert!(infected
            .bytes()
            .windows(b"inject.dll".len())
            .any(|w| w == b"inject.dll"));
        assert!(infected
            .bytes()
            .windows(b"callMessageBox".len())
            .any(|w| w == b"callMessageBox"));
    }

    #[test]
    fn growth_crosses_a_page_so_sections_shift() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = DllHook.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        let rdata_c = &pc.sections[pc.find_section(".rdata").unwrap()];
        let rdata_i = &pi.sections[pi.find_section(".rdata").unwrap()];
        assert!(rdata_i.virtual_address > rdata_c.virtual_address);
    }
}
