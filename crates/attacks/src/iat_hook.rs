//! IAT hooking — a scope-boundary probe, not one of the paper's four
//! experiments.
//!
//! Import Address Table hooking swaps a resolved function pointer inside
//! `.idata` so calls through the IAT land in malicious code. The IAT lives
//! in *initialized data*, which ModChecker deliberately does not
//! content-hash: after import resolution the table holds absolute addresses
//! into other modules, which differ across VMs in ways Algorithm 2 cannot
//! reconcile (the referenced modules' bases, not this module's). The
//! technique is therefore **invisible to the cross-VM vote by design** —
//! the same boundary the paper draws by checking "headers and read-only
//! executable contents".
//!
//! The vote boundary still holds, but the gap is now closed from another
//! direction: the L6 import-integrity lint cross-checks the IAT against
//! its `OriginalFirstThunk` name table inside a single capture — exactly
//! the semantic pointer validation (à la LKIM's function-pointer checks)
//! the original limitation note called for. The tests below pin both
//! halves: the hook does *not* flag in the vote, and L6 names it.

use mc_guest::GuestOs;
use mc_hypervisor::Hypervisor;

use crate::AttackError;

/// Overwrites the first IAT slot of a loaded module with a bogus function
/// pointer, in memory. Returns the image offset that was patched.
pub fn hook_first_iat_slot(
    hv: &mut Hypervisor,
    guest: &GuestOs,
    module: &str,
    evil_target: u64,
) -> Result<u64, AttackError> {
    let m = guest
        .find_module(module)
        .unwrap_or_else(|| panic!("module {module} not loaded"));
    // Read the module image to locate .idata.
    let vm = hv.vm(guest.vm).expect("vm exists");
    let mut image = vec![0u8; m.size as usize];
    vm.read_virt(m.base, &mut image).expect("image readable");
    let parsed = mc_pe::parser::ParsedModule::parse_memory(&image).map_err(AttackError::Build)?;
    let idata = parsed
        .find_section(".idata")
        .ok_or(AttackError::NoSuitableSite("module has no import section"))?;
    let sec = &parsed.sections[idata];

    // IMAGE_IMPORT_DESCRIPTOR.FirstThunk is at descriptor offset 16; the
    // thunk array's first slot is the first imported function's pointer.
    let desc = sec.data_range.start;
    let first_thunk_rva = mc_pe::read_u32(&image, desc + 16)
        .ok_or(AttackError::NoSuitableSite("truncated import descriptor"))?;
    let slot_off = first_thunk_rva as u64;

    let width = parsed.width.bytes();
    let bytes = match width {
        4 => (evil_target as u32).to_le_bytes().to_vec(),
        _ => evil_target.to_le_bytes().to_vec(),
    };
    guest
        .patch_module(hv, module, slot_off, &bytes)
        .expect("slot within image");
    Ok(slot_off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;
    use modchecker::ModChecker;

    #[test]
    fn iat_hook_is_out_of_scope_by_design() {
        let mut hv = Hypervisor::new();
        let bp = ModuleBlueprint::new("dummy.sys", AddressWidth::W32, 12 * 1024)
            .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])]);
        let guests = build_cloud_with_modules(&mut hv, 4, AddressWidth::W32, &[bp]).unwrap();
        let ids: Vec<_> = guests.iter().map(|g| g.vm).collect();

        let slot = hook_first_iat_slot(&mut hv, &guests[0], "dummy.sys", 0xDEAD_F000).unwrap();
        assert!(slot > 0);

        // ModChecker does NOT flag it: the IAT is data, excluded from
        // content hashing — the documented scope boundary.
        let report = ModChecker::new()
            .check_pool(&hv, &ids, "dummy.sys")
            .unwrap();
        assert!(
            report.all_clean(),
            "IAT hook unexpectedly detected — the scope boundary moved"
        );
    }

    #[test]
    fn in_memory_iat_hook_trips_the_l6_lint() {
        use mc_analysis::{Analyzer, Lint};

        let mut hv = Hypervisor::new();
        let bp = ModuleBlueprint::new("dummy.sys", AddressWidth::W32, 12 * 1024)
            .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])]);
        let guests = build_cloud_with_modules(&mut hv, 2, AddressWidth::W32, &[bp]).unwrap();
        hook_first_iat_slot(&mut hv, &guests[0], "dummy.sys", 0xDEAD_F000).unwrap();

        let capture = |vm| {
            let mut s = mc_vmi::VmiSession::attach(&hv, vm).unwrap();
            modchecker::ModuleSearcher::find(&mut s, "dummy.sys").unwrap()
        };
        let hooked = capture(guests[0].vm);
        let report = Analyzer::new()
            .analyze_image(&hooked.vm_name, "dummy.sys", hooked.base, &hooked.bytes)
            .unwrap();
        assert!(
            report.has(Lint::IndirectTransfer),
            "L6 must name the diverted slot:\n{report}"
        );
        let clean = capture(guests[1].vm);
        let peer = Analyzer::new()
            .analyze_image(&clean.vm_name, "dummy.sys", clean.base, &clean.bytes)
            .unwrap();
        assert!(peer.is_clean(), "untouched peer flagged:\n{peer}");
    }

    #[test]
    fn module_without_imports_is_unsuitable() {
        let mut hv = Hypervisor::new();
        let bp = ModuleBlueprint::new("plain.sys", AddressWidth::W32, 8 * 1024);
        let guests = build_cloud_with_modules(&mut hv, 1, AddressWidth::W32, &[bp]).unwrap();
        assert!(matches!(
            hook_first_iat_slot(&mut hv, &guests[0], "plain.sys", 0xDEAD_F000),
            Err(AttackError::NoSuitableSite(_))
        ));
    }
}
