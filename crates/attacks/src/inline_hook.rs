//! EXP-B2 — inline hooking (§V.B.2, Figure 5).
//!
//! The TCPIRPHOOK/Win32.Chatter pattern: overwrite a function's first
//! instructions with `JMP` to an *opcode cave* (a run of `00` bytes between
//! functions), place the malicious payload there, execute the displaced
//! original bytes, and `JMP` back to the original body. Everything happens
//! inside `.text`, so ModChecker must flag `.text` data and nothing else.

use mc_pe::corpus::ModuleArtifacts;
use mc_pe::PeFile;
use modchecker::PartId;

use crate::{AttackError, Expectation, Infection};

/// Bytes of the hook's `JMP rel32`.
const JMP_LEN: usize = 5;

/// A stand-in malicious payload: reads a "result buffer" pointer and nops —
/// what matters is that it is non-zero executable content in the cave.
const PAYLOAD: [u8; 7] = [0x60, 0x90, 0x90, 0x90, 0x90, 0x61, 0x90]; // pusha; nops; popa; nop

/// Jmp-hook a function through an opcode cave.
#[derive(Clone, Copy, Debug)]
pub struct InlineHook;

impl InlineHook {
    /// Applies the hook to raw `.text` bytes given function/cave geometry.
    /// Exposed so the worm scenarios can reuse it.
    pub fn apply_to_text(
        text: &mut [u8],
        entry: u32,
        cave_offset: u32,
        cave_len: u32,
    ) -> Result<(), AttackError> {
        let needed = (PAYLOAD.len() + JMP_LEN + JMP_LEN) as u32;
        if cave_len < needed {
            return Err(AttackError::NoSuitableSite("opcode cave too small"));
        }
        let entry = entry as usize;
        let cave = cave_offset as usize;

        // Save the bytes the jmp displaces.
        let mut displaced = [0u8; JMP_LEN];
        displaced.copy_from_slice(&text[entry..entry + JMP_LEN]);

        // entry: JMP cave.
        let rel = (cave as i64) - (entry as i64 + JMP_LEN as i64);
        text[entry] = 0xE9;
        text[entry + 1..entry + 5].copy_from_slice(&(rel as i32).to_le_bytes());

        // cave: payload, displaced original bytes ("sanitation of
        // overwritten bytes" in the paper), jmp back to entry+5.
        let mut at = cave;
        text[at..at + PAYLOAD.len()].copy_from_slice(&PAYLOAD);
        at += PAYLOAD.len();
        text[at..at + JMP_LEN].copy_from_slice(&displaced);
        at += JMP_LEN;
        let back = (entry as i64 + JMP_LEN as i64) - (at as i64 + JMP_LEN as i64);
        text[at] = 0xE9;
        text[at + 1..at + 5].copy_from_slice(&(back as i32).to_le_bytes());
        Ok(())
    }
}

impl Infection for InlineHook {
    fn name(&self) -> &'static str {
        "inline hooking via opcode cave"
    }

    fn target_module(&self) -> &str {
        "hal.dll"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let mut artifacts = pristine.clone();
        // Hook the first generated function (the paper hooks
        // hal.HalInitSystem, the module's entry function).
        let function = *artifacts
            .code
            .functions
            .first()
            .ok_or(AttackError::NoSuitableSite("module has no functions"))?;
        let cave = *artifacts
            .code
            .caves
            .iter()
            .find(|c| c.len as usize >= PAYLOAD.len() + 2 * JMP_LEN)
            .ok_or(AttackError::NoSuitableSite("no cave large enough"))?;

        let text = artifacts.builder.section_data_mut(pristine.text_section);
        Self::apply_to_text(text, function.entry, cave.offset, cave.len)?;
        Ok(artifacts.build()?)
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![Expectation::Part(PartId::SectionData(".text".into()))]
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        // The entry JMP trips L1, the rel32 trampoline L2, and the payload
        // parked in the opcode cave L3.
        Some("L1+L2+L3")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::parser::ParsedModule;
    use mc_pe::AddressWidth;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("hal.dll", AddressWidth::W32, 16 * 1024).generate()
    }

    #[test]
    fn hook_writes_jmp_and_payload() {
        let art = pristine();
        let f = art.code.functions[0];
        let cave = art.code.caves[0];
        let infected = InlineHook.infect(&art).unwrap();
        let p = ParsedModule::parse_file(infected.bytes()).unwrap();
        let text = p.section_data(infected.bytes(), 0).unwrap();

        // Entry starts with JMP rel32 into the cave.
        assert_eq!(text[f.entry as usize], 0xE9);
        let rel = i32::from_le_bytes(
            text[f.entry as usize + 1..f.entry as usize + 5]
                .try_into()
                .unwrap(),
        );
        let dest = (f.entry as i64 + 5 + rel as i64) as u32;
        assert_eq!(dest, cave.offset);

        // Cave holds the payload, the displaced bytes, and the back-jump.
        let c = cave.offset as usize;
        assert_eq!(&text[c..c + PAYLOAD.len()], &PAYLOAD);
        let clean = art.build().unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let clean_text = pc.section_data(clean.bytes(), 0).unwrap();
        assert_eq!(
            &text[c + PAYLOAD.len()..c + PAYLOAD.len() + JMP_LEN],
            &clean_text[f.entry as usize..f.entry as usize + JMP_LEN],
            "displaced original bytes preserved in the cave"
        );
    }

    #[test]
    fn only_text_section_changes() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = InlineHook.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        assert_ne!(
            pc.section_data(clean.bytes(), 0),
            pi.section_data(infected.bytes(), 0)
        );
        for name in [".rdata", ".data", ".reloc"] {
            let i = pc.find_section(name).unwrap();
            assert_eq!(
                pc.section_data(clean.bytes(), i),
                pi.section_data(infected.bytes(), i),
                "{name} unchanged"
            );
        }
        assert_eq!(pc.dos_bytes(clean.bytes()), pi.dos_bytes(infected.bytes()));
        assert_eq!(pc.nt_bytes(clean.bytes()), pi.nt_bytes(infected.bytes()));
    }

    #[test]
    fn cave_too_small_is_error() {
        let mut text = vec![0x90u8; 64];
        assert!(matches!(
            InlineHook::apply_to_text(&mut text, 0, 32, 4),
            Err(AttackError::NoSuitableSite(_))
        ));
    }
}
