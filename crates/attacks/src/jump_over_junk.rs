//! Jump-over-junk entry hook — anti-disassembly evasion of the sweep lints.
//!
//! The classic junk-byte trick: a short `JMP` hops over a byte that, read
//! in file order, *swallows* the real transfer as its operand. Here the
//! patched window decodes two ways:
//!
//! ```text
//! offset   bytes                     executed stream        linear sweep
//! h        EB 01                     JMP short h+3          JMP short h+3
//! h+2      B8                        —                      MOV EAX, imm32  (5 bytes,
//! h+3      E9 rel32 -> f1            JMP rel32 to f1         swallows the E9 + 3 rel bytes)
//! h+7      00 90                     —                      ADD [EAX+d32], AL (6 bytes)
//! h+13..   90 ...                    —                      NOP sled, resynchronized
//! ```
//!
//! The executed stream leaves the function through a hidden `JMP rel32`;
//! the sweep sees a harmless `MOV`/`ADD`/`NOP` run with **no** `rel32`
//! transfer, no unknown opcode, and an untouched entry prologue — so lints
//! L1–L5 all stay silent. The recursive-descent CFG follows the short
//! `JMP` to `h+3` and finds the `E9` at an offset the sweep never decodes:
//! the L8 sweep-vs-CFG disagreement signature.
//!
//! The rewritten body bytes still diverge from the clean image, so the
//! cross-VM vote flags `.text` — this attack evades the *static sweep*,
//! not the paper's differential check.

use mc_pe::corpus::ModuleArtifacts;
use mc_pe::parser::ParsedModule;
use mc_pe::PeFile;
use modchecker::PartId;

use crate::evasion::{find_patch_window, mode_of};
use crate::{AttackError, Expectation, Infection};

/// Bytes the patch needs: `EB 01` + `B8` + `E9 rel32` + the 6-byte `ADD`
/// the sweep decodes over the NOP sled before it resynchronizes.
const MIN_WINDOW: usize = 13;

/// Hides a `JMP rel32` inside the operand bytes of a sweep-visible `MOV`.
#[derive(Clone, Copy, Debug)]
pub struct JumpOverJunk;

impl Infection for JumpOverJunk {
    fn name(&self) -> &'static str {
        "jump-over-junk hidden transfer"
    }

    fn target_module(&self) -> &str {
        "hal.dll"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let [f0, f1, ..] = pristine.code.functions[..] else {
            return Err(AttackError::NoSuitableSite("needs two functions"));
        };
        let pe = pristine.build()?;
        let mut bytes = pe.bytes().to_vec();
        let parsed = ParsedModule::parse_file(&bytes).map_err(AttackError::Build)?;
        let range = parsed
            .find_section(".text")
            .map(|i| parsed.sections[i].data_range.clone())
            .ok_or(AttackError::NoSuitableSite("module has no .text"))?;
        let mode = mode_of(pristine.width);
        let slot = pristine.width.bytes();
        let (h, end) = find_patch_window(
            &bytes[range.clone()],
            f0,
            &pristine.code.reloc_offsets,
            slot,
            MIN_WINDOW,
            mode,
        )
        .ok_or(AttackError::NoSuitableSite(
            "no patchable window in the first function",
        ))?;

        // The hidden E9's displacement: decoded at h+3, next-insn at h+8,
        // targeting the second function's entry. Always forward and small,
        // so its top byte — the `00` the sweep reads as an ADD opcode — is
        // guaranteed zero.
        let rel = i64::from(f1.entry) - (h as i64 + 8);
        debug_assert!((1..0x100_0000).contains(&rel), "forward, top byte zero");

        let text = &mut bytes[range];
        text[h] = 0xEB; // JMP short over the junk byte
        text[h + 1] = 0x01;
        text[h + 2] = 0xB8; // the junk: MOV EAX, imm32 swallows the E9
        text[h + 3] = 0xE9;
        text[h + 4..h + 8].copy_from_slice(&(rel as i32).to_le_bytes());
        for b in &mut text[h + 8..end] {
            *b = 0x90;
        }
        Ok(PeFile::from_parts(
            bytes,
            pristine.width,
            pe.reloc_rvas().to_vec(),
            pe.size_of_image(),
        ))
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![Expectation::Part(PartId::SectionData(".text".into()))]
    }

    fn statically_detectable(&self) -> Option<&'static str> {
        // Only the CFG sees the hidden transfer; L1–L5 decode clean.
        Some("L8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_analysis::decoder::{Kind, Mode, Sweep};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::AddressWidth;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("hal.dll", AddressWidth::W32, 32 * 1024)
            .with_exports(&["HalInitSystem", "HalReturnToFirmware"])
            .generate()
    }

    #[test]
    fn sweep_decodes_the_patched_text_without_a_visible_rel32() {
        let art = pristine();
        let infected = JumpOverJunk.infect(&art).unwrap();
        let p = ParsedModule::parse_file(infected.bytes()).unwrap();
        let text = p.section_data(infected.bytes(), 0).unwrap();
        let mut unknown = 0usize;
        let mut rel32 = 0usize;
        for insn in Sweep::new(text, Mode::Bits32) {
            match insn.kind {
                Kind::Unknown => unknown += 1,
                Kind::RelBranch { rel32: true, .. } => rel32 += 1,
                _ => {}
            }
        }
        assert_eq!(unknown, 0, "sweep must stay synchronized");
        assert_eq!(rel32, 0, "the E9 must be invisible to the sweep");
    }

    #[test]
    fn only_text_changes_and_the_hidden_jmp_targets_the_second_function() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = JumpOverJunk.infect(&art).unwrap();
        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        assert_eq!(pc.dos_bytes(clean.bytes()), pi.dos_bytes(infected.bytes()));
        assert_eq!(pc.nt_bytes(clean.bytes()), pi.nt_bytes(infected.bytes()));
        let ct = pc.section_data(clean.bytes(), 0).unwrap();
        let it = pi.section_data(infected.bytes(), 0).unwrap();
        assert_ne!(ct, it, ".text must diverge for the cross-VM vote");

        // Locate the patch: first divergent byte is the EB of JMP short.
        let h = ct.iter().zip(it).position(|(a, b)| a != b).unwrap();
        assert_eq!(it[h], 0xEB);
        assert_eq!(it[h + 3], 0xE9);
        let rel = i32::from_le_bytes(it[h + 4..h + 8].try_into().unwrap());
        let dest = (h as i64 + 8 + i64::from(rel)) as u32;
        assert_eq!(dest, art.code.functions[1].entry);
    }
}
