//! EXP-B1 — single opcode replacement (§V.B.1).
//!
//! The paper opened `hal.dll` in OllyDbg and replaced one `DEC ECX`
//! (opcode `49`) with the equivalent `SUB ECX, 1` (`83 E9 01`). The 1→3
//! byte substitution shifts all subsequent code, yet Windows happily loads
//! the modified file; ModChecker must flag the `.text` section data — and
//! nothing else.
//!
//! To keep `VirtualSize` unchanged (so the `.text` *header* stays clean, as
//! in the paper), the 2-byte growth is absorbed by truncating the zero cave
//! at the section's end. Relocation-slot offsets past the edit shift by 2,
//! which the rebuilt `.reloc` table reflects — exactly what a relinked
//! on-disk module would carry.

use mc_pe::corpus::ModuleArtifacts;
use mc_pe::PeFile;
use modchecker::PartId;

use crate::{AttackError, Expectation, Infection};

/// `DEC ECX` → `SUB ECX, 1`.
#[derive(Clone, Copy, Debug)]
pub struct OpcodeReplacement;

/// The replacement encoding.
const SUB_ECX_1: [u8; 3] = [0x83, 0xE9, 0x01];

impl Infection for OpcodeReplacement {
    fn name(&self) -> &'static str {
        "single opcode replacement (DEC ECX -> SUB ECX,1)"
    }

    fn target_module(&self) -> &str {
        "hal.dll"
    }

    fn infect(&self, pristine: &ModuleArtifacts) -> Result<PeFile, AttackError> {
        let mut artifacts = pristine.clone();
        let &dec_at = artifacts
            .code
            .dec_ecx_offsets
            .first()
            .ok_or(AttackError::NoSuitableSite("no DEC ECX opcode in .text"))?;
        let dec_at = dec_at as usize;

        let text = artifacts.builder.section_data_mut(pristine.text_section);
        debug_assert_eq!(text[dec_at], 0x49, "geometry points at DEC ECX");
        let len = text.len();
        if text[len - 2..] != [0, 0] {
            return Err(AttackError::NoSuitableSite(
                "no trailing cave to absorb the 2-byte shift",
            ));
        }
        // Splice: prefix + SUB ECX,1 + shifted suffix, dropping 2 trailing
        // cave bytes so the section size (and thus every header) is
        // unchanged.
        let mut infected = Vec::with_capacity(len);
        infected.extend_from_slice(&text[..dec_at]);
        infected.extend_from_slice(&SUB_ECX_1);
        infected.extend_from_slice(&text[dec_at + 1..len - 2]);
        debug_assert_eq!(infected.len(), len);
        *text = infected;

        // Address slots after the edit moved by +2.
        for site in artifacts.builder.reloc_sites_mut() {
            if site.section == pristine.text_section && site.offset as usize > dec_at {
                site.offset += 2;
            }
        }
        Ok(artifacts.build()?)
    }

    fn expected_mismatches(&self) -> Vec<Expectation> {
        vec![Expectation::Part(PartId::SectionData(".text".into()))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::parser::ParsedModule;
    use mc_pe::AddressWidth;

    fn pristine() -> ModuleArtifacts {
        ModuleBlueprint::new("hal.dll", AddressWidth::W32, 16 * 1024).generate()
    }

    #[test]
    fn infected_file_differs_only_in_text_bytes() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = OpcodeReplacement.infect(&art).unwrap();
        assert_eq!(clean.bytes().len(), infected.bytes().len(), "sizes equal");

        let pc = ParsedModule::parse_file(clean.bytes()).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        // Headers byte-identical.
        assert_eq!(pc.dos_bytes(clean.bytes()), pi.dos_bytes(infected.bytes()));
        assert_eq!(pc.nt_bytes(clean.bytes()), pi.nt_bytes(infected.bytes()));
        for (a, b) in pc.sections.iter().zip(&pi.sections) {
            assert_eq!(
                &clean.bytes()[a.header_range.clone()],
                &infected.bytes()[b.header_range.clone()],
                "section header {} unchanged",
                a.name
            );
        }
        // .text differs; other section data does not.
        assert_ne!(
            pc.section_data(clean.bytes(), 0),
            pi.section_data(infected.bytes(), 0)
        );
        let rdata = pc.find_section(".rdata").unwrap();
        assert_eq!(
            pc.section_data(clean.bytes(), rdata),
            pi.section_data(infected.bytes(), rdata)
        );
    }

    #[test]
    fn substitution_present_at_site() {
        let art = pristine();
        let dec_at = art.code.dec_ecx_offsets[0] as usize;
        let infected = OpcodeReplacement.infect(&art).unwrap();
        let pi = ParsedModule::parse_file(infected.bytes()).unwrap();
        let text = pi.section_data(infected.bytes(), 0).unwrap();
        assert_eq!(&text[dec_at..dec_at + 3], &SUB_ECX_1);
    }

    #[test]
    fn reloc_sites_after_edit_shift() {
        let art = pristine();
        let clean = art.build().unwrap();
        let infected = OpcodeReplacement.infect(&art).unwrap();
        let dec_at = art.code.dec_ecx_offsets[0];
        let shifted_pairs = clean
            .reloc_rvas()
            .iter()
            .zip(infected.reloc_rvas())
            .filter(|(c, i)| *i != *c)
            .count();
        let expected = clean
            .reloc_rvas()
            .iter()
            .zip(art.code.reloc_offsets.iter())
            .filter(|(_, off)| **off > dec_at)
            .count();
        assert_eq!(shifted_pairs, expected);
    }
}
