//! Adversary replay hook: deterministic guest-side *behavior* between
//! scan rounds.
//!
//! The attack corpus used to be one-shot byte edits applied at build time.
//! Active adversaries (DKOM unlinkers, scrub-race restorers, checker
//! blinders) instead *act over time*: they mutate guest state between
//! monitoring rounds, reacting to the checker's observable cadence. This
//! module defines the minimal replay contract those adversaries implement:
//!
//! * [`RoundCtx`] — what the adversary can observe about the upcoming
//!   round: its index, the nominal scan period, and the scan's phase
//!   offset inside that period (zero when the monitor runs unjittered —
//!   the timing a scrub-race rootkit learns and exploits).
//! * [`AdversaryScript`] — a seeded, deterministic `step` the testbed
//!   replays against `&mut Hypervisor` immediately *before* each scan.
//!
//! The hypervisor deliberately knows nothing about specific adversaries:
//! implementations live in the attack crate, and the driver (testbed,
//! fleet generator, CLI) owns the loop. Scanning still takes
//! `&Hypervisor`, so a replayed step can never race a scan — steps and
//! scans interleave by construction, exactly like guest execution
//! interleaves with stop-the-world introspection.

use crate::error::HvError;
use crate::Hypervisor;

/// What an adversary can observe about the round it is acting before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundCtx {
    /// Round index, 0-based; round `r`'s step runs before scan `r`.
    pub round: usize,
    /// Nominal scan period in simulated nanoseconds (the cadence an
    /// adversary can learn by watching the checker's page-map traffic).
    pub period_ns: u64,
    /// Phase offset of the upcoming scan inside the nominal period, in
    /// nanoseconds. Zero for an unjittered monitor; a jittered monitor
    /// draws it per round from its seed.
    pub scan_offset_ns: u64,
}

impl RoundCtx {
    /// A context for round `round` of an unjittered cadence.
    pub fn unjittered(round: usize, period_ns: u64) -> Self {
        RoundCtx {
            round,
            period_ns,
            scan_offset_ns: 0,
        }
    }
}

/// A deterministic adversary behavior replayed between scan rounds.
///
/// `step` is called once per round, before that round's scan, with
/// mutable host access (adversaries run *inside* guests — the simulated
/// equivalent is direct guest-memory mutation). Implementations must be
/// deterministic in `(construction inputs, ctx)`: the fleet simulator
/// replays fleets by seed and asserts byte-identical verdicts.
pub trait AdversaryScript {
    /// Short technique name (for reports and ground-truth labels).
    fn name(&self) -> &'static str;

    /// Mutates guest state for the upcoming round.
    fn step(&mut self, hv: &mut Hypervisor, ctx: &RoundCtx) -> Result<(), HvError>;
}

/// Replays a set of adversary scripts in a fixed order — the driver-side
/// convenience wrapper used by the testbed and the fleet simulator.
#[derive(Default)]
pub struct Replay {
    scripts: Vec<Box<dyn AdversaryScript>>,
}

impl std::fmt::Debug for Replay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replay")
            .field(
                "scripts",
                &self.scripts.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Replay {
    /// An empty replay set.
    pub fn new() -> Self {
        Replay::default()
    }

    /// Adds a script; scripts step in insertion order.
    pub fn add(&mut self, script: impl AdversaryScript + 'static) {
        self.scripts.push(Box::new(script));
    }

    /// Number of registered scripts.
    pub fn len(&self) -> usize {
        self.scripts.len()
    }

    /// True when no scripts are registered.
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }

    /// Steps every script for the given round context, in order.
    pub fn step(&mut self, hv: &mut Hypervisor, ctx: &RoundCtx) -> Result<(), HvError> {
        for s in &mut self.scripts {
            s.step(hv, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressWidth;

    struct CountingScript {
        rounds: Vec<usize>,
    }

    impl AdversaryScript for CountingScript {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn step(&mut self, _hv: &mut Hypervisor, ctx: &RoundCtx) -> Result<(), HvError> {
            self.rounds.push(ctx.round);
            Ok(())
        }
    }

    #[test]
    fn replay_steps_scripts_per_round_in_order() {
        let mut hv = Hypervisor::new();
        hv.create_vm("dom1", AddressWidth::W32).unwrap();
        let mut replay = Replay::new();
        replay.add(CountingScript { rounds: Vec::new() });
        assert_eq!(replay.len(), 1);
        for r in 0..3 {
            replay
                .step(&mut hv, &RoundCtx::unjittered(r, 1_000_000))
                .unwrap();
        }
        // Scripts are driver-owned boxes; assert via a second script that
        // observes the same sequence.
        let mut seen = Vec::new();
        struct Probe<'a>(&'a mut Vec<usize>);
        impl AdversaryScript for Probe<'_> {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn step(&mut self, _hv: &mut Hypervisor, ctx: &RoundCtx) -> Result<(), HvError> {
                self.0.push(ctx.round);
                Ok(())
            }
        }
        let mut probe = Probe(&mut seen);
        for r in 0..3 {
            let ctx = RoundCtx::unjittered(r, 1_000_000);
            probe.step(&mut hv, &ctx).unwrap();
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn unjittered_ctx_has_zero_offset() {
        let ctx = RoundCtx::unjittered(5, 7);
        assert_eq!(ctx.scan_offset_ns, 0);
        assert_eq!(ctx.period_ns, 7);
        assert_eq!(ctx.round, 5);
    }
}
