//! Guest page tables, built in guest memory and walked per access.
//!
//! VMI tools translate guest virtual addresses by walking the guest's own
//! page tables (libVMI reads CR3 and performs the walk against mapped guest
//! frames). Reproducing that faithfully matters for performance: every
//! virtual read pays a translation, and a loaded module that is virtually
//! contiguous is physically scattered.
//!
//! Formats implemented:
//! * **32-bit non-PAE two-level** (Windows XP's default): page directory →
//!   page table, 1024 × 4-byte entries each, 4 KiB pages.
//! * **64-bit four-level** (PML4 → PDPT → PD → PT), 512 × 8-byte entries,
//!   48-bit canonical addresses.
//!
//! Only the present bit and the frame address are modeled; access-rights
//! bits are irrelevant to read-only introspection.

use crate::error::HvError;
use crate::mem::{GuestPhysMemory, PAGE_SHIFT, PAGE_SIZE};
use mc_pe::AddressWidth;

/// Present bit in both entry formats.
const ENTRY_PRESENT: u64 = 1;
/// Frame-address mask for 32-bit entries.
const ADDR_MASK_32: u64 = 0xFFFF_F000;
/// Frame-address mask for 64-bit entries.
const ADDR_MASK_64: u64 = 0x000F_FFFF_FFFF_F000;

/// A guest address space rooted at a page-table base (CR3).
#[derive(Clone, Copy, Debug)]
pub struct AddressSpace {
    width: AddressWidth,
    root: u64,
}

impl AddressSpace {
    /// Allocates a fresh, empty top-level table in `mem`.
    pub fn new(mem: &mut GuestPhysMemory, width: AddressWidth) -> Self {
        let root = mem.alloc_frame();
        AddressSpace { width, root }
    }

    /// The table root (guest-physical), i.e. what CR3 would hold.
    pub fn cr3(&self) -> u64 {
        self.root
    }

    /// Guest pointer width.
    pub fn width(&self) -> AddressWidth {
        self.width
    }

    /// Validates that `va` is representable/canonical for this width.
    fn check_va(&self, va: u64) -> Result<(), HvError> {
        match self.width {
            AddressWidth::W32 => {
                if va >> 32 != 0 {
                    return Err(HvError::BadVa(va));
                }
            }
            AddressWidth::W64 => {
                // 48-bit canonical: bits 63:47 all equal.
                let top = va >> 47;
                if top != 0 && top != 0x1FFFF {
                    return Err(HvError::BadVa(va));
                }
            }
        }
        Ok(())
    }

    /// Maps the page containing `va` to the frame at `pa` (both page-
    /// aligned). Allocates intermediate tables on demand. Fails with
    /// [`HvError::AlreadyMapped`] if a mapping exists — the guest loader
    /// never double-maps, so this catches bugs early.
    pub fn map(&self, mem: &mut GuestPhysMemory, va: u64, pa: u64) -> Result<(), HvError> {
        debug_assert_eq!(va & (PAGE_SIZE as u64 - 1), 0, "va must be page-aligned");
        debug_assert_eq!(pa & (PAGE_SIZE as u64 - 1), 0, "pa must be page-aligned");
        self.check_va(va)?;
        match self.width {
            AddressWidth::W32 => {
                let pde_at = self.root + 4 * ((va >> 22) & 0x3FF);
                let pde = mem.read_u32(pde_at)? as u64;
                let pt = if pde & ENTRY_PRESENT != 0 {
                    pde & ADDR_MASK_32
                } else {
                    let pt = mem.alloc_frame();
                    mem.write_u32(pde_at, (pt as u32) | ENTRY_PRESENT as u32)?;
                    pt
                };
                let pte_at = pt + 4 * ((va >> PAGE_SHIFT) & 0x3FF);
                if mem.read_u32(pte_at)? as u64 & ENTRY_PRESENT != 0 {
                    return Err(HvError::AlreadyMapped(va));
                }
                mem.write_u32(pte_at, (pa as u32) | ENTRY_PRESENT as u32)?;
            }
            AddressWidth::W64 => {
                let mut table = self.root;
                for level in (1..4).rev() {
                    let idx = (va >> (PAGE_SHIFT as u64 + 9 * level)) & 0x1FF;
                    let entry_at = table + 8 * idx;
                    let entry = mem.read_u64(entry_at)?;
                    table = if entry & ENTRY_PRESENT != 0 {
                        entry & ADDR_MASK_64
                    } else {
                        let next = mem.alloc_frame();
                        mem.write_u64(entry_at, next | ENTRY_PRESENT)?;
                        next
                    };
                }
                let pte_at = table + 8 * ((va >> PAGE_SHIFT) & 0x1FF);
                if mem.read_u64(pte_at)? & ENTRY_PRESENT != 0 {
                    return Err(HvError::AlreadyMapped(va));
                }
                mem.write_u64(pte_at, pa | ENTRY_PRESENT)?;
            }
        }
        Ok(())
    }

    /// Maps `len` bytes starting at page-aligned `va`, allocating a fresh
    /// frame per page.
    pub fn map_range_alloc(
        &self,
        mem: &mut GuestPhysMemory,
        va: u64,
        len: u64,
    ) -> Result<(), HvError> {
        let pages = len.div_ceil(PAGE_SIZE as u64);
        for p in 0..pages {
            let frame = mem.alloc_frame();
            self.map(mem, va + p * PAGE_SIZE as u64, frame)?;
        }
        Ok(())
    }

    /// Translates a guest virtual address to guest-physical by walking the
    /// tables, as libVMI does for every access.
    pub fn translate(&self, mem: &GuestPhysMemory, va: u64) -> Result<u64, HvError> {
        self.check_va(va)?;
        let page_off = va & (PAGE_SIZE as u64 - 1);
        match self.width {
            AddressWidth::W32 => {
                let pde = mem.read_u32(self.root + 4 * ((va >> 22) & 0x3FF))? as u64;
                if pde & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                let pte =
                    mem.read_u32((pde & ADDR_MASK_32) + 4 * ((va >> PAGE_SHIFT) & 0x3FF))? as u64;
                if pte & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                Ok((pte & ADDR_MASK_32) | page_off)
            }
            AddressWidth::W64 => {
                let mut table = self.root;
                for level in (1..4).rev() {
                    let idx = (va >> (PAGE_SHIFT as u64 + 9 * level)) & 0x1FF;
                    let entry = mem.read_u64(table + 8 * idx)?;
                    if entry & ENTRY_PRESENT == 0 {
                        return Err(HvError::UnmappedVa(va));
                    }
                    table = entry & ADDR_MASK_64;
                }
                let pte = mem.read_u64(table + 8 * ((va >> PAGE_SHIFT) & 0x1FF))?;
                if pte & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                Ok((pte & ADDR_MASK_64) | page_off)
            }
        }
    }

    /// Unmaps the page containing `va` (clears the PTE). Used by the DKOM-
    /// style attacks and failure-injection tests.
    pub fn unmap(&self, mem: &mut GuestPhysMemory, va: u64) -> Result<(), HvError> {
        self.check_va(va)?;
        match self.width {
            AddressWidth::W32 => {
                let pde = mem.read_u32(self.root + 4 * ((va >> 22) & 0x3FF))? as u64;
                if pde & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                let pte_at = (pde & ADDR_MASK_32) + 4 * ((va >> PAGE_SHIFT) & 0x3FF);
                if mem.read_u32(pte_at)? as u64 & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                mem.write_u32(pte_at, 0)?;
            }
            AddressWidth::W64 => {
                let mut table = self.root;
                for level in (1..4).rev() {
                    let idx = (va >> (PAGE_SHIFT as u64 + 9 * level)) & 0x1FF;
                    let entry = mem.read_u64(table + 8 * idx)?;
                    if entry & ENTRY_PRESENT == 0 {
                        return Err(HvError::UnmappedVa(va));
                    }
                    table = entry & ADDR_MASK_64;
                }
                let pte_at = table + 8 * ((va >> PAGE_SHIFT) & 0x1FF);
                if mem.read_u64(pte_at)? & ENTRY_PRESENT == 0 {
                    return Err(HvError::UnmappedVa(va));
                }
                mem.write_u64(pte_at, 0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(width: AddressWidth) -> (GuestPhysMemory, AddressSpace) {
        let mut mem = GuestPhysMemory::new();
        let aspace = AddressSpace::new(&mut mem, width);
        (mem, aspace)
    }

    #[test]
    fn map_translate_round_trip_32() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let va = 0x8010_0000u64;
        let frame = mem.alloc_frame();
        aspace.map(&mut mem, va, frame).unwrap();
        assert_eq!(aspace.translate(&mem, va).unwrap(), frame);
        assert_eq!(aspace.translate(&mem, va + 0x123).unwrap(), frame + 0x123);
        assert!(matches!(
            aspace.translate(&mem, va + PAGE_SIZE as u64),
            Err(HvError::UnmappedVa(_))
        ));
    }

    #[test]
    fn map_translate_round_trip_64() {
        let (mut mem, aspace) = setup(AddressWidth::W64);
        let va = 0xFFFF_F800_0010_0000u64;
        let frame = mem.alloc_frame();
        aspace.map(&mut mem, va, frame).unwrap();
        assert_eq!(aspace.translate(&mem, va).unwrap(), frame);
        assert_eq!(aspace.translate(&mem, va + 0xFFF).unwrap(), frame + 0xFFF);
    }

    #[test]
    fn noncanonical_va_rejected() {
        let (mem, aspace) = setup(AddressWidth::W64);
        assert!(matches!(
            aspace.translate(&mem, 0x0008_0000_0000_0000),
            Err(HvError::BadVa(_))
        ));
        let (mem32, aspace32) = {
            let (m, a) = setup(AddressWidth::W32);
            (m, a)
        };
        let _ = mem; // 64-bit mem no longer needed
        assert!(matches!(
            aspace32.translate(&mem32, 0x1_0000_0000),
            Err(HvError::BadVa(_))
        ));
        let mut mem32 = mem32;
        assert!(aspace32.map(&mut mem32, 0x1_0000_0000, 0).is_err());
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let f = mem.alloc_frame();
        aspace.map(&mut mem, 0x40_0000, f).unwrap();
        assert!(matches!(
            aspace.map(&mut mem, 0x40_0000, f),
            Err(HvError::AlreadyMapped(_))
        ));
    }

    #[test]
    fn map_range_alloc_covers_len() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let va = 0x8000_0000u64;
        aspace
            .map_range_alloc(&mut mem, va, 3 * PAGE_SIZE as u64 + 1)
            .unwrap();
        for p in 0..4 {
            aspace.translate(&mem, va + p * PAGE_SIZE as u64).unwrap();
        }
        assert!(aspace.translate(&mem, va + 4 * PAGE_SIZE as u64).is_err());
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let va = 0x9000_0000u64;
        aspace
            .map_range_alloc(&mut mem, va, 2 * PAGE_SIZE as u64)
            .unwrap();
        let p0 = aspace.translate(&mem, va).unwrap();
        let p1 = aspace.translate(&mem, va + PAGE_SIZE as u64).unwrap();
        assert_ne!(p0 >> PAGE_SHIFT, p1 >> PAGE_SHIFT);
    }

    #[test]
    fn unmap_makes_va_unreachable() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let va = 0x8000_0000u64;
        aspace
            .map_range_alloc(&mut mem, va, PAGE_SIZE as u64)
            .unwrap();
        aspace.translate(&mem, va).unwrap();
        aspace.unmap(&mut mem, va).unwrap();
        assert!(matches!(
            aspace.translate(&mem, va),
            Err(HvError::UnmappedVa(_))
        ));
        // Unmapping again is an error (nothing present).
        assert!(aspace.unmap(&mut mem, va).is_err());
    }

    #[test]
    fn kernel_half_and_user_half_coexist_32() {
        let (mut mem, aspace) = setup(AddressWidth::W32);
        let f1 = mem.alloc_frame();
        let f2 = mem.alloc_frame();
        aspace.map(&mut mem, 0x0040_0000, f1).unwrap();
        aspace.map(&mut mem, 0x8040_0000, f2).unwrap();
        mem.write_phys(f1, b"user").unwrap();
        mem.write_phys(f2, b"kern").unwrap();
        let mut buf = [0u8; 4];
        let pa = aspace.translate(&mem, 0x8040_0000).unwrap();
        mem.read_phys(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"kern");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any set of distinct page-aligned VAs maps and translates
            /// back to the frames it was mapped to, for both widths.
            #[test]
            fn translate_inverts_map(pages in proptest::collection::hash_set(0u64..0x8_0000, 1..32),
                                     wide in proptest::bool::ANY) {
                let width = if wide { AddressWidth::W64 } else { AddressWidth::W32 };
                let (mut mem, aspace) = setup(width);
                let mut expect = Vec::new();
                for p in &pages {
                    let va = p << PAGE_SHIFT;
                    let frame = mem.alloc_frame();
                    aspace.map(&mut mem, va, frame).unwrap();
                    expect.push((va, frame));
                }
                for (va, frame) in expect {
                    prop_assert_eq!(aspace.translate(&mem, va).unwrap(), frame);
                    prop_assert_eq!(aspace.translate(&mem, va | 0x7FF).unwrap(), frame | 0x7FF);
                }
            }
        }
    }
}
