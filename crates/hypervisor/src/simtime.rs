//! Simulated time: cost and contention models for the performance figures.
//!
//! The paper's runtime study (Figures 7 and 8) measures wall-clock on a 2012
//! Xen testbed we cannot reproduce. What we *can* reproduce is the shape of
//! those curves, which follows from three facts the simulation preserves:
//!
//! 1. Introspection is page-granular: copying a module out of a guest costs
//!    one foreign-page map per page plus a per-byte copy
//!    ([`CostModel::read_cost`]). This is why Module-Searcher dominates.
//! 2. Parsing, hashing and diffing are linear in module bytes
//!    ([`CostModel::process_cost`]).
//! 3. The privileged VM shares physical cores with the guests: once guest
//!    demand saturates the host's virtual cores, Dom0 work slows
//!    superlinearly ([`ContentionModel::slowdown`]) — Figure 8's knee at
//!    "loaded VMs > virtual cores".
//!
//! Absolute default constants are calibrated to libVMI-era magnitudes
//! (tens of microseconds per foreign page map, ns-per-byte processing) but
//! the *claims* we make from benches are about shape, not absolutes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float (for plotting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales by a contention factor, saturating.
    pub fn scaled(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0);
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3} µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns} ns")
        }
    }
}

/// Per-operation costs of introspection and checking.
///
/// Units: `*_ns` are flat nanosecond charges; `*_byte_ns` are nanoseconds
/// per byte processed.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// One-time cost of attaching a VMI session to a VM (handle lookup,
    /// address-space identification).
    pub vmi_attach_ns: u64,
    /// Mapping one foreign guest frame into the privileged VM. The dominant
    /// introspection cost; libVMI pays this per page via
    /// `xc_map_foreign_range`.
    pub page_map_ns: u64,
    /// Copying one byte out of a mapped frame.
    pub copy_byte_ns: f64,
    /// One guest page-table walk performed by the introspector.
    pub translate_ns: u64,
    /// Module-Parser: per byte of header/section extraction.
    pub parse_byte_ns: f64,
    /// Integrity-Checker: per byte of MD5 hashing.
    pub hash_byte_ns: f64,
    /// Integrity-Checker: per byte of Algorithm 2's pairwise scan.
    pub diff_byte_ns: f64,
    /// Resolving a kernel symbol (e.g. `PsLoadedModuleList`) from the
    /// profile.
    pub symbol_lookup_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            vmi_attach_ns: 150_000,
            page_map_ns: 30_000,
            copy_byte_ns: 1.5,
            translate_ns: 2_000,
            parse_byte_ns: 0.4,
            hash_byte_ns: 2.5,
            diff_byte_ns: 1.2,
            symbol_lookup_ns: 50_000,
        }
    }
}

impl CostModel {
    /// Cost of reading `bytes` bytes spanning `pages` guest frames
    /// (translation + map per page, copy per byte).
    pub fn read_cost(&self, pages: u64, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            pages * (self.page_map_ns + self.translate_ns)
                + (bytes as f64 * self.copy_byte_ns).round() as u64,
        )
    }

    /// Cost of a linear per-byte processing pass.
    pub fn process_cost(&self, per_byte_ns: f64, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * per_byte_ns).round() as u64)
    }
}

/// Host CPU contention model.
///
/// The privileged VM's introspection work competes with guest vCPUs for the
/// host's virtual cores. `slowdown` maps total guest demand (in cores) to a
/// multiplier on Dom0 work:
///
/// * Under-committed (`demand + 1 ≤ cores`): near 1, growing mildly with
///   utilization (cache/membus pressure).
/// * Over-committed: the scheduler time-slices Dom0 against runnable vCPUs;
///   the multiplier grows superlinearly in the over-commit ratio. This
///   produces the paper's "sudden nonlinear growth … when the number of
///   heavily loaded VMs exceeded the number of available virtual cores".
#[derive(Clone, Copy, Debug)]
pub struct ContentionModel {
    /// Host virtual cores.
    pub cores: u32,
    /// Mild sub-saturation slope.
    pub pre_knee_slope: f64,
    /// Linear over-commit coefficient.
    pub beta: f64,
    /// Quadratic over-commit coefficient (the knee's sharpness).
    pub gamma: f64,
}

impl ContentionModel {
    /// Model with default coefficients for a host with `cores` virtual
    /// cores.
    pub fn new(cores: u32) -> Self {
        ContentionModel {
            cores: cores.max(1),
            pre_knee_slope: 0.3,
            beta: 2.0,
            gamma: 6.0,
        }
    }

    /// Slowdown multiplier for Dom0 work given total guest CPU demand.
    pub fn slowdown(&self, guest_demand: f64) -> f64 {
        let total = guest_demand.max(0.0) + 1.0; // +1: Dom0 itself
        let r = total / self.cores as f64;
        if r <= 1.0 {
            1.0 + self.pre_knee_slope * r
        } else {
            let over = r - 1.0;
            1.0 + self.pre_knee_slope + self.beta * over + self.gamma * over * over
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(2);
        let b = SimDuration::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 2_500);
        assert_eq!((a - b).as_nanos(), 1_500);
        assert_eq!((b - a).as_nanos(), 0, "saturating");
        assert_eq!(a.scaled(2.5).as_nanos(), 5_000);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 3_000);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12 ns");
        assert_eq!(format!("{}", SimDuration::from_nanos(1_500)), "1.500 µs");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000 ms");
        assert_eq!(format!("{}", SimDuration::from_millis(2500)), "2.500 s");
    }

    #[test]
    fn read_cost_scales_with_pages_and_bytes() {
        let c = CostModel::default();
        let one_page = c.read_cost(1, 4096);
        let two_pages = c.read_cost(2, 8192);
        assert!(two_pages > one_page);
        // Page overhead dominates small reads.
        let tiny = c.read_cost(1, 8);
        assert!(tiny.as_nanos() > 8 * c.copy_byte_ns as u64);
    }

    #[test]
    fn contention_is_flat_then_superlinear() {
        let m = ContentionModel::new(8);
        let idle = m.slowdown(0.0);
        assert!(idle < 1.5);
        // Monotone non-decreasing in demand.
        let mut prev = 0.0;
        for d in 0..24 {
            let s = m.slowdown(d as f64);
            assert!(s >= prev);
            prev = s;
        }
        // Knee: the marginal slowdown per added loaded VM beyond the core
        // count clearly exceeds the marginal slowdown below it.
        let below = m.slowdown(6.0) - m.slowdown(5.0);
        let above = m.slowdown(12.0) - m.slowdown(11.0);
        assert!(
            above > 3.0 * below,
            "no knee: below {below:.3}, above {above:.3}"
        );
    }

    #[test]
    fn process_cost_rounds_to_nearest_nanosecond() {
        let c = CostModel::default();
        assert_eq!(c.process_cost(0.4, 10).as_nanos(), 4);
        assert_eq!(c.process_cost(0.4, 1).as_nanos(), 0, "0.4 ns rounds down");
        assert_eq!(c.process_cost(1.5, 1).as_nanos(), 2, "1.5 ns rounds up");
        assert_eq!(c.process_cost(2.5, 0).as_nanos(), 0);
    }

    #[test]
    fn scaled_saturates_and_zero_is_absorbing() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.scaled(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::ZERO.scaled(1e9), SimDuration::ZERO);
        assert_eq!(d.scaled(1.0), d);
    }

    #[test]
    fn seconds_and_millis_views_agree() {
        let d = SimDuration::from_millis(2500);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn contention_never_speeds_work_up() {
        let m = ContentionModel::new(8);
        for d in [0.0, 0.5, 3.0, 7.0, 8.0, 20.0] {
            assert!(m.slowdown(d) >= 1.0, "demand {d}");
        }
    }
}
