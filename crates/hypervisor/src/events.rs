//! Write-protection trap events: the push half of the monitoring story.
//!
//! The pull path (PR-3) proves a page unchanged by *probing* its
//! write-generation stamp — one page-table walk per page per round, even
//! when nothing moved. This module turns the same stamps into a *push*
//! pipeline, modelled on EPT-based kernel-object monitoring (arXiv
//! 1902.05135): frames are write-protected via [`crate::Vm::watch_range`],
//! every guest write landing in a watched frame appends a
//! [`crate::mem::TrappedWrite`] to that VM's trap log, and subscribers
//! drain the logs host-wide through [`Hypervisor::drain_write_events`].
//!
//! # Determinism
//!
//! Real trap delivery is asynchronous; goldens must be byte-stable. The
//! queue is therefore *seeded, simulated-time*: each trap's delivery
//! latency is a pure function of `(host seed, vm, frame, stamp)` — no RNG
//! state, no wall clock — and a drain returns events sorted by
//! `(latency, vm, frame, stamp)`. Two drains over the same guest history
//! with the same seed yield the same bytes, regardless of how many
//! subscribers exist or how often they poll: the log is append-only and
//! cursors are subscriber-owned, so drains are non-destructive reads
//! through `&Hypervisor` (the crate's no-interior-mutability rule holds —
//! only guest writes, under `&mut`, grow the logs).

use std::collections::HashMap;

use crate::simtime::SimDuration;
use crate::vm::VmId;
use crate::Hypervisor;

/// One trapped guest write, as delivered to a subscriber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteEvent {
    /// VM whose guest fired the trap.
    pub vm: VmId,
    /// Frame number the write landed in.
    pub frame: u64,
    /// Write-generation stamp the write left on the frame.
    pub stamp: u64,
    /// Simulated latency between the guest write and the event reaching
    /// the subscriber (seeded jitter; see [`TrapModel`]).
    pub latency: SimDuration,
}

/// Deterministic trap-delivery model: latency = `base_ns` plus a jitter
/// drawn by pure hash from `(seed, vm, frame, stamp)`. With zero state it
/// is trivially identical across sequential and parallel drains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapModel {
    /// Seed mixed into every latency draw (per-host).
    pub seed: u64,
    /// Floor latency of a trap exit + event-channel hop, in ns.
    pub base_ns: u64,
    /// Exclusive upper bound on the added jitter, in ns (0 = no jitter).
    pub jitter_ns: u64,
}

impl Default for TrapModel {
    fn default() -> Self {
        // ~5 µs floor (VM exit, event-channel notify, dom0 wakeup) with up
        // to 20 µs of scheduling jitter — well under one monitor round.
        TrapModel {
            seed: 0x4D43_5452_4150_2131, // "MCTRAP!1"
            base_ns: 5_000,
            jitter_ns: 20_000,
        }
    }
}

impl TrapModel {
    /// The delivery latency of one trap — a pure function of the model and
    /// the trap's identity, so replays and parallel drains agree.
    pub fn delivery_latency(&self, vm: VmId, frame: u64, stamp: u64) -> SimDuration {
        let jitter = if self.jitter_ns == 0 {
            0
        } else {
            // SplitMix64 finalizer over the mixed identity.
            let mut x = self
                .seed
                .wrapping_add(u64::from(vm.0).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(frame.rotate_left(17))
                .wrapping_add(stamp.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            x % self.jitter_ns
        };
        SimDuration::from_nanos(self.base_ns + jitter)
    }
}

/// A subscriber's position in each VM's append-only trap log.
///
/// Cursors are owned by the subscriber, not the host, so any number of
/// independent subscribers can drain the same logs without coordinating
/// and without mutating the hypervisor.
#[derive(Clone, Debug, Default)]
pub struct EventCursor {
    seen: HashMap<VmId, usize>,
}

impl EventCursor {
    /// A cursor that has seen nothing (the first drain replays the whole
    /// log — arm watches *before* the writes you care about).
    pub fn new() -> Self {
        Self::default()
    }

    /// Entries of `vm`'s trap log already consumed.
    pub fn position(&self, vm: VmId) -> usize {
        self.seen.get(&vm).copied().unwrap_or(0)
    }
}

impl Hypervisor {
    /// Drains every write event this cursor has not yet seen, across all
    /// VMs, in deterministic delivery order (sorted by
    /// `(latency, vm, frame, stamp)`). Advances the cursor; the host is
    /// untouched (`&self` — logs are append-only, positions live in the
    /// subscriber's cursor).
    pub fn drain_write_events(&self, cursor: &mut EventCursor) -> Vec<WriteEvent> {
        let mut out = Vec::new();
        for id in self.vm_ids().collect::<Vec<_>>() {
            let vm = self.vm(id).expect("vm_ids yields live ids");
            let log = vm.mem.trap_log();
            let from = cursor.position(vm.id);
            for t in &log[from.min(log.len())..] {
                out.push(WriteEvent {
                    vm: vm.id,
                    frame: t.frame,
                    stamp: t.stamp,
                    latency: self.trap.delivery_latency(vm.id, t.frame, t.stamp),
                });
            }
            cursor.seen.insert(vm.id, log.len());
        }
        out.sort_by_key(|e| (e.latency, e.vm.0, e.frame, e.stamp));
        out
    }

    /// Number of trapped writes the cursor has not yet drained (metadata
    /// only — no events are consumed).
    pub fn pending_write_events(&self, cursor: &EventCursor) -> usize {
        self.vm_ids()
            .filter_map(|id| self.vm(id).ok())
            .map(|vm| {
                vm.mem
                    .trap_log()
                    .len()
                    .saturating_sub(cursor.position(vm.id))
            })
            .sum()
    }
}

/// A planned watch registration over one VM's frames.
///
/// Built by an introspection session (which borrows the [`crate::Vm`]
/// immutably and therefore can only *plan*), applied through
/// [`crate::Vm::apply_watch_plan`] / [`Hypervisor::apply_watch_plan`]
/// under `&mut` — the same split as "scanning takes `&`, building takes
/// `&mut`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchPlan {
    /// VM the plan targets.
    pub vm: VmId,
    /// Guest-virtual base of the watched range.
    pub va: u64,
    /// Length of the watched range in bytes.
    pub len: u64,
    /// Frame numbers the range resolves to, in address order.
    pub frames: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;
    use crate::AddressWidth;

    fn host_with_vm() -> (Hypervisor, VmId, u64) {
        let mut hv = Hypervisor::new();
        let id = hv.create_vm("dom1", AddressWidth::W32).unwrap();
        let va = 0x8000_0000u64;
        let vm = hv.vm_mut(id).unwrap();
        vm.map_range(va, 4 * PAGE_SIZE as u64).unwrap();
        (hv, id, va)
    }

    #[test]
    fn unwatched_writes_fire_nothing() {
        let (mut hv, id, va) = host_with_vm();
        hv.vm_mut(id).unwrap().write_virt(va, b"quiet").unwrap();
        let mut cur = EventCursor::new();
        assert!(hv.drain_write_events(&mut cur).is_empty());
        assert_eq!(hv.pending_write_events(&cur), 0);
    }

    #[test]
    fn watched_write_fires_one_event_per_frame() {
        let (mut hv, id, va) = host_with_vm();
        hv.vm_mut(id)
            .unwrap()
            .watch_range(va, 2 * PAGE_SIZE as u64)
            .unwrap();
        let mut cur = EventCursor::new();
        assert!(hv.drain_write_events(&mut cur).is_empty());

        // A write spanning both watched pages → one event per frame.
        hv.vm_mut(id)
            .unwrap()
            .write_virt(va + PAGE_SIZE as u64 - 2, &[1, 2, 3, 4])
            .unwrap();
        let evs = hv.drain_write_events(&mut cur);
        assert_eq!(evs.len(), 2);
        assert_ne!(evs[0].frame, evs[1].frame);
        assert!(evs.iter().all(|e| e.vm == id && e.stamp > 0));

        // Writes outside the watched span stay silent.
        hv.vm_mut(id)
            .unwrap()
            .write_virt(va + 3 * PAGE_SIZE as u64, b"x")
            .unwrap();
        assert!(hv.drain_write_events(&mut cur).is_empty());
    }

    #[test]
    fn drains_are_non_destructive_and_per_subscriber() {
        let (mut hv, id, va) = host_with_vm();
        hv.vm_mut(id)
            .unwrap()
            .watch_range(va, PAGE_SIZE as u64)
            .unwrap();
        hv.vm_mut(id).unwrap().write_virt(va, b"hit").unwrap();

        let mut a = EventCursor::new();
        let mut b = EventCursor::new();
        let seen_a = hv.drain_write_events(&mut a);
        let seen_b = hv.drain_write_events(&mut b);
        assert_eq!(seen_a, seen_b, "independent subscribers see the same log");
        assert!(hv.drain_write_events(&mut a).is_empty(), "cursor advanced");
    }

    #[test]
    fn drain_order_is_deterministic_and_seeded() {
        let (mut hv, id, va) = host_with_vm();
        hv.vm_mut(id)
            .unwrap()
            .watch_range(va, 4 * PAGE_SIZE as u64)
            .unwrap();
        for i in 0..4u64 {
            hv.vm_mut(id)
                .unwrap()
                .write_virt(va + i * PAGE_SIZE as u64, b"w")
                .unwrap();
        }
        let drained: Vec<_> = hv.drain_write_events(&mut EventCursor::new());
        let again: Vec<_> = hv.drain_write_events(&mut EventCursor::new());
        assert_eq!(drained, again);
        // Latencies are bounded by the model and not all identical
        // (the seeded jitter actually jitters).
        let m = hv.trap;
        assert!(drained
            .iter()
            .all(|e| e.latency.as_nanos() >= m.base_ns
                && e.latency.as_nanos() < m.base_ns + m.jitter_ns));
        assert!(drained.windows(2).any(|w| w[0].latency != w[1].latency));

        // A different seed reorders/relabels deliveries deterministically.
        let mut hv2 = hv.clone();
        hv2.trap.seed ^= 0xDEAD_BEEF;
        let other = hv2.drain_write_events(&mut EventCursor::new());
        assert_eq!(other.len(), drained.len());
        assert_ne!(
            drained.iter().map(|e| e.latency).collect::<Vec<_>>(),
            other.iter().map(|e| e.latency).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn watch_unwatch_is_refcounted() {
        let (mut hv, id, va) = host_with_vm();
        let vm = hv.vm_mut(id).unwrap();
        vm.watch_range(va, PAGE_SIZE as u64).unwrap();
        vm.watch_range(va, PAGE_SIZE as u64).unwrap();
        vm.unwatch_range(va, PAGE_SIZE as u64).unwrap();
        vm.write_virt(va, b"still watched").unwrap();
        vm.unwatch_range(va, PAGE_SIZE as u64).unwrap();
        vm.write_virt(va, b"now silent").unwrap();
        let mut cur = EventCursor::new();
        let evs = hv.drain_write_events(&mut cur);
        assert_eq!(evs.len(), 1, "only the write under an armed watch fires");
    }

    #[test]
    fn watch_range_on_unmapped_page_arms_nothing() {
        let (mut hv, id, va) = host_with_vm();
        let vm = hv.vm_mut(id).unwrap();
        // The 5th page is unmapped: registration must fail atomically.
        assert!(vm.watch_range(va, 5 * PAGE_SIZE as u64).is_err());
        assert_eq!(vm.mem.watched_frames(), 0);
    }

    #[test]
    fn revert_preserves_watches_and_clone_does_not_inherit_them() {
        let (mut hv, id, va) = host_with_vm();
        {
            let vm = hv.vm_mut(id).unwrap();
            vm.snapshot("clean");
            vm.watch_range(va, PAGE_SIZE as u64).unwrap();
            vm.write_virt(va, b"infect").unwrap();
        }
        let mut cur = EventCursor::new();
        assert_eq!(hv.drain_write_events(&mut cur).len(), 1);

        // The clone is a new guest: no watches, no inherited log.
        let c = hv.clone_vm(id, "clone1").unwrap();
        assert_eq!(hv.vm(c).unwrap().mem.watched_frames(), 0);
        assert!(hv.vm(c).unwrap().mem.trap_log().is_empty());

        // Revert restores content but the watch survives: the next attack
        // still traps, with a fresh (monotonic) stamp.
        hv.vm_mut(id).unwrap().revert("clean").unwrap();
        assert!(
            hv.drain_write_events(&mut cur).is_empty(),
            "no revert event"
        );
        hv.vm_mut(id).unwrap().write_virt(va, b"again").unwrap();
        let evs = hv.drain_write_events(&mut cur);
        assert_eq!(evs.len(), 1, "watch survived the revert");
    }
}
