//! Hypervisor error types.

use crate::vm::VmId;
use std::fmt;

/// Errors from guest memory access, address translation and VM management.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HvError {
    /// The VM id does not exist on this host.
    UnknownVm(VmId),
    /// A VM with this name already exists.
    DuplicateVmName(String),
    /// A guest-physical access fell outside allocated frames.
    PhysOutOfRange {
        /// Offending guest-physical address.
        pa: u64,
        /// Number of frames currently allocated.
        frames: usize,
    },
    /// Address translation failed: no present mapping for this VA.
    UnmappedVa(u64),
    /// The VA is already mapped (double-map indicates a loader bug).
    AlreadyMapped(u64),
    /// A named snapshot does not exist.
    SnapshotMissing(String),
    /// Virtual address is not canonical / representable for the guest width.
    BadVa(u64),
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::UnknownVm(id) => write!(f, "unknown VM id {}", id.0),
            HvError::DuplicateVmName(n) => write!(f, "duplicate VM name {n:?}"),
            HvError::PhysOutOfRange { pa, frames } => {
                write!(f, "guest-physical address {pa:#x} beyond {frames} frames")
            }
            HvError::UnmappedVa(va) => write!(f, "unmapped guest virtual address {va:#x}"),
            HvError::AlreadyMapped(va) => write!(f, "virtual address {va:#x} already mapped"),
            HvError::SnapshotMissing(n) => write!(f, "no snapshot named {n:?}"),
            HvError::BadVa(va) => write!(f, "non-canonical virtual address {va:#x}"),
        }
    }
}

impl std::error::Error for HvError {}
