//! Hypervisor error types.

use crate::vm::VmId;
use std::fmt;

/// Errors from guest memory access, address translation and VM management.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HvError {
    /// The VM id does not exist on this host.
    UnknownVm(VmId),
    /// A VM with this name already exists.
    DuplicateVmName(String),
    /// A guest-physical access fell outside allocated frames.
    PhysOutOfRange {
        /// Offending guest-physical address.
        pa: u64,
        /// Number of frames currently allocated.
        frames: usize,
    },
    /// Address translation failed: no present mapping for this VA.
    UnmappedVa(u64),
    /// The VA is already mapped (double-map indicates a loader bug).
    AlreadyMapped(u64),
    /// A named snapshot does not exist.
    SnapshotMissing(String),
    /// Virtual address is not canonical / representable for the guest width.
    BadVa(u64),
    /// Injected: a read attempt transiently failed (failed foreign-map /
    /// hypercall); retrying usually succeeds. See [`crate::fault`].
    TransientFault {
        /// Virtual address of the failed attempt.
        va: u64,
    },
    /// Injected: the page backing this VA is currently paged out by the
    /// guest; it pages back in after a bounded number of attempts.
    PagedOut {
        /// Virtual address of the failed attempt.
        va: u64,
    },
    /// Injected: the VM is paused (e.g. a live-migration brown-out);
    /// resumes after a bounded window.
    VmPaused(VmId),
    /// Injected: the VM vanished mid-scan (destroyed or migrated away).
    /// Permanent — retrying cannot help.
    VmLost(VmId),
}

impl HvError {
    /// True for injected failures that a bounded retry with backoff can
    /// ride out; false for permanent conditions ([`HvError::VmLost`]) and
    /// all structural errors (unmapped VAs, bad addresses, …), where a
    /// retry would only repeat the same outcome.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            HvError::TransientFault { .. } | HvError::PagedOut { .. } | HvError::VmPaused(_)
        )
    }
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::UnknownVm(id) => write!(f, "unknown VM id {}", id.0),
            HvError::DuplicateVmName(n) => write!(f, "duplicate VM name {n:?}"),
            HvError::PhysOutOfRange { pa, frames } => {
                write!(f, "guest-physical address {pa:#x} beyond {frames} frames")
            }
            HvError::UnmappedVa(va) => write!(f, "unmapped guest virtual address {va:#x}"),
            HvError::AlreadyMapped(va) => write!(f, "virtual address {va:#x} already mapped"),
            HvError::SnapshotMissing(n) => write!(f, "no snapshot named {n:?}"),
            HvError::BadVa(va) => write!(f, "non-canonical virtual address {va:#x}"),
            HvError::TransientFault { va } => {
                write!(f, "transient read fault at {va:#x} (retryable)")
            }
            HvError::PagedOut { va } => write!(f, "guest page at {va:#x} is paged out"),
            HvError::VmPaused(id) => write!(f, "VM {} is paused", id.0),
            HvError::VmLost(id) => write!(f, "VM {} vanished mid-scan", id.0),
        }
    }
}

impl std::error::Error for HvError {}
