//! Guest-physical memory: discontiguous 4 KiB frames.
//!
//! Guest "physical" memory is a pool of frames indexed by frame number;
//! guest-physical address = `frame_number << 12 | offset`. Frames are
//! allocated on demand by the paging layer and the guest loader. Keeping
//! frames individually allocated (rather than one flat `Vec<u8>`) mirrors
//! how a real hypervisor hands out machine frames, and it makes the
//! page-granular cost of introspection honest: a virtually-contiguous module
//! is physically scattered, so copying it out requires one map per page.

use crate::error::HvError;

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page/frame size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// The write-generation of one frame: which frame backs a page and the
/// global write-counter value of the last write that touched it. Two equal
/// `PageGeneration`s taken at different times prove the page's content did
/// not change in between (given the counter's monotonicity across
/// snapshot reverts — see [`GuestPhysMemory::keep_counter_at_least`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PageGeneration {
    /// Frame number backing the page.
    pub frame: u64,
    /// Global write-counter value stamped by the last write to the frame
    /// (0 = never written since allocation).
    pub stamp: u64,
}

/// One guest write caught by a frame watch (EPT-style write protection).
///
/// The trap records *which* frame changed and the write-generation stamp
/// the write left behind — exactly the key an incremental rescanner needs
/// to refresh one page. Traps are appended to a per-VM log as the guest
/// writes; subscribers drain the log through
/// [`crate::Hypervisor::drain_write_events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrappedWrite {
    /// Frame number the write landed in.
    pub frame: u64,
    /// Write-generation stamp the write left on the frame.
    pub stamp: u64,
}

/// Watch + trap-log state, split out so [`crate::Vm::revert`] can carry it
/// across a snapshot restore: watches and the trap log belong to the
/// *introspection* plane, not to guest content, so reverting memory must
/// not silently disarm a monitor's traps.
#[derive(Clone, Debug, Default)]
pub struct WatchState {
    watch_counts: Vec<u32>,
    trap_log: Vec<TrappedWrite>,
}

/// A pool of guest-physical frames.
///
/// Every frame carries a *write-generation stamp*: a monotonically
/// increasing counter is bumped once per [`GuestPhysMemory::write_phys`]
/// call and stamped onto each frame the write touches. Introspectors use
/// the stamps to skip re-reading pages that provably did not change
/// (incremental rescanning); the stamps cost one `u64` per 4 KiB frame.
///
/// Frames can additionally be *watched* (write-protected, EPT-style): a
/// write landing in a watched frame appends a [`TrappedWrite`] to an
/// append-only trap log. The log is produced under `&mut self` (only guest
/// writes grow it) and read non-destructively through `&self`, preserving
/// the crate's no-interior-mutability rule.
#[derive(Clone, Debug, Default)]
pub struct GuestPhysMemory {
    frames: Vec<Box<[u8; PAGE_SIZE]>>,
    stamps: Vec<u64>,
    write_counter: u64,
    /// Per-frame watch reference counts (0 = unwatched). Kept in lockstep
    /// with `frames`; counts rather than booleans so overlapping module
    /// spans can arm and disarm independently.
    watch_counts: Vec<u32>,
    /// Append-only log of writes that hit watched frames.
    trap_log: Vec<TrappedWrite>,
}

impl GuestPhysMemory {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates one zeroed frame; returns its guest-physical base address.
    pub fn alloc_frame(&mut self) -> u64 {
        let pa = (self.frames.len() as u64) << PAGE_SHIFT;
        self.frames.push(Box::new([0u8; PAGE_SIZE]));
        self.stamps.push(0);
        self.watch_counts.push(0);
        pa
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> usize {
        self.frames.len() * PAGE_SIZE
    }

    /// Reads `buf.len()` bytes starting at guest-physical `pa`. The range
    /// may span frames (frame numbers are contiguous in PA space even though
    /// the backing allocations are not).
    pub fn read_phys(&self, pa: u64, buf: &mut [u8]) -> Result<(), HvError> {
        let mut at = pa;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = (at >> PAGE_SHIFT) as usize;
            let off = (at & (PAGE_SIZE as u64 - 1)) as usize;
            let frame_buf = self.frames.get(frame).ok_or(HvError::PhysOutOfRange {
                pa: at,
                frames: self.frames.len(),
            })?;
            let take = (PAGE_SIZE - off).min(buf.len() - done);
            buf[done..done + take].copy_from_slice(&frame_buf[off..off + take]);
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    /// Writes `data` starting at guest-physical `pa` (may span frames).
    /// Bumps the write counter once and stamps every frame touched.
    pub fn write_phys(&mut self, pa: u64, data: &[u8]) -> Result<(), HvError> {
        if data.is_empty() {
            return Ok(());
        }
        let frames = self.frames.len();
        self.write_counter += 1;
        let gen = self.write_counter;
        let mut at = pa;
        let mut done = 0usize;
        while done < data.len() {
            let frame = (at >> PAGE_SHIFT) as usize;
            let off = (at & (PAGE_SIZE as u64 - 1)) as usize;
            let frame_buf = self
                .frames
                .get_mut(frame)
                .ok_or(HvError::PhysOutOfRange { pa: at, frames })?;
            let take = (PAGE_SIZE - off).min(data.len() - done);
            frame_buf[off..off + take].copy_from_slice(&data[done..done + take]);
            self.stamps[frame] = gen;
            if self.watch_counts[frame] > 0 {
                self.trap_log.push(TrappedWrite {
                    frame: frame as u64,
                    stamp: gen,
                });
            }
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    /// The write-generation of the frame containing guest-physical `pa`.
    pub fn page_generation(&self, pa: u64) -> Result<PageGeneration, HvError> {
        let frame = (pa >> PAGE_SHIFT) as usize;
        let stamp = *self.stamps.get(frame).ok_or(HvError::PhysOutOfRange {
            pa,
            frames: self.frames.len(),
        })?;
        Ok(PageGeneration {
            frame: frame as u64,
            stamp,
        })
    }

    /// Current value of the global write counter.
    pub fn write_counter(&self) -> u64 {
        self.write_counter
    }

    /// Raises the write counter to at least `floor`. Snapshot revert uses
    /// this to keep the counter monotonic across reverts: the restored
    /// stamp vector may go backwards (it mirrors restored content), but
    /// counter values must never be re-issued, or a stale cached stamp
    /// could collide with a newer write.
    pub fn keep_counter_at_least(&mut self, floor: u64) {
        self.write_counter = self.write_counter.max(floor);
    }

    /// Arms a write-protection watch on one frame (reference-counted, so
    /// overlapping watched ranges compose). Subsequent writes to the frame
    /// append to the trap log.
    pub fn watch_frame(&mut self, frame: u64) -> Result<(), HvError> {
        let slot = self
            .watch_counts
            .get_mut(frame as usize)
            .ok_or(HvError::PhysOutOfRange {
                pa: frame << PAGE_SHIFT,
                frames: self.frames.len(),
            })?;
        *slot += 1;
        Ok(())
    }

    /// Releases one watch reference on a frame (no-op at zero).
    pub fn unwatch_frame(&mut self, frame: u64) -> Result<(), HvError> {
        let frames = self.frames.len();
        let slot = self
            .watch_counts
            .get_mut(frame as usize)
            .ok_or(HvError::PhysOutOfRange {
                pa: frame << PAGE_SHIFT,
                frames,
            })?;
        *slot = slot.saturating_sub(1);
        Ok(())
    }

    /// True when at least one watch is armed on the frame.
    pub fn frame_watched(&self, frame: u64) -> bool {
        self.watch_counts
            .get(frame as usize)
            .is_some_and(|&c| c > 0)
    }

    /// Number of frames with at least one watch armed.
    pub fn watched_frames(&self) -> u64 {
        self.watch_counts.iter().filter(|&&c| c > 0).count() as u64
    }

    /// The full trap log (append-only; index into it with a drain cursor).
    pub fn trap_log(&self) -> &[TrappedWrite] {
        &self.trap_log
    }

    /// Detaches the watch + trap-log state (used by snapshot revert to
    /// carry the introspection plane across a memory restore).
    pub fn take_watch_state(&mut self) -> WatchState {
        WatchState {
            watch_counts: std::mem::take(&mut self.watch_counts),
            trap_log: std::mem::take(&mut self.trap_log),
        }
    }

    /// Re-attaches watch + trap-log state, resizing the per-frame counts to
    /// the current frame population (restored memories may differ in size;
    /// new frames start unwatched, watches beyond the end are dropped).
    pub fn restore_watch_state(&mut self, mut state: WatchState) {
        state.watch_counts.resize(self.frames.len(), 0);
        self.watch_counts = state.watch_counts;
        self.trap_log = state.trap_log;
    }

    /// Drops every watch and the whole trap log (a cloned VM must not
    /// inherit its parent's subscriptions).
    pub fn clear_watch_state(&mut self) {
        self.watch_counts.iter_mut().for_each(|c| *c = 0);
        self.trap_log.clear();
    }

    /// Reads a little-endian `u32` at `pa`.
    pub fn read_u32(&self, pa: u64) -> Result<u32, HvError> {
        let mut b = [0u8; 4];
        self.read_phys(pa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` at `pa`.
    pub fn read_u64(&self, pa: u64) -> Result<u64, HvError> {
        let mut b = [0u8; 8];
        self.read_phys(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `pa`.
    pub fn write_u32(&mut self, pa: u64, v: u32) -> Result<(), HvError> {
        self.write_phys(pa, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64` at `pa`.
    pub fn write_u64(&mut self, pa: u64, v: u64) -> Result<(), HvError> {
        self.write_phys(pa, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_sequential_frame_addresses() {
        let mut m = GuestPhysMemory::new();
        assert_eq!(m.alloc_frame(), 0);
        assert_eq!(m.alloc_frame(), PAGE_SIZE as u64);
        assert_eq!(m.frame_count(), 2);
        assert_eq!(m.allocated_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn rw_within_one_frame() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_phys(pa + 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read_phys(pa + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn rw_across_frame_boundary() {
        let mut m = GuestPhysMemory::new();
        let a = m.alloc_frame();
        let _b = m.alloc_frame();
        let start = a + PAGE_SIZE as u64 - 3;
        m.write_phys(start, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        m.read_phys(start, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn out_of_range_access_is_error() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        let mut buf = [0u8; 8];
        // Read starting in-bounds but running past the last frame.
        let late = pa + PAGE_SIZE as u64 - 4;
        assert!(matches!(
            m.read_phys(late, &mut buf),
            Err(HvError::PhysOutOfRange { .. })
        ));
        assert!(m.write_phys(PAGE_SIZE as u64 * 10, b"x").is_err());
    }

    #[test]
    fn scalar_helpers_round_trip() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_u32(pa + 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(pa + 8).unwrap(), 0xDEAD_BEEF);
        m.write_u64(pa + 16, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u64(pa + 16).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn write_stamps_every_frame_touched() {
        let mut m = GuestPhysMemory::new();
        let a = m.alloc_frame();
        let _b = m.alloc_frame();
        let c = m.alloc_frame();
        assert_eq!(m.page_generation(a).unwrap().stamp, 0, "fresh frames");

        // One spanning write bumps the counter once and stamps both frames.
        m.write_phys(a + PAGE_SIZE as u64 - 2, &[1, 2, 3, 4])
            .unwrap();
        assert_eq!(m.write_counter(), 1);
        assert_eq!(m.page_generation(a).unwrap().stamp, 1);
        assert_eq!(m.page_generation(a + PAGE_SIZE as u64).unwrap().stamp, 1);
        assert_eq!(m.page_generation(c).unwrap().stamp, 0, "untouched frame");

        // A later write to one frame moves only that frame's stamp.
        m.write_phys(c, b"x").unwrap();
        assert_eq!(m.page_generation(c).unwrap().stamp, 2);
        assert_eq!(m.page_generation(a).unwrap().stamp, 1);
    }

    #[test]
    fn generation_identifies_the_backing_frame() {
        let mut m = GuestPhysMemory::new();
        let a = m.alloc_frame();
        let b = m.alloc_frame();
        assert_eq!(m.page_generation(a).unwrap().frame, 0);
        assert_eq!(m.page_generation(b + 7).unwrap().frame, 1);
        assert!(m.page_generation(PAGE_SIZE as u64 * 9).is_err());
    }

    #[test]
    fn empty_write_does_not_stamp() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_phys(pa, &[]).unwrap();
        assert_eq!(m.write_counter(), 0);
        assert_eq!(m.page_generation(pa).unwrap().stamp, 0);
    }

    #[test]
    fn counter_floor_is_monotonic() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_phys(pa, b"a").unwrap();
        m.keep_counter_at_least(10);
        assert_eq!(m.write_counter(), 10);
        m.keep_counter_at_least(3); // lower floors never reduce it
        assert_eq!(m.write_counter(), 10);
        m.write_phys(pa, b"b").unwrap();
        assert_eq!(m.page_generation(pa).unwrap().stamp, 11);
    }

    #[test]
    fn frames_start_zeroed() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        let mut buf = vec![1u8; PAGE_SIZE];
        m.read_phys(pa, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }
}
