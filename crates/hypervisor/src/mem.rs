//! Guest-physical memory: discontiguous 4 KiB frames.
//!
//! Guest "physical" memory is a pool of frames indexed by frame number;
//! guest-physical address = `frame_number << 12 | offset`. Frames are
//! allocated on demand by the paging layer and the guest loader. Keeping
//! frames individually allocated (rather than one flat `Vec<u8>`) mirrors
//! how a real hypervisor hands out machine frames, and it makes the
//! page-granular cost of introspection honest: a virtually-contiguous module
//! is physically scattered, so copying it out requires one map per page.

use crate::error::HvError;

/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Guest page/frame size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A pool of guest-physical frames.
#[derive(Clone, Debug, Default)]
pub struct GuestPhysMemory {
    frames: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl GuestPhysMemory {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates one zeroed frame; returns its guest-physical base address.
    pub fn alloc_frame(&mut self) -> u64 {
        let pa = (self.frames.len() as u64) << PAGE_SHIFT;
        self.frames.push(Box::new([0u8; PAGE_SIZE]));
        pa
    }

    /// Number of allocated frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> usize {
        self.frames.len() * PAGE_SIZE
    }

    /// Reads `buf.len()` bytes starting at guest-physical `pa`. The range
    /// may span frames (frame numbers are contiguous in PA space even though
    /// the backing allocations are not).
    pub fn read_phys(&self, pa: u64, buf: &mut [u8]) -> Result<(), HvError> {
        let mut at = pa;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = (at >> PAGE_SHIFT) as usize;
            let off = (at & (PAGE_SIZE as u64 - 1)) as usize;
            let frame_buf = self.frames.get(frame).ok_or(HvError::PhysOutOfRange {
                pa: at,
                frames: self.frames.len(),
            })?;
            let take = (PAGE_SIZE - off).min(buf.len() - done);
            buf[done..done + take].copy_from_slice(&frame_buf[off..off + take]);
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    /// Writes `data` starting at guest-physical `pa` (may span frames).
    pub fn write_phys(&mut self, pa: u64, data: &[u8]) -> Result<(), HvError> {
        let frames = self.frames.len();
        let mut at = pa;
        let mut done = 0usize;
        while done < data.len() {
            let frame = (at >> PAGE_SHIFT) as usize;
            let off = (at & (PAGE_SIZE as u64 - 1)) as usize;
            let frame_buf = self
                .frames
                .get_mut(frame)
                .ok_or(HvError::PhysOutOfRange { pa: at, frames })?;
            let take = (PAGE_SIZE - off).min(data.len() - done);
            frame_buf[off..off + take].copy_from_slice(&data[done..done + take]);
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    /// Reads a little-endian `u32` at `pa`.
    pub fn read_u32(&self, pa: u64) -> Result<u32, HvError> {
        let mut b = [0u8; 4];
        self.read_phys(pa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` at `pa`.
    pub fn read_u64(&self, pa: u64) -> Result<u64, HvError> {
        let mut b = [0u8; 8];
        self.read_phys(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `pa`.
    pub fn write_u32(&mut self, pa: u64, v: u32) -> Result<(), HvError> {
        self.write_phys(pa, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64` at `pa`.
    pub fn write_u64(&mut self, pa: u64, v: u64) -> Result<(), HvError> {
        self.write_phys(pa, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_sequential_frame_addresses() {
        let mut m = GuestPhysMemory::new();
        assert_eq!(m.alloc_frame(), 0);
        assert_eq!(m.alloc_frame(), PAGE_SIZE as u64);
        assert_eq!(m.frame_count(), 2);
        assert_eq!(m.allocated_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn rw_within_one_frame() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_phys(pa + 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read_phys(pa + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn rw_across_frame_boundary() {
        let mut m = GuestPhysMemory::new();
        let a = m.alloc_frame();
        let _b = m.alloc_frame();
        let start = a + PAGE_SIZE as u64 - 3;
        m.write_phys(start, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        m.read_phys(start, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn out_of_range_access_is_error() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        let mut buf = [0u8; 8];
        // Read starting in-bounds but running past the last frame.
        let late = pa + PAGE_SIZE as u64 - 4;
        assert!(matches!(
            m.read_phys(late, &mut buf),
            Err(HvError::PhysOutOfRange { .. })
        ));
        assert!(m.write_phys(PAGE_SIZE as u64 * 10, b"x").is_err());
    }

    #[test]
    fn scalar_helpers_round_trip() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        m.write_u32(pa + 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(pa + 8).unwrap(), 0xDEAD_BEEF);
        m.write_u64(pa + 16, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u64(pa + 16).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn frames_start_zeroed() {
        let mut m = GuestPhysMemory::new();
        let pa = m.alloc_frame();
        let mut buf = vec![1u8; PAGE_SIZE];
        m.read_phys(pa, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }
}
