//! A guest virtual machine.
//!
//! A [`Vm`] owns its guest-physical memory and one kernel address space,
//! carries the symbol table an introspector needs (the equivalent of a
//! libVMI profile: `PsLoadedModuleList`'s virtual address, the guest width),
//! and supports named snapshots — the paper's remediation story is "revert
//! the flagged VM to a clean snapshot".

use std::collections::HashMap;

use crate::error::HvError;
use crate::events::WatchPlan;
use crate::mem::{GuestPhysMemory, PageGeneration, PAGE_SHIFT, PAGE_SIZE};
use crate::paging::AddressSpace;
use mc_pe::AddressWidth;

/// Identifier of a VM on its host (dense, creation-ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

/// A point-in-time copy of a VM's state.
#[derive(Clone, Debug)]
struct Snapshot {
    mem: GuestPhysMemory,
    aspace: AddressSpace,
    symbols: HashMap<String, u64>,
}

/// One guest VM.
#[derive(Clone, Debug)]
pub struct Vm {
    /// This VM's id on its host.
    pub id: VmId,
    /// Human-readable domain name (e.g. `dom1`).
    pub name: String,
    /// Guest-physical memory.
    pub mem: GuestPhysMemory,
    /// The kernel address space (CR3 + width).
    pub aspace: AddressSpace,
    /// Exported kernel symbols: name → guest VA. Populated by the guest
    /// builder; read by VMI (as libVMI reads its profile/System.map).
    pub symbols: HashMap<String, u64>,
    /// Current CPU demand in cores (0 = fully idle; ≥1 = a HeavyLoad-style
    /// stressor). Feeds the host contention model.
    pub cpu_demand: f64,
    /// True while the VM is paused (introspectors may pause to get a
    /// consistent view; reads work either way).
    pub paused: bool,
    /// Optional fault model for chaos testing: when set, introspection
    /// sessions against this VM observe the planned faults (see
    /// [`crate::fault`]). `None` — the default — reproduces the original
    /// always-succeeds simulator.
    pub fault_plan: Option<crate::fault::FaultPlan>,
    snapshots: HashMap<String, Snapshot>,
}

impl Vm {
    /// Creates an empty VM with a fresh address space.
    pub fn new(id: VmId, name: &str, width: AddressWidth) -> Self {
        let mut mem = GuestPhysMemory::new();
        let aspace = AddressSpace::new(&mut mem, width);
        Vm {
            id,
            name: name.to_string(),
            mem,
            aspace,
            symbols: HashMap::new(),
            cpu_demand: 0.0,
            paused: false,
            fault_plan: None,
            snapshots: HashMap::new(),
        }
    }

    /// Guest pointer width.
    pub fn width(&self) -> AddressWidth {
        self.aspace.width()
    }

    /// Maps `len` bytes of fresh memory at page-aligned `va`.
    pub fn map_range(&mut self, va: u64, len: u64) -> Result<(), HvError> {
        self.aspace.map_range_alloc(&mut self.mem, va, len)
    }

    /// Walks the page tables once: guest-virtual `va` → guest-physical
    /// address. Introspectors use this to build per-session translate
    /// caches (a [`Vm`] borrowed immutably cannot remap under them).
    pub fn translate(&self, va: u64) -> Result<u64, HvError> {
        self.aspace.translate(&self.mem, va)
    }

    /// Reads guest-virtual memory into `buf`, walking the page tables for
    /// every page crossed. Fails on any unmapped page.
    pub fn read_virt(&self, va: u64, buf: &mut [u8]) -> Result<(), HvError> {
        let mut at = va;
        let mut done = 0usize;
        while done < buf.len() {
            let pa = self.aspace.translate(&self.mem, at)?;
            let in_page = PAGE_SIZE - (at as usize & (PAGE_SIZE - 1));
            let take = in_page.min(buf.len() - done);
            self.mem.read_phys(pa, &mut buf[done..done + take])?;
            done += take;
            at += take as u64;
        }
        Ok(())
    }

    /// Writes guest-virtual memory (guest-internal operations and in-memory
    /// attacks).
    ///
    /// The write is all-or-nothing: every page's translation is validated
    /// *before* the first byte lands, so a range that crosses an unmapped
    /// page fails without mutating memory, bumping generation stamps, or
    /// firing write-protection traps for the pages before the hole.
    pub fn write_virt(&mut self, va: u64, data: &[u8]) -> Result<(), HvError> {
        let mut segments: Vec<(u64, usize, usize)> = Vec::new();
        let mut at = va;
        let mut done = 0usize;
        while done < data.len() {
            let pa = self.aspace.translate(&self.mem, at)?;
            let in_page = PAGE_SIZE - (at as usize & (PAGE_SIZE - 1));
            let take = in_page.min(data.len() - done);
            segments.push((pa, done, take));
            done += take;
            at += take as u64;
        }
        for (pa, start, take) in segments {
            self.mem.write_phys(pa, &data[start..start + take])?;
        }
        Ok(())
    }

    /// Reads a guest-virtual pointer-sized value (4 or 8 bytes by width).
    pub fn read_ptr(&self, va: u64) -> Result<u64, HvError> {
        match self.width() {
            AddressWidth::W32 => {
                let mut b = [0u8; 4];
                self.read_virt(va, &mut b)?;
                Ok(u32::from_le_bytes(b) as u64)
            }
            AddressWidth::W64 => {
                let mut b = [0u8; 8];
                self.read_virt(va, &mut b)?;
                Ok(u64::from_le_bytes(b))
            }
        }
    }

    /// Writes a guest-virtual pointer-sized value.
    pub fn write_ptr(&mut self, va: u64, value: u64) -> Result<(), HvError> {
        match self.width() {
            AddressWidth::W32 => self.write_virt(va, &(value as u32).to_le_bytes()),
            AddressWidth::W64 => self.write_virt(va, &value.to_le_bytes()),
        }
    }

    /// Number of pages a read of `len` bytes at `va` crosses (for cost
    /// accounting and watch-range registration).
    ///
    /// `va + len - 1` is computed with saturating arithmetic: a range whose
    /// end would wrap past `u64::MAX` is clamped to the last addressable
    /// page instead of overflowing (which used to wrap `last` below `first`
    /// and underflow the subtraction in release builds).
    pub fn pages_crossed(va: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = va >> PAGE_SHIFT;
        let last = va.saturating_add(len - 1) >> PAGE_SHIFT;
        last - first + 1
    }

    /// Frame numbers a `len`-byte range at `va` resolves to, in address
    /// order. Every page's translation is validated before any frame is
    /// returned, so callers can treat the result as all-or-nothing.
    pub fn resolve_frames(&self, va: u64, len: u64) -> Result<Vec<u64>, HvError> {
        let pages = Self::pages_crossed(va, len);
        let first_page_va = va & !(PAGE_SIZE as u64 - 1);
        let mut frames = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let pva = first_page_va.saturating_add(i << PAGE_SHIFT);
            frames.push(self.aspace.translate(&self.mem, pva)? >> PAGE_SHIFT);
        }
        Ok(frames)
    }

    /// Arms write-protection watches on every frame a `len`-byte range at
    /// `va` crosses; returns the number of frames armed. All translations
    /// are validated first, so a range crossing an unmapped page arms
    /// nothing. Watches are reference-counted per frame.
    pub fn watch_range(&mut self, va: u64, len: u64) -> Result<usize, HvError> {
        let frames = self.resolve_frames(va, len)?;
        for &f in &frames {
            self.mem.watch_frame(f)?;
        }
        Ok(frames.len())
    }

    /// Releases one watch reference on every frame the range crosses.
    pub fn unwatch_range(&mut self, va: u64, len: u64) -> Result<usize, HvError> {
        let frames = self.resolve_frames(va, len)?;
        for &f in &frames {
            self.mem.unwatch_frame(f)?;
        }
        Ok(frames.len())
    }

    /// Applies a [`WatchPlan`] built by an introspection session (which
    /// borrows the VM immutably and so can only *plan* watches, not arm
    /// them). Fails if the plan targets a different VM.
    pub fn apply_watch_plan(&mut self, plan: &WatchPlan) -> Result<usize, HvError> {
        if plan.vm != self.id {
            return Err(HvError::UnknownVm(plan.vm));
        }
        for &f in &plan.frames {
            self.mem.watch_frame(f)?;
        }
        Ok(plan.frames.len())
    }

    /// Takes (or replaces) a named snapshot of memory + mappings + symbols.
    pub fn snapshot(&mut self, name: &str) {
        self.snapshots.insert(
            name.to_string(),
            Snapshot {
                mem: self.mem.clone(),
                aspace: self.aspace,
                symbols: self.symbols.clone(),
            },
        );
    }

    /// Reverts to a named snapshot (the paper's clean-state remediation).
    ///
    /// The per-frame write-generation stamps revert with the memory (they
    /// describe its content), but the global write counter stays monotonic
    /// — post-revert writes must never re-issue a counter value a cached
    /// [`PageGeneration`] may still hold. Watches and the trap log belong
    /// to the introspection plane, not to guest content, so they survive
    /// the restore unchanged: a revert must not silently disarm a
    /// monitor's traps. The restore itself fires no trap events — it is a
    /// hypervisor-side frame remap, not a guest write; subscribers learn
    /// of it through cache eviction at the remediation layer.
    pub fn revert(&mut self, name: &str) -> Result<(), HvError> {
        let snap = self
            .snapshots
            .get(name)
            .ok_or_else(|| HvError::SnapshotMissing(name.to_string()))?;
        let counter_floor = self.mem.write_counter();
        let watches = self.mem.take_watch_state();
        self.mem = snap.mem.clone();
        self.mem.keep_counter_at_least(counter_floor);
        self.mem.restore_watch_state(watches);
        self.aspace = snap.aspace;
        self.symbols = snap.symbols.clone();
        Ok(())
    }

    /// The write-generation of the page backing guest-virtual `va`: which
    /// frame it resolves to and the stamp of the last write that touched
    /// that frame. Metadata-only — no guest bytes are copied.
    pub fn page_generation(&self, va: u64) -> Result<PageGeneration, HvError> {
        let pa = self.aspace.translate(&self.mem, va)?;
        self.mem.page_generation(pa)
    }

    /// Names of existing snapshots.
    pub fn snapshot_names(&self) -> impl Iterator<Item = &str> {
        self.snapshots.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm32() -> Vm {
        Vm::new(VmId(0), "t", AddressWidth::W32)
    }

    #[test]
    fn virt_rw_spanning_pages() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        vm.map_range(va, 3 * PAGE_SIZE as u64).unwrap();
        let data: Vec<u8> = (0..(2 * PAGE_SIZE + 100))
            .map(|i| (i % 251) as u8)
            .collect();
        vm.write_virt(va + 50, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        vm.read_virt(va + 50, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn read_unmapped_fails() {
        let vm = vm32();
        let mut buf = [0u8; 4];
        assert!(matches!(
            vm.read_virt(0x8000_0000, &mut buf),
            Err(HvError::UnmappedVa(_))
        ));
    }

    #[test]
    fn read_partially_unmapped_fails() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        vm.map_range(va, PAGE_SIZE as u64).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE + 1];
        assert!(vm.read_virt(va, &mut buf).is_err());
    }

    #[test]
    fn ptr_round_trip_both_widths() {
        let mut vm = vm32();
        vm.map_range(0x8000_0000, PAGE_SIZE as u64).unwrap();
        vm.write_ptr(0x8000_0010, 0xDEAD_BEEF).unwrap();
        assert_eq!(vm.read_ptr(0x8000_0010).unwrap(), 0xDEAD_BEEF);

        let mut vm64 = Vm::new(VmId(1), "t64", AddressWidth::W64);
        vm64.map_range(0xFFFF_F800_0000_0000, PAGE_SIZE as u64)
            .unwrap();
        vm64.write_ptr(0xFFFF_F800_0000_0008, 0xFFFF_F800_1234_5678)
            .unwrap();
        assert_eq!(
            vm64.read_ptr(0xFFFF_F800_0000_0008).unwrap(),
            0xFFFF_F800_1234_5678
        );
    }

    #[test]
    fn pages_crossed_counts() {
        assert_eq!(Vm::pages_crossed(0, 0), 0);
        assert_eq!(Vm::pages_crossed(0, 1), 1);
        assert_eq!(Vm::pages_crossed(0, PAGE_SIZE as u64), 1);
        assert_eq!(Vm::pages_crossed(0, PAGE_SIZE as u64 + 1), 2);
        assert_eq!(Vm::pages_crossed(PAGE_SIZE as u64 - 1, 2), 2);
    }

    #[test]
    fn pages_crossed_does_not_wrap_near_u64_max() {
        let last_page = u64::MAX >> PAGE_SHIFT;
        // End exactly at u64::MAX: one page.
        assert_eq!(Vm::pages_crossed(u64::MAX, 1), 1);
        // Range whose end would overflow u64: clamped to the last page
        // instead of wrapping `last` below `first` (which underflowed).
        assert_eq!(Vm::pages_crossed(u64::MAX - 1, 100), 1);
        assert_eq!(
            Vm::pages_crossed((last_page - 1) << PAGE_SHIFT, u64::MAX),
            2
        );
        // A huge range from 0 still counts normally.
        assert_eq!(Vm::pages_crossed(0, u64::MAX), last_page + 1);
    }

    #[test]
    fn failed_write_virt_mutates_nothing() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        // Two mapped pages, then a hole.
        vm.map_range(va, 2 * PAGE_SIZE as u64).unwrap();
        vm.write_virt(va, b"original").unwrap();
        let counter = vm.mem.write_counter();
        let gen = vm.page_generation(va).unwrap();

        // A write spanning into the unmapped third page must fail without
        // touching the first two pages, bumping stamps, or firing traps.
        vm.watch_range(va, 2 * PAGE_SIZE as u64).unwrap();
        let data = vec![0xCC; 3 * PAGE_SIZE];
        assert!(matches!(
            vm.write_virt(va, &data),
            Err(HvError::UnmappedVa(_))
        ));
        let mut buf = [0u8; 8];
        vm.read_virt(va, &mut buf).unwrap();
        assert_eq!(&buf, b"original", "no torn partial write");
        assert_eq!(vm.mem.write_counter(), counter, "no stamp bump");
        assert_eq!(vm.page_generation(va).unwrap(), gen);
        assert!(vm.mem.trap_log().is_empty(), "no spurious write events");
    }

    #[test]
    fn revert_keeps_the_write_counter_monotonic() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        vm.map_range(va, PAGE_SIZE as u64).unwrap();
        vm.write_virt(va, b"clean").unwrap();
        vm.snapshot("clean");
        let g_clean = vm.page_generation(va).unwrap();

        vm.write_virt(va, b"DIRTY").unwrap();
        let g_dirty = vm.page_generation(va).unwrap();
        assert_ne!(g_clean, g_dirty, "a write must move the generation");
        let counter_before_revert = vm.mem.write_counter();

        vm.revert("clean").unwrap();
        // Stamps revert with memory (same content ⇒ same generation)...
        assert_eq!(vm.page_generation(va).unwrap(), g_clean);
        // ...but the counter never goes back, so the next write cannot
        // collide with a stamp cached while the VM was dirty.
        assert!(vm.mem.write_counter() >= counter_before_revert);
        vm.write_virt(va, b"again").unwrap();
        let g_again = vm.page_generation(va).unwrap();
        assert_ne!(g_again, g_dirty);
        assert_ne!(g_again, g_clean);
    }

    #[test]
    fn page_generation_is_metadata_only() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        vm.map_range(va, 2 * PAGE_SIZE as u64).unwrap();
        vm.write_virt(va + PAGE_SIZE as u64, b"second page")
            .unwrap();
        let g0 = vm.page_generation(va).unwrap();
        let g1 = vm.page_generation(va + PAGE_SIZE as u64).unwrap();
        assert_ne!(g0.frame, g1.frame);
        assert_eq!(g0.stamp, 0, "first page never written");
        assert!(g1.stamp > 0);
        assert!(vm.page_generation(0xDEAD_0000).is_err(), "unmapped VA");
    }

    #[test]
    fn snapshot_and_revert() {
        let mut vm = vm32();
        let va = 0x8000_0000u64;
        vm.map_range(va, PAGE_SIZE as u64).unwrap();
        vm.write_virt(va, b"clean").unwrap();
        vm.symbols.insert("PsLoadedModuleList".into(), va);
        vm.snapshot("clean");

        vm.write_virt(va, b"DIRTY").unwrap();
        vm.symbols.clear();
        vm.revert("clean").unwrap();

        let mut buf = [0u8; 5];
        vm.read_virt(va, &mut buf).unwrap();
        assert_eq!(&buf, b"clean");
        assert_eq!(vm.symbols["PsLoadedModuleList"], va);
        assert!(matches!(
            vm.revert("missing"),
            Err(HvError::SnapshotMissing(_))
        ));
    }
}
