//! Simulated Xen-like hypervisor — the substrate under the ModChecker
//! reproduction.
//!
//! The paper's testbed is a Xen 4.1.2 host running 15 identical Windows XP
//! guests, introspected from the privileged Dom0. No Xen host exists in this
//! environment, so this crate simulates the slice of a hypervisor that
//! virtual machine introspection actually touches:
//!
//! * [`mem`] — guest-physical memory as discontiguous 4 KiB frames. VMI maps
//!   and copies guest memory *frame by frame*, which is why the paper's
//!   Module-Searcher dominates runtime; the frame granularity is load-bearing
//!   for the performance reproduction.
//! * [`paging`] — real x86 page-table formats (two-level non-PAE for 32-bit
//!   guests, four-level for 64-bit) built inside guest memory and walked for
//!   every virtual-address access, exactly like libVMI walks a guest's
//!   tables.
//! * [`vm`] — a guest VM: its memory, kernel address space, exported symbol
//!   table (the equivalent of libVMI's profile for `PsLoadedModuleList`),
//!   snapshot/restore, and its current CPU demand (for the loaded-host
//!   experiments).
//! * [`simtime`] — the calibrated cost model that converts introspection
//!   work (pages mapped, bytes copied/parsed/hashed/diffed) into simulated
//!   nanoseconds, including host CPU contention: when guest demand exceeds
//!   the host's virtual cores, privileged-VM work slows superlinearly
//!   (Figure 8's knee).
//! * [`Hypervisor`] — the host: creates VMs, clones them from a golden
//!   image (the paper's "15 VM clones from a single installation"), and
//!   exposes read-only access for introspection.
//!
//! The crate deliberately has no interior mutability: building guests and
//! infecting them takes `&mut Hypervisor`; scanning takes `&Hypervisor`, so
//! a parallel pool scan is data-race free by construction.

#![warn(missing_docs)]

pub mod error;
pub mod events;
pub mod fault;
pub mod mem;
pub mod paging;
pub mod replay;
pub mod simtime;
pub mod vm;

pub use error::HvError;
pub use events::{EventCursor, TrapModel, WatchPlan, WriteEvent};
pub use fault::{FaultDecision, FaultPlan, FaultState};
pub use mem::{GuestPhysMemory, PageGeneration, TrappedWrite, PAGE_SHIFT, PAGE_SIZE};
pub use paging::AddressSpace;
pub use replay::{AdversaryScript, Replay, RoundCtx};
pub use simtime::{ContentionModel, CostModel, SimDuration};
pub use vm::{Vm, VmId};

// The ISA pointer width is shared with the PE model; re-export it so
// downstream crates name one type.
pub use mc_pe::AddressWidth;

use std::collections::HashMap;

/// Host hardware configuration.
///
/// Defaults mirror the paper's testbed: a quad-core i7 with HyperThreading
/// (8 virtual cores) and 18 GB RAM.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Number of virtual cores (hardware threads).
    pub virtual_cores: u32,
    /// Host RAM in bytes (only used for capacity accounting).
    pub ram_bytes: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            virtual_cores: 8,
            ram_bytes: 18 * 1024 * 1024 * 1024,
        }
    }
}

/// The simulated host: all guest VMs plus the cost and contention models.
#[derive(Clone, Debug)]
pub struct Hypervisor {
    vms: Vec<Vm>,
    names: HashMap<String, VmId>,
    /// Introspection/processing cost model used for simulated-time figures.
    pub cost: CostModel,
    /// Host configuration (virtual cores feed the contention model).
    pub host: HostConfig,
    /// Seeded trap-delivery model for write-protection events (see
    /// [`events`]).
    pub trap: TrapModel,
}

impl Default for Hypervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl Hypervisor {
    /// Creates an empty host with default (paper-testbed) configuration.
    pub fn new() -> Self {
        Hypervisor {
            vms: Vec::new(),
            names: HashMap::new(),
            cost: CostModel::default(),
            host: HostConfig::default(),
            trap: TrapModel::default(),
        }
    }

    /// Creates a host with explicit configuration.
    pub fn with_config(host: HostConfig, cost: CostModel) -> Self {
        Hypervisor {
            vms: Vec::new(),
            names: HashMap::new(),
            cost,
            host,
            trap: TrapModel::default(),
        }
    }

    /// Creates a fresh, empty guest VM and returns its id.
    pub fn create_vm(&mut self, name: &str, width: AddressWidth) -> Result<VmId, HvError> {
        if self.names.contains_key(name) {
            return Err(HvError::DuplicateVmName(name.to_string()));
        }
        let id = VmId(self.vms.len() as u32);
        self.vms.push(Vm::new(id, name, width));
        self.names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Clones an existing VM — memory, page tables, symbols — under a new
    /// name. This is the paper's "instantiate N clones from a single
    /// installation" step.
    pub fn clone_vm(&mut self, src: VmId, name: &str) -> Result<VmId, HvError> {
        if self.names.contains_key(name) {
            return Err(HvError::DuplicateVmName(name.to_string()));
        }
        let id = VmId(self.vms.len() as u32);
        let mut vm = self.vm(src)?.clone();
        vm.id = id;
        vm.name = name.to_string();
        // Watches and the trap log are *subscriptions against the source
        // VM* — a clone is a fresh guest nobody has armed yet.
        vm.mem.clear_watch_state();
        self.vms.push(vm);
        self.names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Renames a VM (cloud operators rename domains freely — e.g. into a
    /// quarantine namespace). The id is stable; only the name moves.
    pub fn rename_vm(&mut self, id: VmId, new_name: &str) -> Result<(), HvError> {
        if self.names.contains_key(new_name) {
            return Err(HvError::DuplicateVmName(new_name.to_string()));
        }
        let vm = self
            .vms
            .get_mut(id.0 as usize)
            .ok_or(HvError::UnknownVm(id))?;
        self.names.remove(&vm.name);
        vm.name = new_name.to_string();
        self.names.insert(new_name.to_string(), id);
        Ok(())
    }

    /// Applies a [`WatchPlan`] built by an introspection session to the VM
    /// it targets; returns the number of frames armed.
    pub fn apply_watch_plan(&mut self, plan: &WatchPlan) -> Result<usize, HvError> {
        self.vm_mut(plan.vm)?.apply_watch_plan(plan)
    }

    /// Immutable access to a VM.
    pub fn vm(&self, id: VmId) -> Result<&Vm, HvError> {
        self.vms.get(id.0 as usize).ok_or(HvError::UnknownVm(id))
    }

    /// Mutable access to a VM (guest construction and attacks only).
    pub fn vm_mut(&mut self, id: VmId) -> Result<&mut Vm, HvError> {
        self.vms
            .get_mut(id.0 as usize)
            .ok_or(HvError::UnknownVm(id))
    }

    /// Looks a VM up by name.
    pub fn vm_by_name(&self, name: &str) -> Option<&Vm> {
        self.names.get(name).map(|id| &self.vms[id.0 as usize])
    }

    /// All VM ids, in creation order.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.iter().map(|vm| vm.id)
    }

    /// Number of VMs on the host.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Total guest CPU demand in cores (the privileged VM adds its own
    /// demand separately when introspecting).
    pub fn total_guest_demand(&self) -> f64 {
        self.vms.iter().map(|vm| vm.cpu_demand).sum()
    }

    /// The contention slowdown factor currently applied to privileged-VM
    /// (ModChecker) work. See [`ContentionModel::slowdown`].
    pub fn dom0_slowdown(&self) -> f64 {
        ContentionModel::new(self.host.virtual_cores).slowdown(self.total_guest_demand())
    }

    /// Attaches a fault plan to one VM (subsequent introspection sessions
    /// observe it). Pass `None` to clear.
    pub fn set_fault_plan(&mut self, id: VmId, plan: Option<FaultPlan>) -> Result<(), HvError> {
        self.vm_mut(id)?.fault_plan = plan;
        Ok(())
    }

    /// Attaches the same fault plan to every VM on the host — the one-line
    /// chaos switch used by the CLI's `--fault-seed` and the chaos suite.
    /// Per-VM fault streams still differ (the state mixes the VM id into
    /// the seed).
    pub fn inject_fault_plan(&mut self, plan: FaultPlan) {
        for vm in &mut self.vms {
            vm.fault_plan = Some(plan);
        }
    }

    /// Registers the host's point-in-time state as gauges: VM count, guest
    /// CPU demand, the Dom0 contention slowdown, and aggregate guest-memory
    /// figures (frames, allocated bytes, write-generation high-water mark).
    #[allow(clippy::cast_precision_loss)]
    pub fn record_metrics(&self, reg: &mut mc_obs::MetricsRegistry) {
        reg.gauge_set("hv_vm_count", self.vm_count() as f64);
        reg.gauge_set("hv_guest_demand_cores", self.total_guest_demand());
        reg.gauge_set("hv_dom0_slowdown", self.dom0_slowdown());
        let (frames, bytes, generations) =
            self.vms.iter().fold((0u64, 0u64, 0u64), |(f, b, g), vm| {
                (
                    f + vm.mem.frame_count() as u64,
                    b + vm.mem.allocated_bytes() as u64,
                    g + vm.mem.write_counter(),
                )
            });
        reg.gauge_set("hv_guest_frames", frames as f64);
        reg.gauge_set("hv_guest_allocated_bytes", bytes as f64);
        reg.gauge_set("hv_frame_generations", generations as f64);
        let (watched, trapped) = self.vms.iter().fold((0u64, 0u64), |(w, t), vm| {
            (
                w + vm.mem.watched_frames(),
                t + vm.mem.trap_log().len() as u64,
            )
        });
        reg.gauge_set("trap_watched_frames", watched as f64);
        reg.gauge_set("trap_writes_total", trapped as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_vms() {
        let mut hv = Hypervisor::new();
        let a = hv.create_vm("dom1", AddressWidth::W32).unwrap();
        let b = hv.create_vm("dom2", AddressWidth::W32).unwrap();
        assert_ne!(a, b);
        assert_eq!(hv.vm(a).unwrap().name, "dom1");
        assert_eq!(hv.vm_by_name("dom2").unwrap().id, b);
        assert!(hv.vm_by_name("dom3").is_none());
        assert_eq!(hv.vm_count(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut hv = Hypervisor::new();
        hv.create_vm("dom1", AddressWidth::W32).unwrap();
        assert!(matches!(
            hv.create_vm("dom1", AddressWidth::W32),
            Err(HvError::DuplicateVmName(_))
        ));
    }

    #[test]
    fn clone_copies_memory() {
        let mut hv = Hypervisor::new();
        let a = hv.create_vm("golden", AddressWidth::W32).unwrap();
        {
            let vm = hv.vm_mut(a).unwrap();
            let va = 0x8000_0000u64;
            vm.map_range(va, PAGE_SIZE as u64).unwrap();
            vm.write_virt(va, b"golden bytes").unwrap();
        }
        let b = hv.clone_vm(a, "clone1").unwrap();
        // Mutating the clone must not affect the golden image.
        hv.vm_mut(b)
            .unwrap()
            .write_virt(0x8000_0000, b"CLONED")
            .unwrap();
        let mut buf = [0u8; 6];
        hv.vm(a).unwrap().read_virt(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"golden");
        hv.vm(b).unwrap().read_virt(0x8000_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"CLONED");
    }

    #[test]
    fn unknown_vm_is_error() {
        let hv = Hypervisor::new();
        assert!(matches!(hv.vm(VmId(9)), Err(HvError::UnknownVm(_))));
    }

    #[test]
    fn dom0_slowdown_grows_with_demand() {
        let mut hv = Hypervisor::new();
        let idle = hv.dom0_slowdown();
        assert!(idle < 1.1, "idle slowdown {idle} should be near 1");
        for i in 0..12 {
            let id = hv.create_vm(&format!("dom{i}"), AddressWidth::W32).unwrap();
            hv.vm_mut(id).unwrap().cpu_demand = 1.0;
        }
        assert!(hv.dom0_slowdown() > 1.0);
    }
}
