//! Deterministic fault injection — the chaos layer under the VMI stack.
//!
//! Live-guest introspection is racy and lossy: pages get paged out, guests
//! dirty memory between the introspector's reads (torn pages), foreign-map
//! calls transiently fail, and a VM can pause or vanish mid-scan. The
//! paper's prototype ran against live Xen guests and simply ate these
//! failures; our simulator previously modeled none of them, so the
//! majority-vote core had never been exercised under the failure modes a
//! production deployment sees daily.
//!
//! A [`FaultPlan`] describes *what* can go wrong on one VM; it is attached
//! to the [`crate::Vm`] (immutable configuration, cloned with the VM). The
//! mutable per-scan state — the RNG, the read counter that triggers
//! pause/loss, the set of currently paged-out pages — lives in a
//! [`FaultState`] owned by each introspection session, so concurrent
//! sessions against the same host stay data-race free and *deterministic*:
//! the stream of faults a session sees is a pure function of
//! `(plan.seed, vm id)`, independent of thread scheduling.
//!
//! Faults are surfaced as typed [`HvError`] variants. Transient ones
//! ([`HvError::is_transient`]) are retryable; [`HvError::VmLost`] is not.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::HvError;
use crate::vm::VmId;
use crate::PAGE_SHIFT;

/// Reads at least this long are exposed to torn-page corruption. Shorter
/// reads model control-structure accesses (list pointers, header words)
/// that fit in one cache line and are effectively atomic; bulk page copies
/// are where a guest write lands mid-copy.
pub const TORN_READ_MIN_BYTES: usize = 1024;

/// Per-VM fault model: what can go wrong, how often, seeded for
/// reproducibility. All rates are per read *attempt* in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-session fault stream. Two sessions against the same
    /// VM under the same plan observe identical faults.
    pub seed: u64,
    /// Probability a read attempt fails with [`HvError::TransientFault`]
    /// (a failed foreign-map / hypercall that succeeds on retry).
    pub transient_rate: f64,
    /// Probability a first-touched page is currently paged out
    /// ([`HvError::PagedOut`] until the guest pages it back in).
    pub paged_out_rate: f64,
    /// How many read attempts a paged-out page stays out before the
    /// (simulated) guest pages it back in.
    pub paged_out_attempts: u32,
    /// Probability a bulk read (≥ [`TORN_READ_MIN_BYTES`]) returns torn
    /// data: the guest dirtied the page between the introspector's reads,
    /// so one byte of the returned buffer is stale. Detectable only by
    /// reading twice ([`read_va_stable`](../mc_vmi/index.html)).
    pub torn_rate: f64,
    /// Probability a successful read suffers a scheduling latency spike.
    pub latency_spike_rate: f64,
    /// Extra simulated nanoseconds charged by one latency spike.
    pub latency_spike_ns: u64,
    /// After this many successful reads the VM pauses (e.g. live migration
    /// brown-out): reads fail transiently with [`HvError::VmPaused`] for
    /// [`FaultPlan::pause_attempts`] attempts, then resume.
    pub pause_after_reads: Option<u64>,
    /// Failed attempts a paused VM stays paused.
    pub pause_attempts: u32,
    /// After this many successful reads the VM vanishes (destroyed or
    /// migrated away): every later access fails with the *fatal*
    /// [`HvError::VmLost`]. `Some(0)` makes even attach fail.
    pub lose_after_reads: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub const fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            paged_out_rate: 0.0,
            paged_out_attempts: 2,
            torn_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_ns: 200_000,
            pause_after_reads: None,
            pause_attempts: 3,
            lose_after_reads: None,
        }
    }

    /// Transient read faults only, at `rate`.
    pub const fn transient(seed: u64, rate: f64) -> Self {
        let mut p = Self::none(seed);
        p.transient_rate = rate;
        p
    }

    /// The kitchen sink at moderate rates: transient faults, paged-out
    /// pages, torn pages and latency spikes — everything recoverable.
    pub const fn chaos(seed: u64, rate: f64) -> Self {
        let mut p = Self::none(seed);
        p.transient_rate = rate;
        p.paged_out_rate = rate;
        p.torn_rate = rate;
        p.latency_spike_rate = rate;
        p
    }

    /// Builder: the VM vanishes after `reads` successful reads.
    pub const fn lose_after(mut self, reads: u64) -> Self {
        self.lose_after_reads = Some(reads);
        self
    }

    /// Builder: the VM pauses after `reads` successful reads for
    /// `attempts` failed attempts.
    pub const fn pause_after(mut self, reads: u64, attempts: u32) -> Self {
        self.pause_after_reads = Some(reads);
        self.pause_attempts = attempts;
        self
    }

    /// Builder: torn-page rate.
    pub const fn with_torn_rate(mut self, rate: f64) -> Self {
        self.torn_rate = rate;
        self
    }
}

/// What the fault layer decided about one read attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultDecision {
    /// The read proceeds. `torn_byte` asks the caller to corrupt that
    /// offset of the returned buffer (a stale byte from a concurrent guest
    /// write); `extra_ns` is latency-spike time to charge on top of the
    /// normal read cost.
    Proceed {
        /// Buffer offset to corrupt, if this read is torn.
        torn_byte: Option<usize>,
        /// Latency-spike nanoseconds to charge.
        extra_ns: u64,
    },
    /// The read fails with this error; `extra_ns` is still charged (the
    /// failed hypercall costs time too).
    Fail {
        /// The injected error.
        error: HvError,
        /// Latency-spike nanoseconds to charge.
        extra_ns: u64,
    },
}

/// Mutable per-session fault state: a deterministic RNG plus the counters
/// that drive pause/loss triggers and the paged-out page set.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    vm: VmId,
    /// Successful reads so far (drives pause/loss triggers).
    reads_ok: u64,
    /// Remaining failed attempts while paused; `None` = pause not yet
    /// triggered or already over.
    pause_remaining: Option<u32>,
    pause_done: bool,
    /// Page number → remaining attempts before it pages back in.
    paged_out: HashMap<u64, u32>,
    /// Pages already decided resident (first-touch decision is sticky).
    decided: HashSet<u64>,
    /// Total anomalies injected so far: every failed attempt, torn buffer
    /// and latency spike counts one.
    injections: u64,
}

impl FaultState {
    /// Fault state for one session against `vm` under `plan`. The RNG
    /// stream depends only on the plan seed and the VM id, so parallel and
    /// sequential scans observe identical faults.
    pub fn new(vm: VmId, plan: FaultPlan) -> Self {
        let mix = plan.seed ^ (u64::from(vm.0).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultState {
            plan,
            rng: StdRng::seed_from_u64(mix),
            vm,
            reads_ok: 0,
            pause_remaining: None,
            pause_done: false,
            paged_out: HashMap::new(),
            decided: HashSet::new(),
            injections: 0,
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Anomalies injected so far (failed attempts, torn buffers, latency
    /// spikes). Deterministic per `(plan.seed, vm)` like the fault stream
    /// itself, so it is safe to export as a metric compared across scan
    /// modes.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// Consulted at session attach: a VM lost before its first read cannot
    /// even be attached to.
    pub fn on_attach(&self) -> Result<(), HvError> {
        if self.plan.lose_after_reads == Some(0) {
            return Err(HvError::VmLost(self.vm));
        }
        Ok(())
    }

    /// Decides the fate of one read attempt of `len` bytes at `va`.
    /// Deterministic given the session's prior attempt history.
    pub fn on_read(&mut self, va: u64, len: usize) -> FaultDecision {
        let decision = self.decide(va, len);
        match &decision {
            FaultDecision::Proceed {
                torn_byte,
                extra_ns,
            } => {
                self.injections += u64::from(torn_byte.is_some()) + u64::from(*extra_ns > 0);
            }
            FaultDecision::Fail { extra_ns, .. } => {
                self.injections += 1 + u64::from(*extra_ns > 0);
            }
        }
        decision
    }

    fn decide(&mut self, va: u64, len: usize) -> FaultDecision {
        let extra_ns = if self.plan.latency_spike_rate > 0.0
            && self.rng.random_bool(self.plan.latency_spike_rate)
        {
            self.plan.latency_spike_ns
        } else {
            0
        };

        // Permanent loss dominates everything.
        if let Some(after) = self.plan.lose_after_reads {
            if self.reads_ok >= after {
                return FaultDecision::Fail {
                    error: HvError::VmLost(self.vm),
                    extra_ns,
                };
            }
        }

        // Pause window: triggered once, holds for `pause_attempts`
        // attempts, then the VM resumes.
        if !self.pause_done {
            if let Some(after) = self.plan.pause_after_reads {
                if self.reads_ok >= after {
                    let remaining = self.pause_remaining.unwrap_or(self.plan.pause_attempts);
                    if remaining > 0 {
                        self.pause_remaining = Some(remaining - 1);
                        return FaultDecision::Fail {
                            error: HvError::VmPaused(self.vm),
                            extra_ns,
                        };
                    }
                    self.pause_done = true;
                }
            }
        }

        // Paged-out pages: the first page of the read is subject to a
        // sticky first-touch decision; an out page costs attempts until the
        // guest pages it back in.
        let page = va >> PAGE_SHIFT;
        if let Some(remaining) = self.paged_out.get_mut(&page) {
            if *remaining > 0 {
                *remaining -= 1;
                return FaultDecision::Fail {
                    error: HvError::PagedOut { va },
                    extra_ns,
                };
            }
            self.paged_out.remove(&page);
        } else if self.plan.paged_out_rate > 0.0
            && self.decided.insert(page)
            && self.rng.random_bool(self.plan.paged_out_rate)
        {
            self.paged_out
                .insert(page, self.plan.paged_out_attempts.saturating_sub(1));
            return FaultDecision::Fail {
                error: HvError::PagedOut { va },
                extra_ns,
            };
        }

        // Transient hypercall failure.
        if self.plan.transient_rate > 0.0 && self.rng.random_bool(self.plan.transient_rate) {
            return FaultDecision::Fail {
                error: HvError::TransientFault { va },
                extra_ns,
            };
        }

        // Torn page: only bulk reads race guest writes.
        let torn_byte = if len >= TORN_READ_MIN_BYTES
            && self.plan.torn_rate > 0.0
            && self.rng.random_bool(self.plan.torn_rate)
        {
            Some(self.rng.random_range(0..len))
        } else {
            None
        };

        self.reads_ok += 1;
        FaultDecision::Proceed {
            torn_byte,
            extra_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(state: &mut FaultState, reads: usize, len: usize) -> Vec<FaultDecision> {
        (0..reads)
            .map(|i| state.on_read(0x8000_0000 + (i as u64) * 4096, len))
            .collect()
    }

    #[test]
    fn no_plan_faults_nothing() {
        let mut s = FaultState::new(VmId(0), FaultPlan::none(1));
        for d in drain(&mut s, 64, 4096) {
            assert_eq!(
                d,
                FaultDecision::Proceed {
                    torn_byte: None,
                    extra_ns: 0
                }
            );
        }
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let plan = FaultPlan::chaos(42, 0.2);
        let a = drain(&mut FaultState::new(VmId(3), plan), 200, 4096);
        let b = drain(&mut FaultState::new(VmId(3), plan), 200, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn different_vms_get_different_streams() {
        let plan = FaultPlan::chaos(42, 0.2);
        let a = drain(&mut FaultState::new(VmId(0), plan), 200, 4096);
        let b = drain(&mut FaultState::new(VmId(1), plan), 200, 4096);
        assert_ne!(a, b);
    }

    #[test]
    fn transient_faults_appear_at_roughly_the_configured_rate() {
        let mut s = FaultState::new(VmId(0), FaultPlan::transient(7, 0.25));
        let faults = drain(&mut s, 1000, 64)
            .iter()
            .filter(|d| matches!(d, FaultDecision::Fail { .. }))
            .count();
        assert!((150..350).contains(&faults), "got {faults}/1000");
    }

    #[test]
    fn loss_is_permanent() {
        let mut s = FaultState::new(VmId(0), FaultPlan::none(1).lose_after(3));
        assert!(s.on_attach().is_ok());
        let mut ok = 0;
        let mut lost = 0;
        for d in drain(&mut s, 10, 64) {
            match d {
                FaultDecision::Proceed { .. } => ok += 1,
                FaultDecision::Fail {
                    error: HvError::VmLost(_),
                    ..
                } => lost += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ok, 3);
        assert_eq!(lost, 7);
    }

    #[test]
    fn loss_at_zero_fails_attach() {
        let s = FaultState::new(VmId(5), FaultPlan::none(1).lose_after(0));
        assert!(matches!(s.on_attach(), Err(HvError::VmLost(VmId(5)))));
    }

    #[test]
    fn pause_is_a_bounded_window() {
        let mut s = FaultState::new(VmId(0), FaultPlan::none(1).pause_after(2, 3));
        let decisions = drain(&mut s, 10, 64);
        let kinds: Vec<bool> = decisions
            .iter()
            .map(|d| matches!(d, FaultDecision::Proceed { .. }))
            .collect();
        // 2 ok, 3 paused, then resumed.
        assert_eq!(
            kinds,
            vec![true, true, false, false, false, true, true, true, true, true]
        );
        assert!(decisions[2..5].iter().all(|d| matches!(
            d,
            FaultDecision::Fail {
                error: HvError::VmPaused(_),
                ..
            }
        )));
    }

    #[test]
    fn paged_out_page_comes_back() {
        let mut plan = FaultPlan::none(9);
        plan.paged_out_rate = 1.0; // every first-touch page is out
        plan.paged_out_attempts = 2;
        let mut s = FaultState::new(VmId(0), plan);
        let va = 0x8000_0000;
        assert!(matches!(
            s.on_read(va, 64),
            FaultDecision::Fail {
                error: HvError::PagedOut { .. },
                ..
            }
        ));
        assert!(matches!(s.on_read(va, 64), FaultDecision::Fail { .. }));
        // Third attempt: paged back in, and the decision is sticky.
        assert!(matches!(s.on_read(va, 64), FaultDecision::Proceed { .. }));
        assert!(matches!(s.on_read(va, 64), FaultDecision::Proceed { .. }));
    }

    #[test]
    fn torn_reads_only_affect_bulk_reads() {
        let mut plan = FaultPlan::none(11);
        plan.torn_rate = 1.0;
        let mut s = FaultState::new(VmId(0), plan);
        // Small control read: never torn.
        match s.on_read(0x8000_0000, 8) {
            FaultDecision::Proceed { torn_byte, .. } => assert_eq!(torn_byte, None),
            other => panic!("unexpected {other:?}"),
        }
        // Bulk read: torn, with an in-bounds byte offset.
        match s.on_read(0x8000_0000, 4096) {
            FaultDecision::Proceed {
                torn_byte: Some(off),
                ..
            } => assert!(off < 4096),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn injections_count_every_anomaly_deterministically() {
        let mut clean = FaultState::new(VmId(0), FaultPlan::none(1));
        drain(&mut clean, 50, 4096);
        assert_eq!(clean.injections(), 0);

        let plan = FaultPlan::chaos(42, 0.2);
        let mut a = FaultState::new(VmId(3), plan);
        let decisions = drain(&mut a, 200, 4096);
        let expected: u64 = decisions
            .iter()
            .map(|d| match d {
                FaultDecision::Proceed {
                    torn_byte,
                    extra_ns,
                } => u64::from(torn_byte.is_some()) + u64::from(*extra_ns > 0),
                FaultDecision::Fail { extra_ns, .. } => 1 + u64::from(*extra_ns > 0),
            })
            .sum();
        assert!(expected > 0);
        assert_eq!(a.injections(), expected);

        let mut b = FaultState::new(VmId(3), plan);
        drain(&mut b, 200, 4096);
        assert_eq!(a.injections(), b.injections());
    }

    #[test]
    fn latency_spikes_charge_extra_time() {
        let mut plan = FaultPlan::none(13);
        plan.latency_spike_rate = 1.0;
        plan.latency_spike_ns = 77;
        let mut s = FaultState::new(VmId(0), plan);
        match s.on_read(0x8000_0000, 64) {
            FaultDecision::Proceed { extra_ns, .. } => assert_eq!(extra_ns, 77),
            other => panic!("unexpected {other:?}"),
        }
    }
}
