//! Seeded open-loop attestation load: the arrival process for the
//! `mc-serve` daemon.
//!
//! *Open-loop* means arrivals are generated up front, independent of how
//! fast the daemon answers — the generator never waits for a response, so
//! overload actually overloads (a closed-loop generator would politely
//! self-throttle and hide every backpressure path this load exists to
//! exercise). The process is fully determined by [`QueryProfile::seed`]:
//! the same profile and catalog produce the same `Vec<AttestQuery>`
//! byte-for-byte, which is what makes the serve goldens and the
//! cross-worker determinism suite possible.
//!
//! The arrival process is deliberately bursty — a two-mode gap draw
//! (short "burst" gaps with probability [`QueryProfile::burst_prob`],
//! longer spread gaps otherwise) rather than a memoryless stream —
//! because admission control is only interesting when queues actually
//! form. Tenants are drawn with a square-law bias toward low indices, so
//! `tenant0` is the noisy neighbor that exercises per-tenant quotas.

use mc_hypervisor::SimDuration;
use modchecker::serve::AttestQuery;
use rand::{rngs::StdRng, RngCore, RngExt, SeedableRng};

/// Shape of one synthetic attestation workload.
#[derive(Clone, Copy, Debug)]
pub struct QueryProfile {
    /// Stream seed; everything below is deterministic given it.
    pub seed: u64,
    /// Number of queries to emit.
    pub queries: usize,
    /// Mean gap of the *spread* mode; burst-mode gaps are ~10× shorter.
    pub mean_gap: SimDuration,
    /// Probability a gap is a burst gap (queues form inside bursts).
    pub burst_prob: f64,
    /// Distinct tenants (`tenant0` … `tenant{n-1}`), drawn with a
    /// square-law bias toward `tenant0`.
    pub tenants: usize,
    /// Deadline range, drawn uniformly per query.
    pub deadline_min: SimDuration,
    /// Upper deadline bound (inclusive).
    pub deadline_max: SimDuration,
    /// Probability a query asks for a module the fleet does not have
    /// (exercises the typed `UnknownTarget` rejection).
    pub unknown_rate: f64,
}

impl Default for QueryProfile {
    fn default() -> Self {
        QueryProfile {
            seed: 42,
            queries: 200,
            mean_gap: SimDuration::from_micros(500),
            burst_prob: 0.25,
            tenants: 3,
            deadline_min: SimDuration::from_millis(1),
            deadline_max: SimDuration::from_millis(5),
            unknown_rate: 0.02,
        }
    }
}

/// Generates the arrival stream against a `(pool, module)` catalog.
/// Arrivals are time-ordered; targets are drawn uniformly from the
/// catalog (unknown-module probes keep the drawn pool, so they pass the
/// pool gate and die at the module gate). Panics if the catalog is
/// empty — a workload against nothing is a caller bug.
pub fn generate(profile: &QueryProfile, catalog: &[(String, String)]) -> Vec<AttestQuery> {
    assert!(!catalog.is_empty(), "query generation needs a catalog");
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x5E2F_E0AD_D15C_0B8Bu64);
    let tenants = profile.tenants.max(1);
    let (dmin, dmax) = (
        profile.deadline_min.as_nanos(),
        profile
            .deadline_max
            .as_nanos()
            .max(profile.deadline_min.as_nanos()),
    );
    let mut at = SimDuration::ZERO;
    let mut out = Vec::with_capacity(profile.queries);
    for _ in 0..profile.queries {
        // Two-mode gap: bursts pack queries ~10× tighter than the spread
        // mode, whose width is 2× the mean (uniform over [0, 2·mean]).
        let unit = uniform_unit(&mut rng);
        let gap = if rng.random_bool(profile.burst_prob.clamp(0.0, 1.0)) {
            profile.mean_gap.scaled(0.1 * unit)
        } else {
            profile.mean_gap.scaled(2.0 * unit)
        };
        at += gap;
        // Square-law tenant bias: tenant0 is the heaviest talker.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let tenant = ((uniform_unit(&mut rng).powi(2)) * tenants as f64) as usize;
        let (pool, module) = &catalog[rng.random_range(0..catalog.len())];
        let module = if rng.random_bool(profile.unknown_rate.clamp(0.0, 1.0)) {
            format!("ghost-{module}")
        } else {
            module.clone()
        };
        out.push(AttestQuery {
            at,
            tenant: format!("tenant{}", tenant.min(tenants - 1)),
            pool: pool.clone(),
            module,
            deadline: SimDuration::from_nanos(rng.random_range(dmin..=dmax)),
        });
    }
    out
}

/// Uniform draw in `[0, 1)` from 53 mantissa bits.
#[allow(clippy::cast_precision_loss)]
fn uniform_unit<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<(String, String)> {
        vec![
            ("pool0".to_string(), "p0m0.sys".to_string()),
            ("pool0".to_string(), "p0m1.sys".to_string()),
            ("pool1".to_string(), "p1m0.sys".to_string()),
        ]
    }

    #[test]
    fn same_profile_reproduces_the_stream_exactly() {
        let p = QueryProfile::default();
        assert_eq!(generate(&p, &catalog()), generate(&p, &catalog()));
        let other = QueryProfile { seed: 43, ..p };
        assert_ne!(generate(&p, &catalog()), generate(&other, &catalog()));
    }

    #[test]
    fn arrivals_are_ordered_and_deadlines_in_range() {
        let p = QueryProfile::default();
        let stream = generate(&p, &catalog());
        assert_eq!(stream.len(), p.queries);
        let mut last = SimDuration::ZERO;
        for q in &stream {
            assert!(q.at >= last, "arrival times are monotone");
            last = q.at;
            assert!(q.deadline >= p.deadline_min && q.deadline <= p.deadline_max);
            assert!(catalog().iter().any(|(pool, _)| pool == &q.pool));
        }
    }

    #[test]
    fn tenant_bias_makes_tenant0_the_noisy_neighbor() {
        let p = QueryProfile {
            queries: 600,
            ..QueryProfile::default()
        };
        let stream = generate(&p, &catalog());
        let count = |t: &str| stream.iter().filter(|q| q.tenant == t).count();
        let (t0, t2) = (count("tenant0"), count("tenant2"));
        assert!(t0 > t2, "square-law bias: {t0} vs {t2}");
        assert!(t2 > 0, "every tenant appears");
    }

    #[test]
    fn unknown_rate_produces_ghost_modules() {
        let none = QueryProfile {
            unknown_rate: 0.0,
            ..QueryProfile::default()
        };
        assert!(generate(&none, &catalog())
            .iter()
            .all(|q| !q.module.starts_with("ghost-")));
        let all = QueryProfile {
            unknown_rate: 1.0,
            ..QueryProfile::default()
        };
        assert!(generate(&all, &catalog())
            .iter()
            .all(|q| q.module.starts_with("ghost-")));
    }

    #[test]
    fn bursts_pack_arrivals_tighter_than_the_spread_mode() {
        let p = QueryProfile {
            queries: 500,
            ..QueryProfile::default()
        };
        let stream = generate(&p, &catalog());
        let gaps: Vec<u64> = stream
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .collect();
        let tight = gaps
            .iter()
            .filter(|&&g| g < p.mean_gap.as_nanos() / 10)
            .count();
        assert!(
            tight * 10 >= gaps.len(),
            "expected ≥10% burst gaps, got {tight}/{}",
            gaps.len()
        );
    }
}
