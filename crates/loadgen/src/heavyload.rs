//! HeavyLoad equivalent: saturate guest resources.

use mc_hypervisor::{HvError, Hypervisor, VmId};

/// How hard to push one guest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadProfile {
    /// vCPU cores' worth of CPU burn (HeavyLoad spins all cores: 1.0 per
    /// single-vCPU XP guest).
    pub cpu_cores: f64,
    /// Fraction of guest RAM kept churning (0..=1).
    pub memory_pressure: f64,
    /// Disk stress intensity (0..=1) — queue depth and IO rate scale with
    /// it in the resource monitor.
    pub disk_pressure: f64,
}

impl LoadProfile {
    /// Fully idle guest (background OS activity only).
    pub fn idle() -> Self {
        LoadProfile {
            cpu_cores: 0.02,
            memory_pressure: 0.02,
            disk_pressure: 0.01,
        }
    }

    /// HeavyLoad at full tilt: CPU, RAM and disk all saturated.
    pub fn heavy() -> Self {
        LoadProfile {
            cpu_cores: 1.0,
            memory_pressure: 0.9,
            disk_pressure: 0.8,
        }
    }
}

/// Load controller: applies profiles to guests.
#[derive(Clone, Debug, Default)]
pub struct HeavyLoad {
    applied: Vec<(VmId, LoadProfile)>,
}

impl HeavyLoad {
    /// New controller with nothing applied.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `profile` to each listed VM.
    pub fn start(
        &mut self,
        hv: &mut Hypervisor,
        vms: &[VmId],
        profile: LoadProfile,
    ) -> Result<(), HvError> {
        for &vm in vms {
            hv.vm_mut(vm)?.cpu_demand = profile.cpu_cores;
            self.applied.push((vm, profile));
        }
        Ok(())
    }

    /// Stops all load this controller started (guests back to idle).
    pub fn stop(&mut self, hv: &mut Hypervisor) -> Result<(), HvError> {
        for (vm, _) in self.applied.drain(..) {
            hv.vm_mut(vm)?.cpu_demand = LoadProfile::idle().cpu_cores;
        }
        Ok(())
    }

    /// The profile most recently applied to `vm`, if any.
    pub fn profile_of(&self, vm: VmId) -> Option<LoadProfile> {
        self.applied
            .iter()
            .rev()
            .find(|(v, _)| *v == vm)
            .map(|(_, p)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::AddressWidth;

    #[test]
    fn start_and_stop_drive_contention() {
        let mut hv = Hypervisor::new();
        let vms: Vec<VmId> = (0..12)
            .map(|i| hv.create_vm(&format!("d{i}"), AddressWidth::W32).unwrap())
            .collect();
        let idle_slowdown = hv.dom0_slowdown();

        let mut load = HeavyLoad::new();
        load.start(&mut hv, &vms, LoadProfile::heavy()).unwrap();
        let loaded_slowdown = hv.dom0_slowdown();
        assert!(loaded_slowdown > idle_slowdown * 2.0);
        assert_eq!(load.profile_of(vms[3]), Some(LoadProfile::heavy()));

        load.stop(&mut hv).unwrap();
        let after = hv.dom0_slowdown();
        assert!(after < loaded_slowdown / 2.0);
        assert!(load.profile_of(vms[3]).is_none());
    }

    #[test]
    fn partial_load_affects_only_targets() {
        let mut hv = Hypervisor::new();
        let a = hv.create_vm("a", AddressWidth::W32).unwrap();
        let b = hv.create_vm("b", AddressWidth::W32).unwrap();
        let mut load = HeavyLoad::new();
        load.start(&mut hv, &[a], LoadProfile::heavy()).unwrap();
        assert!(hv.vm(a).unwrap().cpu_demand > 0.9);
        assert!(hv.vm(b).unwrap().cpu_demand < 0.1);
    }
}
