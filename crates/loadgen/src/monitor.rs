//! In-VM resource monitor — the paper's Python recorder behind Figure 9.
//!
//! The recorder sampled the guest's CPU, memory, disk and network state at
//! a fixed rate, shipping ASCII records to remote storage (so the local
//! disk, "an important part of virtual memory analysis", stays untouched).
//! The experiment's point: overlay ModChecker's introspection windows on
//! the timeline and observe *no perturbation* — introspection is agentless.
//!
//! Our guest activity is an analytic model of (load profile × time) with
//! deterministic noise; it does not depend on introspection activity at
//! all, which is the ground truth the real experiment established. The
//! monitor's own reporting adds a small constant network packet rate,
//! visible in the `net_*` series exactly as in the paper's setup.

use mc_hypervisor::{Hypervisor, VmId};

use crate::heavyload::LoadProfile;

/// One sample of guest resource state (the fields the paper's tool
/// recorded).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResourceSample {
    /// Sample time (simulated milliseconds since monitoring start).
    pub t_ms: u64,
    /// CPU idle time percentage.
    pub cpu_idle_pct: f64,
    /// CPU user time percentage.
    pub cpu_user_pct: f64,
    /// CPU privileged (kernel) time percentage.
    pub cpu_privileged_pct: f64,
    /// Free physical memory percentage.
    pub mem_free_physical_pct: f64,
    /// Free virtual memory percentage.
    pub mem_free_virtual_pct: f64,
    /// Page faults per second.
    pub page_faults_per_sec: f64,
    /// Disk queue length.
    pub disk_queue_len: f64,
    /// Disk reads per second.
    pub disk_reads_per_sec: f64,
    /// Disk writes per second.
    pub disk_writes_per_sec: f64,
    /// Network packets sent per second (includes the monitor's own
    /// reporting trickle).
    pub net_packets_sent_per_sec: f64,
    /// Network packets received per second.
    pub net_packets_recv_per_sec: f64,
    /// True while ModChecker was reading this VM's memory (annotation for
    /// the Figure 9 boxes; not an input to the model).
    pub introspection_active: bool,
}

/// A half-open time window `[start_ms, end_ms)` during which introspection
/// ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Window start (ms).
    pub start_ms: u64,
    /// Window end (ms).
    pub end_ms: u64,
}

impl Window {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&t_ms)
    }
}

/// A recorded timeline for one VM.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// Samples in time order.
    pub samples: Vec<ResourceSample>,
    /// The introspection windows that were annotated.
    pub windows: Vec<Window>,
}

impl Timeline {
    /// Mean and standard deviation of a metric over samples selected by
    /// `inside` (true → inside introspection windows).
    pub fn stats(&self, metric: impl Fn(&ResourceSample) -> f64, inside: bool) -> (f64, f64) {
        let values: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.introspection_active == inside)
            .map(&metric)
            .collect();
        if values.is_empty() {
            return (0.0, 0.0);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        (mean, var.sqrt())
    }

    /// The paper's Figure 9 claim, as a predicate: for `metric`, the mean
    /// inside introspection windows deviates from the outside mean by less
    /// than `tolerance` (in the metric's own units).
    pub fn unperturbed(&self, metric: impl Fn(&ResourceSample) -> f64, tolerance: f64) -> bool {
        let (inside, _) = self.stats(&metric, true);
        let (outside, _) = self.stats(&metric, false);
        (inside - outside).abs() < tolerance
    }
}

/// The in-VM resource monitor.
#[derive(Clone, Copy, Debug)]
pub struct ResourceMonitor {
    /// Sampling interval in simulated milliseconds (the paper sampled
    /// continuously; 1 Hz is the plotted granularity).
    pub interval_ms: u64,
}

impl Default for ResourceMonitor {
    fn default() -> Self {
        ResourceMonitor { interval_ms: 1000 }
    }
}

/// Deterministic per-(vm, t, series) noise in `[-1, 1]`.
fn noise(vm: u32, t_ms: u64, series: u32) -> f64 {
    let mut h = (vm as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t_ms)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(series as u64);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    ((h & 0xFFFF) as f64 / 32768.0) - 1.0
}

impl ResourceMonitor {
    /// Records a timeline of `duration_ms` for `vm` under `profile`,
    /// annotating `windows` as introspection-active.
    ///
    /// Guest activity is a function of the profile and time only — the
    /// model encodes the agentless-introspection ground truth. Callers pass
    /// the actual windows their ModChecker run produced.
    pub fn record(
        &self,
        hv: &Hypervisor,
        vm: VmId,
        profile: LoadProfile,
        duration_ms: u64,
        windows: &[Window],
    ) -> Timeline {
        let vm_index = hv.vm(vm).map_or(0, |v| v.id.0);
        let mut samples = Vec::with_capacity((duration_ms / self.interval_ms) as usize + 1);
        let mut t = 0u64;
        while t < duration_ms {
            samples.push(self.sample(vm_index, profile, t, windows));
            t += self.interval_ms;
        }
        Timeline {
            samples,
            windows: windows.to_vec(),
        }
    }

    /// One sample of the activity model.
    fn sample(
        &self,
        vm: u32,
        profile: LoadProfile,
        t_ms: u64,
        windows: &[Window],
    ) -> ResourceSample {
        let cpu_busy = (profile.cpu_cores.min(1.0) * 97.0).max(0.5);
        let user_share = 0.7; // HeavyLoad burns mostly user time
        let n = |series: u32, amp: f64| noise(vm, t_ms, series) * amp;

        let cpu_user = (cpu_busy * user_share + n(1, 1.5)).clamp(0.0, 100.0);
        let cpu_priv = (cpu_busy * (1.0 - user_share) + n(2, 0.8)).clamp(0.0, 100.0);
        let cpu_idle = (100.0 - cpu_user - cpu_priv).clamp(0.0, 100.0);

        let mem_used = 18.0 + profile.memory_pressure * 75.0;
        ResourceSample {
            t_ms,
            cpu_idle_pct: cpu_idle,
            cpu_user_pct: cpu_user,
            cpu_privileged_pct: cpu_priv,
            mem_free_physical_pct: (100.0 - mem_used + n(3, 0.6)).clamp(0.0, 100.0),
            mem_free_virtual_pct: (100.0 - mem_used * 0.6 + n(4, 0.4)).clamp(0.0, 100.0),
            page_faults_per_sec: (15.0 + profile.memory_pressure * 900.0 + n(5, 8.0)).max(0.0),
            disk_queue_len: (profile.disk_pressure * 4.0 + n(6, 0.15)).max(0.0),
            disk_reads_per_sec: (2.0 + profile.disk_pressure * 120.0 + n(7, 2.0)).max(0.0),
            disk_writes_per_sec: (1.0 + profile.disk_pressure * 90.0 + n(8, 2.0)).max(0.0),
            // The monitor ships one ASCII record per interval: a small,
            // constant send rate on top of workload traffic.
            net_packets_sent_per_sec: (1.0 + profile.cpu_cores * 5.0 + n(9, 0.3)).max(0.0),
            net_packets_recv_per_sec: (0.5 + profile.cpu_cores * 4.0 + n(10, 0.3)).max(0.0),
            introspection_active: windows.iter().any(|w| w.contains(t_ms)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::AddressWidth;

    fn setup() -> (Hypervisor, VmId) {
        let mut hv = Hypervisor::new();
        let vm = hv.create_vm("dom1", AddressWidth::W32).unwrap();
        (hv, vm)
    }

    fn windows() -> Vec<Window> {
        vec![
            Window {
                start_ms: 30_000,
                end_ms: 36_000,
            },
            Window {
                start_ms: 80_000,
                end_ms: 86_000,
            },
        ]
    }

    #[test]
    fn idle_guest_is_mostly_idle() {
        let (hv, vm) = setup();
        let tl = ResourceMonitor::default().record(&hv, vm, LoadProfile::idle(), 120_000, &[]);
        let (idle_mean, _) = tl.stats(|s| s.cpu_idle_pct, false);
        assert!(idle_mean > 95.0, "idle mean {idle_mean}");
        assert_eq!(tl.samples.len(), 120);
    }

    #[test]
    fn heavy_guest_is_busy() {
        let (hv, vm) = setup();
        let tl = ResourceMonitor::default().record(&hv, vm, LoadProfile::heavy(), 60_000, &[]);
        let (idle_mean, _) = tl.stats(|s| s.cpu_idle_pct, false);
        assert!(idle_mean < 10.0, "heavy idle mean {idle_mean}");
        let (pf, _) = tl.stats(|s| s.page_faults_per_sec, false);
        assert!(pf > 500.0);
    }

    #[test]
    fn introspection_windows_are_annotated() {
        let (hv, vm) = setup();
        let tl =
            ResourceMonitor::default().record(&hv, vm, LoadProfile::idle(), 120_000, &windows());
        let active = tl.samples.iter().filter(|s| s.introspection_active).count();
        assert_eq!(active, 12, "two 6-second windows at 1 Hz");
    }

    #[test]
    fn figure9_no_perturbation_during_introspection() {
        let (hv, vm) = setup();
        let tl =
            ResourceMonitor::default().record(&hv, vm, LoadProfile::idle(), 300_000, &windows());
        assert!(tl.unperturbed(|s| s.cpu_idle_pct, 1.5));
        assert!(tl.unperturbed(|s| s.cpu_privileged_pct, 1.0));
        assert!(tl.unperturbed(|s| s.mem_free_physical_pct, 1.0));
        assert!(tl.unperturbed(|s| s.page_faults_per_sec, 10.0));
        assert!(tl.unperturbed(|s| s.net_packets_sent_per_sec, 1.0));
    }

    #[test]
    fn noise_is_deterministic() {
        let (hv, vm) = setup();
        let m = ResourceMonitor::default();
        let a = m.record(&hv, vm, LoadProfile::idle(), 30_000, &[]);
        let b = m.record(&hv, vm, LoadProfile::idle(), 30_000, &[]);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn window_bounds_are_half_open() {
        let w = Window {
            start_ms: 1000,
            end_ms: 2000,
        };
        assert!(!w.contains(999));
        assert!(w.contains(1000));
        assert!(w.contains(1999));
        assert!(!w.contains(2000));
    }

    #[test]
    fn stats_with_no_matching_samples_are_zero() {
        let (hv, vm) = setup();
        // No windows → no introspection-active samples.
        let tl = ResourceMonitor::default().record(&hv, vm, LoadProfile::idle(), 10_000, &[]);
        let (mean, sd) = tl.stats(|s| s.cpu_idle_pct, true);
        assert_eq!((mean, sd), (0.0, 0.0));
    }

    #[test]
    fn heavy_load_perturbs_relative_to_idle_baseline() {
        // Sanity that `unperturbed` can fail: comparing a heavy timeline's
        // inside-window samples against an idle profile would show a gap.
        let (hv, vm) = setup();
        let idle = ResourceMonitor::default().record(&hv, vm, LoadProfile::idle(), 60_000, &[]);
        let heavy = ResourceMonitor::default().record(&hv, vm, LoadProfile::heavy(), 60_000, &[]);
        let (idle_mean, _) = idle.stats(|s| s.cpu_idle_pct, false);
        let (heavy_mean, _) = heavy.stats(|s| s.cpu_idle_pct, false);
        assert!(idle_mean - heavy_mean > 50.0);
    }

    #[test]
    fn cpu_shares_sum_to_one_hundred() {
        let (hv, vm) = setup();
        let tl = ResourceMonitor::default().record(&hv, vm, LoadProfile::heavy(), 30_000, &[]);
        for s in &tl.samples {
            let sum = s.cpu_idle_pct + s.cpu_user_pct + s.cpu_privileged_pct;
            assert!((sum - 100.0).abs() < 1e-6 || sum < 100.0 + 1e-6);
        }
    }
}
