//! Guest load generation and in-VM resource monitoring.
//!
//! Two tools from the paper's runtime study (§V.C):
//!
//! * [`heavyload`] — the paper stressed guests with *HeavyLoad*, "capable
//!   of stressing all the resources (such as CPU, RAM and disk)". Our
//!   equivalent drives each VM's `cpu_demand` (feeding the hypervisor's
//!   contention model, which produces Figure 8's nonlinear knee) and tracks
//!   memory/disk pressure for the resource monitor.
//! * [`monitor`] — the paper's "light-weight tool in Python" that ran
//!   inside a guest, continuously recording CPU state (idle/privileged/user
//!   time), memory state (free physical/virtual, page faults), disk state
//!   (queue length, read/write rate) and network state (packets sent/
//!   received), shipping samples to remote storage. Figure 9 overlays the
//!   introspection windows on those timelines and observes no perturbation.
//!   Our monitor samples an analytic guest-activity model with
//!   deterministic noise; because introspection is agentless, the model is
//!   — correctly — independent of ModChecker's memory accesses, except for
//!   the monitor's own constant network trickle.
//!
//! A third generator, [`queries`], is ours rather than the paper's: a
//! seeded open-loop stream of attestation queries that drives the
//! `mc-serve` daemon's admission-control and backpressure paths.

#![warn(missing_docs)]

pub mod heavyload;
pub mod monitor;
pub mod queries;

pub use heavyload::{HeavyLoad, LoadProfile};
pub use monitor::{ResourceMonitor, ResourceSample, Timeline, Window};
pub use queries::{generate, QueryProfile};
