//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index) and prints:
//!
//! 1. a CSV block (machine-readable series, one row per data point), and
//! 2. a human-readable summary asserting the *shape* claims the paper
//!    makes (linearity, knee position, no-perturbation), since absolute
//!    numbers from a 2012 Xen testbed are not reproducible.

use std::fmt::Display;

/// Prints a CSV header + rows to stdout between `BEGIN CSV`/`END CSV`
/// markers so downstream tooling can extract the series.
pub fn print_csv<R: Display>(title: &str, header: &str, rows: &[R]) {
    println!("BEGIN CSV {title}");
    println!("{header}");
    for r in rows {
        println!("{r}");
    }
    println!("END CSV {title}");
}

/// Least-squares linear fit; returns `(slope, intercept, r2)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

/// Detects the knee of a curve: the first x at which the local slope
/// exceeds `factor` × the median slope of the preceding points. Returns
/// `None` for (near-)linear curves.
pub fn knee_position(points: &[(f64, f64)], factor: f64) -> Option<f64> {
    if points.len() < 4 {
        return None;
    }
    let slopes: Vec<(f64, f64)> = points
        .windows(2)
        .map(|w| (w[1].0, (w[1].1 - w[0].1) / (w[1].0 - w[0].0)))
        .collect();
    for i in 2..slopes.len() {
        let mut prior: Vec<f64> = slopes[..i].iter().map(|s| s.1).collect();
        prior.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
        let median = prior[prior.len() / 2];
        if median > 0.0 && slopes[i].1 > factor * median {
            return Some(slopes[i].0);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let (m, b, r2) = linear_fit(&pts);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn knee_found_in_piecewise_curve() {
        // Linear until x=8, then quadratic growth.
        let pts: Vec<(f64, f64)> = (2..=15)
            .map(|i| {
                let x = i as f64;
                let y = if x <= 8.0 {
                    x
                } else {
                    x + (x - 8.0).powi(2) * 4.0
                };
                (x, y)
            })
            .collect();
        let knee = knee_position(&pts, 3.0).expect("knee exists");
        assert!((8.0..=11.0).contains(&knee), "knee at {knee}");
    }

    #[test]
    fn no_knee_in_linear_curve() {
        let pts: Vec<(f64, f64)> = (2..=15).map(|i| (i as f64, 2.5 * i as f64)).collect();
        assert_eq!(knee_position(&pts, 3.0), None);
    }
}
