//! FIG-9 — "Inside virtual machine — CPU and memory impact of ModChecker."
//!
//! The paper keeps a guest idle, records its resource state continuously
//! with an in-VM tool, runs ModChecker several times, and overlays the
//! introspection windows on the timelines: "the graphs depict no
//! significant perturbation during the time span when memory was accessed
//! by ModChecker."
//!
//! This binary reproduces the protocol: a 5-minute idle-guest timeline at
//! 1 Hz, with real ModChecker runs supplying the introspection windows
//! (window length = the run's simulated duration). It prints the CPU and
//! memory series the paper plots and verifies the no-perturbation claim
//! statistically (inside-window means within noise of outside-window
//! means).

use mc_bench::print_csv;
use mc_loadgen::{LoadProfile, ResourceMonitor, Window};
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

struct Row {
    t_s: u64,
    cpu_idle: f64,
    cpu_user: f64,
    cpu_priv: f64,
    mem_free: f64,
    page_faults: f64,
    introspecting: u8,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{}",
            self.t_s,
            self.cpu_idle,
            self.cpu_user,
            self.cpu_priv,
            self.mem_free,
            self.page_faults,
            self.introspecting
        )
    }
}

fn main() {
    let bed = Testbed::cloud(5);
    let checker = ModChecker::new();
    let observed = bed.vm_ids[0];

    // Run ModChecker at t = 60s, 150s, 240s; each run's simulated duration
    // defines its introspection window on the observed VM.
    let duration_ms = 300_000u64;
    let mut windows = Vec::new();
    for start_s in [60u64, 150, 240] {
        let report = checker
            .check_one(&bed.hv, observed, &bed.vm_ids[1..], "http.sys")
            .expect("check");
        let span_ms = (report.times.total().as_nanos() / 1_000_000).max(1_000);
        windows.push(Window {
            start_ms: start_s * 1000,
            end_ms: start_s * 1000 + span_ms,
        });
    }

    let timeline = ResourceMonitor::default().record(
        &bed.hv,
        observed,
        LoadProfile::idle(),
        duration_ms,
        &windows,
    );

    let rows: Vec<Row> = timeline
        .samples
        .iter()
        .map(|s| Row {
            t_s: s.t_ms / 1000,
            cpu_idle: s.cpu_idle_pct,
            cpu_user: s.cpu_user_pct,
            cpu_priv: s.cpu_privileged_pct,
            mem_free: s.mem_free_physical_pct,
            page_faults: s.page_faults_per_sec,
            introspecting: s.introspection_active as u8,
        })
        .collect();
    print_csv(
        "fig9_guest_impact",
        "t_s,cpu_idle_pct,cpu_user_pct,cpu_priv_pct,mem_free_pct,page_faults_per_s,introspection_active",
        &rows,
    );

    println!("\nFIG-9 introspection windows (simulated):");
    for w in &timeline.windows {
        println!(
            "  [{:.1}s, {:.1}s)",
            w.start_ms as f64 / 1e3,
            w.end_ms as f64 / 1e3
        );
    }

    println!("\nFIG-9 perturbation analysis (inside vs outside windows):");
    type Metric = fn(&mc_loadgen::ResourceSample) -> f64;
    let metrics: [(&str, Metric, f64); 5] = [
        ("cpu_idle_pct", |s| s.cpu_idle_pct, 1.5),
        ("cpu_privileged_pct", |s| s.cpu_privileged_pct, 1.0),
        ("mem_free_physical_pct", |s| s.mem_free_physical_pct, 1.0),
        ("page_faults_per_sec", |s| s.page_faults_per_sec, 10.0),
        (
            "net_packets_sent_per_sec",
            |s| s.net_packets_sent_per_sec,
            1.0,
        ),
    ];
    for (name, metric, tolerance) in metrics {
        let (inside, _) = timeline.stats(metric, true);
        let (outside, sd) = timeline.stats(metric, false);
        let ok = timeline.unperturbed(metric, tolerance);
        println!(
            "  {name:<26} inside {inside:>8.2}  outside {outside:>8.2} (σ {sd:.2})  Δ {:+.2}  {}",
            inside - outside,
            if ok {
                "no perturbation ✓"
            } else {
                "PERTURBED ✗"
            }
        );
        assert!(ok, "{name} perturbed during introspection");
    }

    println!(
        "\nFIG-9 reproduced: no significant in-guest perturbation while ModChecker reads memory."
    );
}
