//! FIG-8 — "Runtime performance of ModChecker (and its components) on
//! different number of VMs when they are exhaustively using their
//! resources."
//!
//! Same sweep as FIG-7 but every guest in the pool runs the
//! HeavyLoad-equivalent stressor. The paper's observation: runtime grows
//! roughly linearly until the number of heavily loaded VMs exceeds the
//! host's virtual cores (8 on the paper's hyper-threaded quad-core i7),
//! then grows *nonlinearly*.
//!
//! Shape claims verified: the loaded curve has a knee; the knee falls at
//! N within [cores−1, cores+3]; below the knee the loaded/idle ratio is
//! modest, above it it blows up.
//!
//! `--fault-rate <0..0.3> [--fault-seed <SEED>]` repeats the loaded sweep
//! with deterministic transient read faults injected into every VM. The
//! chaos claim: retries add a bounded, roughly constant factor — the
//! curve keeps its linear-then-knee shape and the faulted/fault-free
//! ratio stays small at every N.

use mc_bench::{knee_position, print_csv};
use mc_hypervisor::FaultPlan;
use mc_loadgen::{HeavyLoad, LoadProfile};
use mc_obs::MetricsRegistry;
use modchecker::{record_module_report, ModChecker};
use modchecker_repro::testbed::Testbed;

struct Row {
    n: usize,
    searcher_ms: f64,
    parser_ms: f64,
    checker_ms: f64,
    total_ms: f64,
    idle_total_ms: f64,
    faulted_total_ms: Option<f64>,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            self.n,
            self.searcher_ms,
            self.parser_ms,
            self.checker_ms,
            self.total_ms,
            self.idle_total_ms
        )?;
        if let Some(ft) = self.faulted_total_ms {
            write!(f, ",{ft:.3}")?;
        }
        Ok(())
    }
}

/// `--key value` as f64, or `default`.
fn arg_f64(key: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} expects a number, got {v:?}"))
        })
        .unwrap_or(default)
}

fn main() {
    let module = "http.sys";
    let fault_rate = arg_f64("--fault-rate", 0.0);
    let fault_seed = arg_f64("--fault-seed", 42.0) as u64;
    assert!(
        (0.0..0.3).contains(&fault_rate),
        "--fault-rate must be in [0, 0.3)"
    );
    let mut bed = Testbed::cloud(15);
    let cores = bed.hv.host.virtual_cores as f64;
    let checker = ModChecker::new();

    // Every scan in the sweep is recorded into one shared registry; the
    // row timings are read back from the last-scan gauges, and the
    // cumulative counters summarize the whole figure's introspection work.
    let mut metrics = MetricsRegistry::new();
    let mut rows = Vec::new();
    for n in 2..=15usize {
        let ids: Vec<_> = bed.vm_ids[..n].to_vec();

        let idle = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("idle check");
        record_module_report(&idle, &mut metrics);
        let idle_total_ms = metrics
            .gauge("scan_total_ms")
            .expect("idle scan recorded a total gauge");

        let mut load = HeavyLoad::new();
        load.start(&mut bed.hv, &ids, LoadProfile::heavy())
            .expect("start load");
        let loaded = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("loaded check");
        record_module_report(&loaded, &mut metrics);
        let row = Row {
            n,
            searcher_ms: metrics
                .gauge("scan_searcher_ms")
                .expect("loaded scan recorded a searcher gauge"),
            parser_ms: metrics
                .gauge("scan_parser_ms")
                .expect("loaded scan recorded a parser gauge"),
            checker_ms: metrics
                .gauge("scan_checker_ms")
                .expect("loaded scan recorded a checker gauge"),
            total_ms: metrics
                .gauge("scan_total_ms")
                .expect("loaded scan recorded a total gauge"),
            idle_total_ms,
            faulted_total_ms: None,
        };
        let faulted_total_ms = if fault_rate > 0.0 {
            bed.hv
                .inject_fault_plan(FaultPlan::transient(fault_seed, fault_rate));
            let faulted = checker
                .check_one(&bed.hv, ids[0], &ids[1..], module)
                .expect("faulted check");
            for &id in &bed.vm_ids {
                bed.hv.set_fault_plan(id, None).expect("clear fault plan");
            }
            record_module_report(&faulted, &mut metrics);
            Some(
                metrics
                    .gauge("scan_total_ms")
                    .expect("faulted scan recorded a total gauge"),
            )
        } else {
            None
        };
        load.stop(&mut bed.hv).expect("stop load");

        rows.push(Row {
            faulted_total_ms,
            ..row
        });
    }

    let header = if fault_rate > 0.0 {
        "vms,searcher_ms,parser_ms,checker_ms,total_ms,idle_total_ms,faulted_total_ms"
    } else {
        "vms,searcher_ms,parser_ms,checker_ms,total_ms,idle_total_ms"
    };
    print_csv("fig8_runtime_loaded", header, &rows);

    // Shape verification — on the faulted curve when chaos is on: the
    // fault layer must not change the figure's story.
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.n as f64, r.faulted_total_ms.unwrap_or(r.total_ms)))
        .collect();
    let knee = knee_position(&pts, 3.0).expect("loaded curve must have a knee");
    println!("\nFIG-8 shape checks (paper: nonlinear growth past the core count):");
    println!("  host virtual cores: {cores}");
    println!("  detected knee at N = {knee}");
    assert!(
        (cores - 1.0..=cores + 3.0).contains(&knee),
        "knee {knee} not near the core count {cores}"
    );

    let below = &rows[3]; // N=5, well under the cores
    let above = rows.last().expect("rows nonempty"); // N=15
    let ratio_below = below.total_ms / below.idle_total_ms;
    let ratio_above = above.total_ms / above.idle_total_ms;
    println!("  loaded/idle ratio at N=5:  {ratio_below:.2}x");
    println!("  loaded/idle ratio at N=15: {ratio_above:.2}x");
    assert!(ratio_below < 2.0, "pre-knee slowdown should be modest");
    assert!(ratio_above > 4.0, "post-knee slowdown should be severe");

    if fault_rate > 0.0 {
        // Chaos costs a bounded constant factor, not a new growth regime:
        // with a fault plan attached every bulk page read is double-read
        // (torn-page detection), which at most doubles the searcher, and
        // retries/backoff add a term proportional to the fault rate.
        let bound = 2.0 + 12.0 * fault_rate;
        let worst = rows
            .iter()
            .map(|r| r.faulted_total_ms.expect("chaos rows") / r.total_ms)
            .fold(0.0f64, f64::max);
        println!(
            "  worst faulted/fault-free ratio: {worst:.3}x (bound {bound:.3}x at rate {fault_rate})"
        );
        assert!(
            worst < bound,
            "chaos overhead {worst:.3}x exceeds the bounded factor {bound:.3}x"
        );
    }

    // Cross-check the cumulative counters against what the sweep ran:
    // 14 pool sizes, two scans each (idle + loaded), plus one faulted
    // scan per size when chaos is on — all clean verdicts.
    let scans_per_n: u64 = if fault_rate > 0.0 { 3 } else { 2 };
    assert_eq!(metrics.counter("scan_rounds_total"), 14 * scans_per_n);
    assert_eq!(metrics.counter("scan_verdict_suspect_total"), 0);
    println!(
        "\n  registry totals: {} scans, {} VMI reads, {} pages mapped, {} retries, {} fault injections",
        metrics.counter("scan_rounds_total"),
        metrics.counter("vmi_reads_total"),
        metrics.counter("vmi_pages_mapped_total"),
        metrics.counter("vmi_retries_total"),
        metrics.counter("hv_fault_injections_total"),
    );

    println!("\nFIG-8 reproduced: nonlinear growth once loaded VMs exceed the virtual cores.");
}
