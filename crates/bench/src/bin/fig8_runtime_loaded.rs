//! FIG-8 — "Runtime performance of ModChecker (and its components) on
//! different number of VMs when they are exhaustively using their
//! resources."
//!
//! Same sweep as FIG-7 but every guest in the pool runs the
//! HeavyLoad-equivalent stressor. The paper's observation: runtime grows
//! roughly linearly until the number of heavily loaded VMs exceeds the
//! host's virtual cores (8 on the paper's hyper-threaded quad-core i7),
//! then grows *nonlinearly*.
//!
//! Shape claims verified: the loaded curve has a knee; the knee falls at
//! N within [cores−1, cores+3]; below the knee the loaded/idle ratio is
//! modest, above it it blows up.

use mc_bench::{knee_position, print_csv};
use mc_loadgen::{HeavyLoad, LoadProfile};
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

struct Row {
    n: usize,
    searcher_ms: f64,
    parser_ms: f64,
    checker_ms: f64,
    total_ms: f64,
    idle_total_ms: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            self.n,
            self.searcher_ms,
            self.parser_ms,
            self.checker_ms,
            self.total_ms,
            self.idle_total_ms
        )
    }
}

fn main() {
    let module = "http.sys";
    let mut bed = Testbed::cloud(15);
    let cores = bed.hv.host.virtual_cores as f64;
    let checker = ModChecker::new();

    let mut rows = Vec::new();
    for n in 2..=15usize {
        let ids: Vec<_> = bed.vm_ids[..n].to_vec();

        let idle = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("idle check");

        let mut load = HeavyLoad::new();
        load.start(&mut bed.hv, &ids, LoadProfile::heavy())
            .expect("start load");
        let loaded = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("loaded check");
        load.stop(&mut bed.hv).expect("stop load");

        rows.push(Row {
            n,
            searcher_ms: loaded.times.searcher.as_millis_f64(),
            parser_ms: loaded.times.parser.as_millis_f64(),
            checker_ms: loaded.times.checker.as_millis_f64(),
            total_ms: loaded.times.total().as_millis_f64(),
            idle_total_ms: idle.times.total().as_millis_f64(),
        });
    }

    print_csv(
        "fig8_runtime_loaded",
        "vms,searcher_ms,parser_ms,checker_ms,total_ms,idle_total_ms",
        &rows,
    );

    // Shape verification.
    let pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.n as f64, r.total_ms)).collect();
    let knee = knee_position(&pts, 3.0).expect("loaded curve must have a knee");
    println!("\nFIG-8 shape checks (paper: nonlinear growth past the core count):");
    println!("  host virtual cores: {cores}");
    println!("  detected knee at N = {knee}");
    assert!(
        (cores - 1.0..=cores + 3.0).contains(&knee),
        "knee {knee} not near the core count {cores}"
    );

    let below = &rows[3]; // N=5, well under the cores
    let above = rows.last().expect("rows nonempty"); // N=15
    let ratio_below = below.total_ms / below.idle_total_ms;
    let ratio_above = above.total_ms / above.idle_total_ms;
    println!("  loaded/idle ratio at N=5:  {ratio_below:.2}x");
    println!("  loaded/idle ratio at N=15: {ratio_above:.2}x");
    assert!(ratio_below < 2.0, "pre-knee slowdown should be modest");
    assert!(ratio_above > 4.0, "post-knee slowdown should be severe");

    println!("\nFIG-8 reproduced: nonlinear growth once loaded VMs exceed the virtual cores.");
}
