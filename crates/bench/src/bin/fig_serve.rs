//! FIG-SERVE — attestation daemon under a fault-rate sweep.
//!
//! Builds one clean multi-pool cloud per fault rate, drives the
//! `AttestServer` with the same seeded open-loop query stream, and reads
//! back sustained answer rate, latency percentiles, staleness, and the
//! answered/degraded/shed mix. Real wall-clock is irrelevant — the daemon
//! runs on the simulated clock, so the numbers are exact and
//! deterministic, and the figure doubles as a regression gate.
//!
//! Shape claims verified:
//! * every query gets a typed answer or a typed rejection — answered +
//!   rejected equals the stream length at every fault rate (the
//!   no-silent-drop invariant);
//! * the report is byte-identical across execution knobs (shards ×
//!   max-inflight) at every fault rate — the serve determinism contract;
//! * p99 staleness stays bounded by the refresh cadence: degraded-answer
//!   serving never hands out state older than a few refresh intervals;
//! * answers degrade monotonically in aggregate: the fresh-answer count
//!   at the highest fault rate does not exceed the fault-free count.
//!
//! Emits the sweep as `BENCH_serve.json` (`--out <PATH>` overrides)
//! alongside the usual CSV block.

use mc_bench::print_csv;
use mc_hypervisor::FaultPlan;
use mc_loadgen::QueryProfile;
use modchecker::{AttestServer, Confidence, FleetConfig, ServeConfig, ServeReport};
use modchecker_repro::fleetgen::uniform_fleet;

struct Row {
    fault_rate: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p99_staleness_ms: f64,
    fresh: usize,
    stale: usize,
    unscannable: usize,
    rejected: usize,
    rescans: usize,
    quarantined: usize,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2},{:.1},{:.3},{:.3},{:.3},{},{},{},{},{},{}",
            self.fault_rate,
            self.qps,
            self.p50_ms,
            self.p99_ms,
            self.p99_staleness_ms,
            self.fresh,
            self.stale,
            self.unscannable,
            self.rejected,
            self.rescans,
            self.quarantined
        )
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// One daemon run at the given fault rate and execution knobs. A fresh
/// cloud per run keeps runs independent; everything is seeded, so the
/// same arguments always produce the same report.
fn run(
    pools: usize,
    queries: usize,
    fault_rate: f64,
    shards: usize,
    inflight: usize,
) -> ServeReport {
    let mut bed = uniform_fleet(pools, 3, 2, 1);
    if fault_rate > 0.0 {
        bed.hv
            .inject_fault_plan(FaultPlan::transient(11, fault_rate));
    }
    let catalog: Vec<(String, String)> = bed
        .truth
        .consensus
        .iter()
        .flat_map(|(pool, modules)| modules.iter().map(move |m| (pool.clone(), m.clone())))
        .collect();
    let profile = QueryProfile {
        queries,
        ..QueryProfile::default()
    };
    let stream = mc_loadgen::generate(&profile, &catalog);
    let config = ServeConfig {
        fleet: FleetConfig {
            shards,
            max_inflight_per_vm: inflight,
            ..FleetConfig::default()
        },
        ..ServeConfig::default()
    };
    AttestServer::new(config).run(&bed.hv, &bed.fleet, &stream)
}

fn main() {
    let smoke = flag("--smoke");
    let out = arg_str("--out", "BENCH_serve.json");
    let (pools, queries) = if smoke { (2, 150) } else { (4, 600) };
    let rates: &[f64] = if smoke {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.05, 0.15, 0.3]
    };
    // The staleness bound the daemon is expected to hold: state served to
    // any verdict-carrying answer is younger than a few refresh cadences
    // even while faults stretch the sweeps.
    let staleness_bound_ms = ServeConfig::default().refresh_interval.as_millis_f64() * 3.0;

    let mut rows = Vec::new();
    for &rate in rates {
        let report = run(pools, queries, rate, 1, 1);

        // Determinism contract: execution knobs must not change a byte.
        let rendered = serde_json::to_string_pretty(&report.to_json()).expect("serializes");
        for &(shards, inflight) in &[(4usize, 2usize), (8, 4)] {
            let other = run(pools, queries, rate, shards, inflight);
            let other_rendered =
                serde_json::to_string_pretty(&other.to_json()).expect("serializes");
            assert_eq!(
                rendered, other_rendered,
                "rate={rate}: shards={shards}/inflight={inflight} changed the report bytes"
            );
        }

        // No silent drops: the typed outcomes partition the stream.
        assert_eq!(
            report.answered() + report.rejected(),
            queries,
            "rate={rate}: some query has no typed outcome"
        );

        let ms = |d: Option<mc_hypervisor::SimDuration>| d.map_or(0.0, |d| d.as_millis_f64());
        rows.push(Row {
            fault_rate: rate,
            qps: report.answered_per_sec(),
            p50_ms: ms(report.latency_percentile(50.0)),
            p99_ms: ms(report.latency_percentile(99.0)),
            p99_staleness_ms: ms(report.staleness_percentile(99.0)),
            fresh: report.answered_at(Confidence::Fresh),
            stale: report.answered_at(Confidence::Stale),
            unscannable: report.answered_at(Confidence::Unscannable),
            rejected: report.rejected(),
            rescans: report.rescans,
            quarantined: report.quarantined_vms.len(),
        });
    }

    print_csv(
        "fig_serve",
        "fault_rate,qps,p50_ms,p99_ms,p99_staleness_ms,fresh,stale,unscannable,rejected,rescans,quarantined",
        &rows,
    );

    let json = serde_json::json!({
        "figure": "fig_serve",
        "smoke": smoke,
        "pools": pools,
        "queries": queries,
        "staleness_bound_ms": staleness_bound_ms,
        "rows": rows.iter().map(|r| serde_json::json!({
            "fault_rate": r.fault_rate,
            "qps": r.qps,
            "p50_ms": r.p50_ms,
            "p99_ms": r.p99_ms,
            "p99_staleness_ms": r.p99_staleness_ms,
            "fresh": r.fresh,
            "stale": r.stale,
            "unscannable": r.unscannable,
            "rejected": r.rejected,
            "rescans": r.rescans,
            "quarantined": r.quarantined,
        })).collect::<Vec<_>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render BENCH_serve.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH_serve.json");
    println!("\nwrote {out}");

    println!("\nFIG-SERVE shape checks:");
    for r in &rows {
        println!(
            "  rate {:.2}: {:.1} answers/s, p99 {:.3} ms, staleness p99 {:.3} ms (bound {staleness_bound_ms:.1} ms)",
            r.fault_rate, r.qps, r.p99_ms, r.p99_staleness_ms
        );
        assert!(
            r.p99_staleness_ms <= staleness_bound_ms,
            "rate {:.2}: p99 staleness {:.3} ms exceeds the {staleness_bound_ms:.1} ms bound",
            r.fault_rate,
            r.p99_staleness_ms
        );
        assert!(
            r.fresh > 0,
            "rate {:.2}: no fresh answers at all",
            r.fault_rate
        );
    }
    let (first, last) = (rows.first().expect("rows"), rows.last().expect("rows"));
    assert!(
        last.fresh <= first.fresh,
        "fresh answers grew under faults: {} at rate {:.2} vs {} fault-free",
        last.fresh,
        last.fault_rate,
        first.fresh
    );

    println!("\nFIG-SERVE reproduced: typed outcomes for every query, bounded staleness, bytes stable across workers.");
}
