//! EXP-B1..B4 — the integrity-checking experiments of §V.B, as a
//! paper-vs-measured table.
//!
//! For each technique the harness builds a 15-VM cloud (the paper's scale)
//! with one infected VM, runs ModChecker, and reports the flagged part set
//! next to the set the paper states. The run fails loudly if any technique
//! is missed or over-flagged.
//!
//! Pass `--worm` to additionally run the §III majority-infection scenario.

use mc_attacks::{worm, Technique};
use modchecker::ModChecker;
use modchecker_repro::testbed::Testbed;

fn main() {
    let run_worm = std::env::args().any(|a| a == "--worm");
    let checker = ModChecker::new();
    let victim = 7usize; // dom8

    println!("EXP-B1..B4: detection matrix at the paper's 15-VM scale\n");
    println!(
        "{:<42} {:<16} {:<9} flagged parts (= paper's set)",
        "technique", "module", "detected"
    );

    for technique in Technique::ALL {
        let infection = technique.infection();
        let module = infection.target_module().to_string();
        let (bed, expected) =
            Testbed::infected_cloud(15, technique, &[victim]).expect("infection applies");

        let report = checker
            .check_pool(&bed.hv, &bed.vm_ids, &module)
            .expect("pool check");
        let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
        let detected = suspects == vec!["dom8".to_string()];
        let flagged = report
            .suspects()
            .next()
            .map(|v| v.suspect_parts.clone())
            .unwrap_or_default();

        let parts: Vec<String> = flagged.iter().map(|p| p.to_string()).collect();
        println!(
            "{:<42} {:<16} {:<9} {}",
            technique.to_string(),
            module,
            if detected { "yes" } else { "NO" },
            parts.join(", ")
        );
        assert!(detected, "{technique}: wrong suspects {suspects:?}");
        assert_eq!(
            flagged, expected,
            "{technique}: flag set differs from paper"
        );
    }

    println!("\nall four techniques detected with paper-exact mismatch sets.");

    if run_worm {
        println!("\n--worm: majority infection (§III discussion)");
        let mut bed = Testbed::cloud(15);
        let bp = mc_pe::corpus::standard_corpus(bed.width)
            .into_iter()
            .find(|b| b.name == "hal.dll")
            .expect("hal.dll in corpus");
        let infection = Technique::InlineHook.infection();
        let victims =
            worm::infect_fraction(&mut bed.hv, &bed.guests, &*infection, &bp.generate(), 0.6)
                .expect("worm applies");
        println!("  infected {} of 15 VMs", victims.len());

        let report = checker
            .check_pool(&bed.hv, &bed.vm_ids, "hal.dll")
            .expect("pool check");
        let flagged: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
        println!("  majority vote now favors the worm; flagged: {flagged:?}");
        println!(
            "  pool-wide discrepancy signal: {}",
            report.any_discrepancy()
        );
        assert!(report.any_discrepancy());
        println!("  as the paper argues: the discrepancy survives even when the vote fails.");
    }
}
