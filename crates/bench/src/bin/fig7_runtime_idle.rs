//! FIG-7 — "Runtime performance of ModChecker (and its components) on
//! different number of VMs when they are mostly idle."
//!
//! Regenerates the figure's series: total runtime plus the Module-Searcher
//! / Module-Parser / Integrity-Checker split, checking `http.sys` (the
//! module the paper uses) from dom1 against N−1 peers for N = 2..15.
//!
//! Shape claims verified: all four series grow linearly in N (R² ≥ 0.99)
//! and Module-Searcher dominates at every point.
//!
//! Pass `--parallel` to additionally print the ABL-1 series (idealized
//! parallel wall-clock for 2/4/8 Dom0 workers), and `--cache` for the
//! ABL-5 series (libVMI-style page-map cache vs the paper's uncached
//! prototype).

use mc_bench::{linear_fit, print_csv};
use modchecker::{CheckConfig, ModChecker};
use modchecker_repro::testbed::Testbed;

struct Row {
    n: usize,
    searcher_ms: f64,
    parser_ms: f64,
    checker_ms: f64,
    total_ms: f64,
    par2_ms: f64,
    par4_ms: f64,
    par8_ms: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
            self.n,
            self.searcher_ms,
            self.parser_ms,
            self.checker_ms,
            self.total_ms,
            self.par2_ms,
            self.par4_ms,
            self.par8_ms
        )
    }
}

fn main() {
    let parallel = std::env::args().any(|a| a == "--parallel");
    let module = "http.sys";
    let bed = Testbed::cloud(15);
    let checker = ModChecker::new();

    let mut rows = Vec::new();
    for n in 2..=15usize {
        let ids = &bed.vm_ids[..n];
        let report = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .unwrap_or_else(|e| panic!("check at N={n}: {e}"));
        rows.push(Row {
            n,
            searcher_ms: report.times.searcher.as_millis_f64(),
            parser_ms: report.times.parser.as_millis_f64(),
            checker_ms: report.times.checker.as_millis_f64(),
            total_ms: report.times.total().as_millis_f64(),
            par2_ms: report.simulated_wall_parallel(2).as_millis_f64(),
            par4_ms: report.simulated_wall_parallel(4).as_millis_f64(),
            par8_ms: report.simulated_wall_parallel(8).as_millis_f64(),
        });
    }

    print_csv(
        "fig7_runtime_idle",
        "vms,searcher_ms,parser_ms,checker_ms,total_ms,parallel2_ms,parallel4_ms,parallel8_ms",
        &rows,
    );

    // Shape verification.
    println!("\nFIG-7 shape checks (paper: linear growth, searcher dominates):");
    for (name, series) in [
        ("total", rows.iter().map(|r| r.total_ms).collect::<Vec<_>>()),
        ("searcher", rows.iter().map(|r| r.searcher_ms).collect()),
        ("parser", rows.iter().map(|r| r.parser_ms).collect()),
        ("checker", rows.iter().map(|r| r.checker_ms).collect()),
    ] {
        let pts: Vec<(f64, f64)> = rows.iter().map(|r| r.n as f64).zip(series).collect();
        let (slope, _, r2) = linear_fit(&pts);
        println!("  {name:<9} slope {slope:>8.3} ms/VM, R² = {r2:.5}");
        assert!(r2 > 0.99, "{name} series is not linear (R² {r2})");
    }
    for r in &rows {
        assert!(
            r.searcher_ms > r.parser_ms && r.searcher_ms > r.checker_ms,
            "searcher must dominate at N={}",
            r.n
        );
    }
    println!("  searcher dominates at every N ✓");

    if parallel {
        let last = rows.last().expect("rows nonempty");
        println!("\nABL-1 parallel scan at N=15:");
        println!(
            "  sequential {:.1} ms → x2 {:.1} ms, x4 {:.1} ms, x8 {:.1} ms",
            last.total_ms, last.par2_ms, last.par4_ms, last.par8_ms
        );
        assert!(last.par8_ms < last.total_ms / 3.0);
    }

    if std::env::args().any(|a| a == "--cache") {
        // ABL-5: the page-map cache mostly helps the list walk (module
        // pages are each copied once either way).
        let cached_checker = ModChecker::with_config(CheckConfig {
            page_cache: true,
            ..CheckConfig::default()
        });
        let n = 15;
        let ids = &bed.vm_ids[..n];
        let uncached = checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("uncached");
        let cached = cached_checker
            .check_one(&bed.hv, ids[0], &ids[1..], module)
            .expect("cached");
        println!("\nABL-5 page-map cache at N=15:");
        println!(
            "  searcher uncached {} → cached {}",
            uncached.times.searcher, cached.times.searcher
        );
        assert!(cached.times.searcher < uncached.times.searcher);
    }
    println!("\nFIG-7 reproduced: linear runtime, Module-Searcher dominant.");
}
