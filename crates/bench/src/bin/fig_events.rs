//! FIG-EVENTS — push monitoring vs the paper's polling loop.
//!
//! PR 9 turns the pull probe inside out: EPT-style write traps armed over
//! every monitored module's page span deliver `WriteEvent`s to an
//! [`modchecker::EventPlane`], which coalesces them to dirty
//! `(vm, module)` pairs and rescans *only those* — every armed-and-quiet
//! pair is served from the capture cache with zero guest reads. This
//! figure measures the two things that justify the machinery:
//!
//! * **Steady-state cost** — a clean monitoring round over a warm fleet.
//!   Poll mode re-reads (list walk + leaf probes) every round; push mode
//!   reads nothing. The gate: ≥10× fewer guest reads *and* page-table
//!   walks per clean round.
//! * **Detection latency** — write-to-verdict time. A polling monitor
//!   detects a write at the end of the round *after* the one in flight:
//!   latency = remainder of the in-flight round plus one full round. Push
//!   mode pays trap delivery (seeded-jitter µs) plus one targeted rescan.
//!   The gate: the push median is sub-round.
//!
//! Shape claims verified:
//! * verdicts are byte-identical between push and poll rounds over the
//!   paper's §V.B techniques (times and VMI counters stripped);
//! * quiet push rounds issue exactly zero guest reads and page walks;
//! * the real infection planted mid-stream is flagged by the push path.
//!
//! Emits `BENCH_events.json` (`--out <PATH>` overrides) plus the usual
//! CSV block.

use mc_attacks::Technique;
use mc_bench::print_csv;
use mc_guest::build_cloud_with_modules;
use mc_hypervisor::{AddressWidth, Hypervisor, VmId};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{
    CaptureCache, CheckError, ContinuousMonitor, EventPlane, ModChecker, MonitorConfig,
    PoolCheckReport,
};
use modchecker_repro::testbed::Testbed;

const MODULE: &str = "target.sys";
const POOL: usize = 12;

struct Row {
    metric: &'static str,
    poll: f64,
    push: f64,
    ratio: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.4},{:.4},{:.2}",
            self.metric, self.poll, self.push, self.ratio
        )
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn cloud() -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
    let mut hv = Hypervisor::new();
    let w = AddressWidth::W32;
    let bps = vec![
        ModuleBlueprint::new("hal.dll", w, 16 * 1024),
        ModuleBlueprint::new(MODULE, w, 64 * 1024),
        ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
    ];
    let guests = build_cloud_with_modules(&mut hv, POOL, w, &bps).expect("cloud builds");
    let ids = guests.iter().map(|g| g.vm).collect();
    (hv, guests, ids)
}

fn monitored_modules() -> Vec<String> {
    ["hal.dll", MODULE, "ndis.sys"]
        .iter()
        .map(|s| (*s).to_string())
        .collect()
}

/// Report JSON minus the fields push mode is *allowed* to move (simulated
/// times, introspection counters) — what must stay byte-identical.
fn verdict_bytes(report: &PoolCheckReport) -> String {
    let mut v = report.to_json();
    if let serde_json::Value::Object(ref mut obj) = v {
        obj.retain(|(k, _)| k != "times_ms" && k != "vmi");
    }
    serde_json::to_string_pretty(&v).expect("serializes")
}

/// Guest reads and page walks summed across one monitor round.
fn round_cost(round: &[(String, Result<PoolCheckReport, CheckError>)]) -> (u64, u64) {
    round.iter().fold((0, 0), |(reads, walks), (_, r)| {
        let r = r.as_ref().expect("round scans");
        (reads + r.vmi.reads, walks + r.vmi.page_walks)
    })
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = flag("--smoke");
    let out = arg_str("--out", "BENCH_events.json");
    let rounds = if smoke { 3 } else { 6 };
    let trials = if smoke { 5 } else { 15 };

    // ---- Phase 1: steady-state cost of a clean round. -----------------
    let config = MonitorConfig {
        modules: monitored_modules(),
        ..MonitorConfig::default()
    };
    let (hv_poll, _gp, ids_poll) = cloud();
    let poll = ContinuousMonitor::new(config.clone());
    poll.run_round(&hv_poll, &ids_poll); // warm the capture cache

    let (mut hv_push, _gq, ids_push) = cloud();
    let push = ContinuousMonitor::new(config);
    let frames = push
        .arm_events(&mut hv_push, &ids_push)
        .expect("arming a healthy cloud");
    push.run_round_events(&hv_push, &ids_push); // cold fill

    let (mut poll_reads, mut poll_walks) = (0u64, 0u64);
    let (mut push_reads, mut push_walks) = (0u64, 0u64);
    for _ in 0..rounds {
        let p = poll.run_round(&hv_poll, &ids_poll);
        let e = push.run_round_events(&hv_push, &ids_push);
        for ((pm, pr), (em, er)) in p.iter().zip(&e) {
            assert_eq!(pm, em);
            assert_eq!(
                verdict_bytes(pr.as_ref().expect("poll scan")),
                verdict_bytes(er.as_ref().expect("push scan")),
                "steady-state verdicts diverged between poll and push"
            );
        }
        let (r, w) = round_cost(&p);
        poll_reads += r;
        poll_walks += w;
        let (r, w) = round_cost(&e);
        push_reads += r;
        push_walks += w;
    }
    assert_eq!(push_reads, 0, "a quiet push round must not read guests");
    assert_eq!(push_walks, 0, "a quiet push round must not walk tables");
    #[allow(clippy::cast_precision_loss)]
    let read_ratio = poll_reads as f64 / push_reads.max(1) as f64;
    #[allow(clippy::cast_precision_loss)]
    let walk_ratio = poll_walks as f64 / push_walks.max(1) as f64;

    // ---- Phase 2: detection latency distribution. ---------------------
    // A continuously-polling monitor with round cost P detects a write
    // landing at fraction f of the in-flight round at the end of the
    // *next* round: latency = (1 − f)·P + P. Push mode pays the trap's
    // seeded delivery jitter plus one targeted rescan of the dirty pair.
    let (mut hv, guests, ids) = cloud();
    let mut plane = EventPlane::new();
    plane
        .arm_modules(&mut hv, &ids, &[MODULE.to_string()])
        .expect("arming");
    let checker = ModChecker::new();
    let mut cache = CaptureCache::new();
    // First write of the fixed byte happens before the cache warms — on
    // *every* guest, same site, same value — so every measured rewrite is
    // content-stable and pool-consistent (verdicts stay clean).
    const SITE: u64 = 0x2000;
    for g in &guests {
        g.patch_module(&mut hv, MODULE, SITE, &[0x90])
            .expect("patch");
    }
    checker
        .check_pool_with_cache(&hv, &ids, MODULE, &mut cache)
        .expect("warmup");
    plane.drain(&hv);
    plane.clear_dirty();

    let mut poll_lat = Vec::with_capacity(trials);
    let mut push_lat = Vec::with_capacity(trials);
    let mut poll_round_ms = Vec::with_capacity(trials);
    for k in 0..trials {
        let victim = k % POOL;
        guests[victim]
            .patch_module(&mut hv, MODULE, SITE, &[0x90])
            .expect("patch");

        // Push: drain the trap, rescan the one dirty pair from trust.
        let events = plane.drain(&hv);
        assert!(!events.is_empty(), "the write must raise an event");
        let delivery_ms = events
            .iter()
            .map(|e| e.latency.as_millis_f64())
            .fold(0.0f64, f64::max);
        let trusted = plane.trusted_for(MODULE, &ids);
        assert_eq!(trusted.len(), POOL - 1, "only the victim rescans");
        let dirty = checker
            .check_pool_with_cache_trusted(&hv, &ids, MODULE, &mut cache, &trusted)
            .expect("dirty rescan");
        assert!(dirty.all_clean(), "same-byte rewrite must stay clean");
        plane.clear_dirty();
        push_lat.push(delivery_ms + dirty.times.total().as_millis_f64());

        // Poll: a full uncached round, landing at fraction f of the round
        // in flight when the write happened.
        let round = checker.check_pool(&hv, &ids, MODULE).expect("poll round");
        let p = round.times.total().as_millis_f64();
        #[allow(clippy::cast_precision_loss)]
        let f = (k as f64 + 0.5) / trials as f64;
        poll_lat.push((1.0 - f) * p + p);
        poll_round_ms.push(p);
    }
    let poll_median_ms = median(&mut poll_lat);
    let push_median_ms = median(&mut push_lat);
    #[allow(clippy::cast_precision_loss)]
    let period_ms = poll_round_ms.iter().sum::<f64>() / trials as f64;

    // A real infection rides the same pipeline and is flagged.
    guests[3]
        .patch_module(&mut hv, MODULE, 0x3008, &[0xCC, 0xCC])
        .expect("patch");
    plane.drain(&hv);
    let trusted = plane.trusted_for(MODULE, &ids);
    let report = checker
        .check_pool_with_cache_trusted(&hv, &ids, MODULE, &mut cache, &trusted)
        .expect("detection rescan");
    let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
    assert_eq!(suspects, vec!["dom4"], "push path missed the infection");
    plane.clear_dirty();

    // ---- Phase 3: verdict identity over the paper's techniques. -------
    let techniques: &[Technique] = if smoke {
        &[Technique::InlineHook]
    } else {
        &Technique::ALL
    };
    for &technique in techniques {
        let (bed, _) = Testbed::infected_cloud(6, technique, &[2]).expect("infection");
        let target = technique.infection().target_module().to_string();
        let config = MonitorConfig {
            modules: vec![target],
            ..MonitorConfig::default()
        };
        let pull_bed = bed.clone();
        let pull_mon = ContinuousMonitor::new(config.clone());
        let mut push_bed = bed;
        let push_mon = ContinuousMonitor::new(config);
        push_mon
            .arm_events(&mut push_bed.hv, &push_bed.vm_ids)
            .expect("arming");
        for _ in 0..2 {
            let p = pull_mon.run_round(&pull_bed.hv, &pull_bed.vm_ids);
            let e = push_mon.run_round_events(&push_bed.hv, &push_bed.vm_ids);
            assert_eq!(
                verdict_bytes(p[0].1.as_ref().expect("pull")),
                verdict_bytes(e[0].1.as_ref().expect("push")),
                "{technique}: push diverged from pull"
            );
        }
    }

    // ---- Report. ------------------------------------------------------
    #[allow(clippy::cast_precision_loss)]
    let rows = vec![
        Row {
            metric: "steady_reads_per_round",
            poll: poll_reads as f64 / f64::from(rounds),
            push: push_reads as f64 / f64::from(rounds),
            ratio: read_ratio,
        },
        Row {
            metric: "steady_walks_per_round",
            poll: poll_walks as f64 / f64::from(rounds),
            push: push_walks as f64 / f64::from(rounds),
            ratio: walk_ratio,
        },
        Row {
            metric: "detection_latency_median_ms",
            poll: poll_median_ms,
            push: push_median_ms,
            ratio: poll_median_ms / push_median_ms,
        },
    ];
    print_csv("fig_events", "metric,poll,push,ratio", &rows);

    let json = serde_json::json!({
        "figure": "fig_events",
        "smoke": smoke,
        "pool": POOL,
        "rounds": rounds,
        "trials": trials,
        "frames_watched": frames,
        "steady_poll_reads": poll_reads,
        "steady_push_reads": push_reads,
        "steady_poll_page_walks": poll_walks,
        "steady_push_page_walks": push_walks,
        "read_ratio": read_ratio,
        "walk_ratio": walk_ratio,
        "poll_round_ms": period_ms,
        "detection_poll_median_ms": poll_median_ms,
        "detection_push_median_ms": push_median_ms,
        "detection_poll_ms": poll_lat,
        "detection_push_ms": push_lat,
        "verdict_identity": true,
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render BENCH_events.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH_events.json");
    println!("\nwrote {out}");

    println!("\nFIG-EVENTS shape checks:");
    println!(
        "  steady: {poll_reads} reads / {poll_walks} walks (poll) vs \
         {push_reads} / {push_walks} (push) over {rounds} rounds"
    );
    println!(
        "  latency: median {poll_median_ms:.3} ms (poll, round {period_ms:.3} ms) \
         vs {push_median_ms:.3} ms (push)"
    );
    assert!(
        read_ratio >= 10.0 && walk_ratio >= 10.0,
        "push must cut clean-round reads and walks ≥10× \
         (got {read_ratio:.1}× reads, {walk_ratio:.1}× walks)"
    );
    assert!(
        push_median_ms < period_ms,
        "push median detection latency {push_median_ms:.3} ms must be \
         sub-round (round = {period_ms:.3} ms)"
    );
    assert!(push_median_ms < poll_median_ms);

    println!("\nFIG-EVENTS reproduced: quiet rounds are free, detection beats the polling round.");
}
