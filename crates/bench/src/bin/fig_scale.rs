//! FIG-SCALE — checker-time scaling of the two comparison strategies.
//!
//! Sweeps the pool size t over {2, 4, 8, 16, 32, 64} (smoke mode stops at
//! 16) on a clean single-module cloud and runs the same scan twice per
//! point: once with the paper's pairwise Algorithm 2 matrix (O(t²) pairs)
//! and once with the canonical-form path (each capture normalized against
//! its own load base once, majority by digest bucket — O(t)).
//!
//! Shape claims verified:
//! * at the largest swept t the canonical checker time is at most 1/4 of
//!   the pairwise checker time;
//! * canonical checker time grows sub-quadratically — doubling t must
//!   less-than-triple the checker time at every step (a quadratic curve
//!   approaches 4× per doubling; the canonical path sits near 2×);
//! * both strategies return identical verdicts at every point.
//!
//! Emits the sweep as `BENCH_scan.json` (`--out <PATH>` overrides) for
//! downstream tooling, alongside the usual CSV block.

use mc_bench::print_csv;
use mc_hypervisor::AddressWidth;
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{observe_scan, CheckConfig, CompareStrategy, ModChecker, PoolCheckReport};
use modchecker_repro::testbed::Testbed;

struct Row {
    t: usize,
    pairwise_checker_ms: f64,
    canonical_checker_ms: f64,
    pairwise_total_ms: f64,
    canonical_total_ms: f64,
    speedup: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.3},{:.3},{:.3},{:.3},{:.2}",
            self.t,
            self.pairwise_checker_ms,
            self.canonical_checker_ms,
            self.pairwise_total_ms,
            self.canonical_total_ms,
            self.speedup
        )
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn scan(bed: &Testbed, t: usize, compare: CompareStrategy, module: &str) -> PoolCheckReport {
    let checker = ModChecker::with_config(CheckConfig {
        compare,
        ..CheckConfig::default()
    });
    checker
        .check_pool(&bed.hv, &bed.vm_ids[..t], module)
        .expect("clean pool scan")
}

fn main() {
    let smoke = flag("--smoke");
    let out = arg_str("--out", "BENCH_scan.json");
    let module = "hal.dll";
    let sweep: &[usize] = if smoke {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let max_t = *sweep.last().expect("sweep nonempty");

    // One clean cloud, one 16 KiB module per VM; each point slices a
    // prefix so every t sees identical guests.
    let blueprint = ModuleBlueprint::new(module, AddressWidth::W32, 16 * 1024);
    let bed = Testbed::cloud_with(max_t, AddressWidth::W32, std::slice::from_ref(&blueprint));

    let mut rows = Vec::new();
    for &t in sweep {
        let pairwise = scan(&bed, t, CompareStrategy::Pairwise, module);
        let canonical = scan(&bed, t, CompareStrategy::Canonical, module);
        assert!(pairwise.all_clean(), "pairwise scan flagged a clean pool");
        assert!(canonical.all_clean(), "canonical scan flagged a clean pool");
        for (p, c) in pairwise.verdicts.iter().zip(&canonical.verdicts) {
            assert_eq!(p.status, c.status, "strategies disagree at t={t}");
            assert_eq!(
                p.successes, c.successes,
                "vote counts disagree at t={t} for {}",
                p.vm_name
            );
        }
        // Timings are read back through the metrics registry rather than
        // straight off the report, so the figure exercises the same export
        // path `--metrics-out` serves; the gauges must agree with the
        // report they were derived from.
        let pobs = observe_scan(&pairwise);
        let cobs = observe_scan(&canonical);
        let pc = pobs
            .registry
            .gauge("scan_checker_ms")
            .expect("pairwise scan recorded a checker gauge");
        let cc = cobs
            .registry
            .gauge("scan_checker_ms")
            .expect("canonical scan recorded a checker gauge");
        assert_eq!(
            pc,
            pairwise.times.checker.as_millis_f64(),
            "registry gauge diverged from the report at t={t}"
        );
        assert_eq!(
            cc,
            canonical.times.checker.as_millis_f64(),
            "registry gauge diverged from the report at t={t}"
        );
        rows.push(Row {
            t,
            pairwise_checker_ms: pc,
            canonical_checker_ms: cc,
            pairwise_total_ms: pobs
                .registry
                .gauge("scan_total_ms")
                .expect("pairwise scan recorded a total gauge"),
            canonical_total_ms: cobs
                .registry
                .gauge("scan_total_ms")
                .expect("canonical scan recorded a total gauge"),
            speedup: pc / cc,
        });
    }

    print_csv(
        "fig_scale",
        "vms,pairwise_checker_ms,canonical_checker_ms,pairwise_total_ms,canonical_total_ms,speedup",
        &rows,
    );

    let json = serde_json::json!({
        "figure": "fig_scale",
        "module": module,
        "smoke": smoke,
        "rows": rows.iter().map(|r| serde_json::json!({
            "vms": r.t,
            "pairwise_checker_ms": r.pairwise_checker_ms,
            "canonical_checker_ms": r.canonical_checker_ms,
            "pairwise_total_ms": r.pairwise_total_ms,
            "canonical_total_ms": r.canonical_total_ms,
            "speedup": r.speedup,
        })).collect::<Vec<_>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render BENCH_scan.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH_scan.json");
    println!("\nwrote {out}");

    println!("\nFIG-SCALE shape checks:");
    let last = rows.last().expect("rows nonempty");
    println!(
        "  t={}: canonical checker {:.3} ms vs pairwise {:.3} ms ({:.1}x)",
        last.t, last.canonical_checker_ms, last.pairwise_checker_ms, last.speedup
    );
    assert!(
        last.canonical_checker_ms * 4.0 <= last.pairwise_checker_ms,
        "canonical checker at t={} must be at most 1/4 of pairwise ({:.3} ms vs {:.3} ms)",
        last.t,
        last.canonical_checker_ms,
        last.pairwise_checker_ms
    );

    for pair in rows.windows(2) {
        let ratio = pair[1].canonical_checker_ms / pair[0].canonical_checker_ms;
        println!(
            "  canonical growth t={} -> t={}: {ratio:.2}x per doubling",
            pair[0].t, pair[1].t
        );
        assert!(
            ratio < 3.0,
            "canonical checker grew {ratio:.2}x when t doubled ({} -> {}) — not sub-quadratic",
            pair[0].t,
            pair[1].t
        );
    }

    println!("\nFIG-SCALE reproduced: canonical comparison scales O(t), pairwise O(t^2).");
}
