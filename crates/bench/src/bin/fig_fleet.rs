//! FIG-FLEET — fleet-scheduler makespan scaling with shard count.
//!
//! Builds one clean multi-pool cloud (`uniform_fleet`: pool sizes and
//! module sizes vary deterministically, so per-pool costs are uneven),
//! sweeps it once per shard count in {1, 2, 4, 8}, and reads the
//! simulated makespan back through the LPT model
//! (`simulated_fleet_wall`). Real wall-clock is useless here — CI boxes
//! may have a single core — but the simulated-time model is exact and
//! deterministic, which also lets this figure double as a regression
//! gate.
//!
//! Shape claims verified:
//! * every sweep serializes byte-identically regardless of shard count
//!   (the scheduler's determinism contract);
//! * makespan is monotonically non-increasing as shards grow;
//! * at the maximum shard count the speedup is at least 2× yet strictly
//!   below the shard count — LPT over *uneven* pools cannot divide
//!   perfectly, so a super-linear or exactly-linear result would mean
//!   the model is broken.
//!
//! Emits the sweep as `BENCH_fleet.json` (`--out <PATH>` overrides)
//! alongside the usual CSV block.

use mc_bench::print_csv;
use modchecker::{simulated_fleet_wall, FleetConfig, FleetScheduler};
use modchecker_repro::fleetgen::uniform_fleet;

struct Row {
    shards: usize,
    wall_ms: f64,
    speedup: f64,
    units_per_sec: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.3},{:.2},{:.1}",
            self.shards, self.wall_ms, self.speedup, self.units_per_sec
        )
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let smoke = flag("--smoke");
    let out = arg_str("--out", "BENCH_fleet.json");
    let (pools, base_vms, modules) = if smoke { (6, 3, 2) } else { (12, 4, 3) };
    let shard_sweep: &[usize] = &[1, 2, 4, 8];
    let max_shards = *shard_sweep.last().expect("sweep nonempty");

    let bed = uniform_fleet(pools, base_vms, modules, 1);
    let mut baseline: Option<(modchecker::FleetReport, String)> = None;
    let mut rows = Vec::new();
    for &shards in shard_sweep {
        let sched = FleetScheduler::new(FleetConfig {
            shards,
            ..FleetConfig::default()
        });
        let report = sched.sweep(&bed.hv, &bed.fleet);
        assert_eq!(report.units_failed(), 0, "clean fleet sweep failed a unit");
        assert!(report.all_clean(), "clean fleet sweep flagged a suspect");
        let rendered = serde_json::to_string_pretty(&report.to_json()).expect("serializes");
        let (base_report, base_rendered) =
            baseline.get_or_insert_with(|| (report, rendered.clone()));
        assert_eq!(
            base_rendered, &rendered,
            "shards={shards} changed the report bytes — determinism contract broken"
        );

        let wall = simulated_fleet_wall(base_report, shards);
        let wall_ms = wall.as_millis_f64();
        let sequential_ms = base_report.simulated_wall_sequential().as_millis_f64();
        rows.push(Row {
            shards,
            wall_ms,
            speedup: sequential_ms / wall_ms,
            units_per_sec: base_report.units_total() as f64 / (wall_ms / 1000.0),
        });
    }
    let (report, _) = baseline.expect("at least one sweep ran");

    print_csv("fig_fleet", "shards,wall_ms,speedup,units_per_sec", &rows);

    let json = serde_json::json!({
        "figure": "fig_fleet",
        "smoke": smoke,
        "pools": pools,
        "vms": report.pools.iter().map(|p| p.vm_names.len()).sum::<usize>(),
        "units": report.units_total(),
        "rows": rows.iter().map(|r| serde_json::json!({
            "shards": r.shards,
            "wall_ms": r.wall_ms,
            "speedup": r.speedup,
            "units_per_sec": r.units_per_sec,
        })).collect::<Vec<_>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render BENCH_fleet.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH_fleet.json");
    println!("\nwrote {out}");

    println!("\nFIG-FLEET shape checks:");
    for pair in rows.windows(2) {
        println!(
            "  shards {} -> {}: {:.3} ms -> {:.3} ms",
            pair[0].shards, pair[1].shards, pair[0].wall_ms, pair[1].wall_ms
        );
        assert!(
            pair[1].wall_ms <= pair[0].wall_ms,
            "makespan increased when shards grew {} -> {}",
            pair[0].shards,
            pair[1].shards
        );
    }
    let last = rows.last().expect("rows nonempty");
    println!(
        "  shards={}: speedup {:.2}x over sequential ({:.1} units/sec)",
        last.shards, last.speedup, last.units_per_sec
    );
    assert!(
        last.speedup >= 2.0,
        "sharding {}x yielded only {:.2}x speedup",
        last.shards,
        last.speedup
    );
    #[allow(clippy::cast_precision_loss)]
    let linear = max_shards as f64;
    assert!(
        last.speedup < linear,
        "speedup {:.2}x at {max_shards} shards is not sub-linear — LPT over uneven pools cannot divide perfectly",
        last.speedup
    );

    println!("\nFIG-FLEET reproduced: sharded sweeps cut makespan sub-linearly, bytes unchanged.");
}
