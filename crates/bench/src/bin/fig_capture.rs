//! FIG-CAPTURE — the capture fast path under a steady-state scan.
//!
//! PR 3 collapsed the checker to O(t) canonical voting, leaving the scan
//! capture-bound: most of the remaining per-round cost is walking the
//! loaded-module list and copying module images out of guest memory. This
//! figure measures what the capture fast path (DESIGN.md §14 — per-session
//! translate caching, scatter-gather stable reads, arena buffers, and
//! leaf-level cache refreshes keyed by page write-generations) buys on the
//! workload that dominates a monitoring fleet: warm rounds where almost
//! nothing changed.
//!
//! Two phases over the same t=16 pool carrying a 128 KiB module:
//!
//! * **cold** — one uncached sweep, fast path on vs off. Isolates the
//!   scatter-gather win: one translate walk per page and one batched copy
//!   per physical run vs the paper's page-by-page loop.
//! * **steady** — rounds where every VM dirties exactly one page (the
//!   same bytes are re-written, so write-generations move but verdicts
//!   cannot). Fast side: warm [`CaptureCache`] + fast path — each round
//!   re-reads one page per VM (leaf refresh). Paper side: the uncached
//!   page-by-page recapture loop the prototype describes.
//!
//! Shape claims verified:
//! * verdicts are byte-identical across fast-path on/off (times and VMI
//!   counters stripped — those are *supposed* to move);
//! * the fast side actually exercised the new machinery (vectored reads,
//!   translate-cache hits, leaf refreshes > 0; legacy side all zero);
//! * steady-state capture speedup is at least 4× (the gate).
//!
//! Emits `BENCH_capture.json` (`--out <PATH>` overrides) plus the usual
//! CSV block.

use mc_bench::print_csv;
use mc_guest::build_cloud_with_modules;
use mc_hypervisor::{AddressWidth, Hypervisor, VmId};
use mc_pe::corpus::ModuleBlueprint;
use modchecker::{CaptureCache, CheckConfig, ModChecker};

const MODULE: &str = "target.sys";
const MODULE_KB: usize = 128;
const POOL: usize = 16;

struct Row {
    phase: &'static str,
    capture_ms: f64,
    total_ms: f64,
    speedup: f64,
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{},{:.4},{:.4},{:.2}",
            self.phase, self.capture_ms, self.total_ms, self.speedup
        )
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_str(key: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn cloud() -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
    let mut hv = Hypervisor::new();
    let w = AddressWidth::W32;
    // The scan target plus two bystander modules so the list walk does
    // realistic work before it finds the entry it wants.
    let bps = vec![
        ModuleBlueprint::new("hal.dll", w, 16 * 1024),
        ModuleBlueprint::new(MODULE, w, MODULE_KB * 1024),
        ModuleBlueprint::new("ndis.sys", w, 12 * 1024),
    ];
    let guests = build_cloud_with_modules(&mut hv, POOL, w, &bps).expect("cloud builds");
    let ids = guests.iter().map(|g| g.vm).collect();
    (hv, guests, ids)
}

fn checker(fast: bool) -> ModChecker {
    ModChecker::with_config(CheckConfig {
        fast_capture: fast,
        ..CheckConfig::default()
    })
}

/// Report JSON with the fields the fast path is *allowed* to move
/// (simulated times, introspection counters) stripped — what must remain
/// byte-identical across fast-path on/off.
fn verdict_bytes(report: &modchecker::PoolCheckReport) -> String {
    let mut v = report.to_json();
    if let serde_json::Value::Object(ref mut obj) = v {
        obj.retain(|(k, _)| k != "times_ms" && k != "vmi");
    }
    serde_json::to_string_pretty(&v).expect("serializes")
}

/// Re-writes one byte per VM with a fixed value: after the first write the
/// content is stable round to round, but every write moves the page's
/// generation stamp — the "one dirty page per module per round" shape a
/// busy-but-benign guest produces.
fn dirty_one_page(hv: &mut Hypervisor, guests: &[mc_guest::GuestOs]) {
    let offset = 17 * 4096 + 128; // page 17 of the 32-page image
    for g in guests {
        g.patch_module(hv, MODULE, offset, &[0x90]).expect("patch");
    }
}

fn main() {
    let smoke = flag("--smoke");
    let out = arg_str("--out", "BENCH_capture.json");
    let rounds = if smoke { 3 } else { 6 };

    // ---- Cold phase: one uncached sweep, fast on vs off. --------------
    let (hv, _guests, ids) = cloud();
    let cold_legacy = checker(false).check_pool(&hv, &ids, MODULE).expect("scan");
    let cold_fast = checker(true).check_pool(&hv, &ids, MODULE).expect("scan");
    assert_eq!(
        verdict_bytes(&cold_legacy),
        verdict_bytes(&cold_fast),
        "fast path changed a cold verdict"
    );
    assert!(cold_legacy.all_clean() && cold_fast.all_clean());
    assert_eq!(cold_legacy.vmi.vectored_reads, 0);
    assert!(cold_fast.vmi.vectored_reads > 0, "fast path never vectored");
    assert!(
        cold_fast.vmi.translate_cache_hits > 0,
        "translate cache never hit"
    );
    assert!(
        cold_fast.vmi.page_walks < cold_legacy.vmi.page_walks,
        "fast path did not reduce page-table walks"
    );

    // ---- Steady phase: warm cache + fast path vs the paper's loop. ----
    // Two identically-built clouds so neither side sees the other's
    // generation bumps.
    let (mut hv_fast, guests_fast, ids_fast) = cloud();
    let (mut hv_paper, guests_paper, ids_paper) = cloud();
    let fast_checker = checker(true);
    let paper_checker = checker(false);
    let mut cache = CaptureCache::new();
    // Warm the cache (and the first write of the fixed byte) outside the
    // measured window.
    fast_checker
        .check_pool_with_cache(&hv_fast, &ids_fast, MODULE, &mut cache)
        .expect("warmup");
    dirty_one_page(&mut hv_fast, &guests_fast);
    dirty_one_page(&mut hv_paper, &guests_paper);
    fast_checker
        .check_pool_with_cache(&hv_fast, &ids_fast, MODULE, &mut cache)
        .expect("warmup");
    paper_checker
        .check_pool(&hv_paper, &ids_paper, MODULE)
        .expect("warmup");

    let mut fast_capture_ms = 0.0;
    let mut fast_total_ms = 0.0;
    let mut paper_capture_ms = 0.0;
    let mut paper_total_ms = 0.0;
    for _ in 0..rounds {
        dirty_one_page(&mut hv_fast, &guests_fast);
        dirty_one_page(&mut hv_paper, &guests_paper);
        let fast = fast_checker
            .check_pool_with_cache(&hv_fast, &ids_fast, MODULE, &mut cache)
            .expect("steady round");
        let paper = paper_checker
            .check_pool(&hv_paper, &ids_paper, MODULE)
            .expect("steady round");
        assert_eq!(
            verdict_bytes(&fast),
            verdict_bytes(&paper),
            "steady-state verdicts diverged between fast and paper paths"
        );
        assert!(fast.all_clean(), "same-byte rewrites must stay clean");
        fast_capture_ms += fast.times.searcher.as_millis_f64();
        fast_total_ms += fast.times.total().as_millis_f64();
        paper_capture_ms += paper.times.searcher.as_millis_f64();
        paper_total_ms += paper.times.total().as_millis_f64();
    }
    let r = f64::from(u32::try_from(rounds).expect("small"));
    fast_capture_ms /= r;
    fast_total_ms /= r;
    paper_capture_ms /= r;
    paper_total_ms /= r;

    let stats = cache.stats();
    assert!(
        stats.partial_hits >= (rounds * POOL) as u64,
        "every measured round should leaf-refresh every VM (got {} partial hits)",
        stats.partial_hits
    );
    assert_eq!(stats.invalidations, 0, "nothing changed shape");
    assert!(
        stats.pages_reused > stats.pages_refreshed,
        "a one-dirty-page round must reuse more leaves than it refreshes"
    );

    let cold_speedup =
        cold_legacy.times.searcher.as_millis_f64() / cold_fast.times.searcher.as_millis_f64();
    let steady_speedup = paper_capture_ms / fast_capture_ms;
    let rows = vec![
        Row {
            phase: "cold_paper",
            capture_ms: cold_legacy.times.searcher.as_millis_f64(),
            total_ms: cold_legacy.times.total().as_millis_f64(),
            speedup: 1.0,
        },
        Row {
            phase: "cold_fast",
            capture_ms: cold_fast.times.searcher.as_millis_f64(),
            total_ms: cold_fast.times.total().as_millis_f64(),
            speedup: cold_speedup,
        },
        Row {
            phase: "steady_paper",
            capture_ms: paper_capture_ms,
            total_ms: paper_total_ms,
            speedup: 1.0,
        },
        Row {
            phase: "steady_fast",
            capture_ms: fast_capture_ms,
            total_ms: fast_total_ms,
            speedup: steady_speedup,
        },
    ];

    print_csv("fig_capture", "phase,capture_ms,total_ms,speedup", &rows);

    let json = serde_json::json!({
        "figure": "fig_capture",
        "smoke": smoke,
        "pool": POOL,
        "module_kb": MODULE_KB,
        "rounds": rounds,
        "rows": rows.iter().map(|row| serde_json::json!({
            "phase": row.phase,
            "capture_ms": row.capture_ms,
            "total_ms": row.total_ms,
            "speedup": row.speedup,
        })).collect::<Vec<_>>(),
        "capture_cold_speedup": cold_speedup,
        "capture_steady_speedup": steady_speedup,
        "capture_partial_hits": stats.partial_hits,
        "capture_pages_refreshed": stats.pages_refreshed,
        "capture_pages_reused": stats.pages_reused,
    });
    let rendered = serde_json::to_string_pretty(&json).expect("render BENCH_capture.json");
    std::fs::write(&out, rendered + "\n").expect("write BENCH_capture.json");
    println!("\nwrote {out}");

    println!("\nFIG-CAPTURE shape checks:");
    println!(
        "  cold:   {:.3} ms -> {:.3} ms ({cold_speedup:.2}x)",
        cold_legacy.times.searcher.as_millis_f64(),
        cold_fast.times.searcher.as_millis_f64(),
    );
    println!(
        "  steady: {paper_capture_ms:.3} ms -> {fast_capture_ms:.3} ms ({steady_speedup:.2}x)"
    );
    assert!(
        cold_speedup > 1.0,
        "scatter-gather must beat the page loop even cold ({cold_speedup:.2}x)"
    );
    assert!(
        steady_speedup >= 4.0,
        "steady-state capture speedup {steady_speedup:.2}x is below the 4x gate"
    );

    println!(
        "\nFIG-CAPTURE reproduced: warm rounds re-read one page per VM, verdicts byte-identical."
    );
}
