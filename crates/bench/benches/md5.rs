//! Wall-clock throughput of the from-scratch MD5 (the hashing kernel the
//! Integrity-Checker runs over every header and executable section).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_md5(c: &mut Criterion) {
    let mut group = c.benchmark_group("md5");
    for size in [1usize << 10, 64 << 10, 256 << 10, 1 << 20] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("oneshot", size), &data, |b, data| {
            b.iter(|| mc_md5::md5(black_box(data)));
        });
    }
    group.finish();
}

fn bench_md5_incremental(c: &mut Criterion) {
    // Incremental hashing in page-sized chunks, as the checker would hash a
    // section streamed out of a guest.
    let data: Vec<u8> = (0..256 << 10).map(|i| (i * 7 % 251) as u8).collect();
    c.bench_function("md5/incremental_4k_chunks_256k", |b| {
        b.iter(|| {
            let mut ctx = mc_md5::Md5::new();
            for chunk in black_box(&data).chunks(4096) {
                ctx.update(chunk);
            }
            ctx.finalize()
        });
    });
}

criterion_group!(benches, bench_md5, bench_md5_incremental);
criterion_main!(benches);
