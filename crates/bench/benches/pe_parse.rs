//! Wall-clock cost of Algorithm 1: PE parsing and part extraction on
//! realistic module images.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mc_hypervisor::{AddressWidth, Vm, VmId};
use mc_pe::corpus::ModuleBlueprint;
use mc_pe::parser::ParsedModule;

/// Builds a loaded-memory-layout image of the given text size.
fn memory_image(text_size: usize) -> Vec<u8> {
    let mut vm = Vm::new(VmId(0), "bench", AddressWidth::W32);
    let pe = ModuleBlueprint::new("bench.sys", AddressWidth::W32, text_size)
        .build()
        .expect("builds");
    let m = mc_guest::load_module(&mut vm, &pe, "bench.sys", 0xF700_0000).expect("loads");
    let mut img = vec![0u8; m.size as usize];
    vm.read_virt(m.base, &mut img).expect("reads");
    img
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("pe_parse");
    for text_kb in [16usize, 128, 512] {
        let img = memory_image(text_kb << 10);
        group.throughput(Throughput::Bytes(img.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse_memory", text_kb), &img, |b, img| {
            b.iter(|| ParsedModule::parse_memory(black_box(img)).expect("parses"));
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    c.bench_function("pe_build/hal_128k", |b| {
        let bp = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 128 << 10);
        let artifacts = bp.generate();
        b.iter(|| artifacts.build().expect("builds"));
    });
}

criterion_group!(benches, bench_parse, bench_build);
criterion_main!(benches);
