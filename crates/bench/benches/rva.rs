//! Algorithm 2 (diff-based RVA adjustment) wall-clock, plus ablation ABL-2:
//! the relocation-table-driven normalizer it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mc_hypervisor::{AddressWidth, Vm, VmId};
use mc_pe::corpus::ModuleBlueprint;
use mc_pe::parser::ParsedModule;
use modchecker::rva::{adjust_rvas, normalize_with_reloc_table};

/// Captures the .text of one blueprint loaded at `base` plus the full
/// memory image.
fn capture(text_size: usize, base: u64) -> (Vec<u8>, Vec<u8>, ParsedModule) {
    let mut vm = Vm::new(VmId(0), "bench", AddressWidth::W32);
    let pe = ModuleBlueprint::new("bench.sys", AddressWidth::W32, text_size)
        .build()
        .expect("builds");
    let m = mc_guest::load_module(&mut vm, &pe, "bench.sys", base).expect("loads");
    let mut img = vec![0u8; m.size as usize];
    vm.read_virt(m.base, &mut img).expect("reads");
    let parsed = ParsedModule::parse_memory(&img).expect("parses");
    let text = parsed.section_data(&img, 0).expect("text").to_vec();
    (text, img, parsed)
}

fn bench_adjust(c: &mut Criterion) {
    let mut group = c.benchmark_group("rva_adjust");
    for text_kb in [64usize, 256] {
        let base_a = 0xF712_0000u64;
        let base_b = 0xF7C4_3000u64;
        let (text_a, _, _) = capture(text_kb << 10, base_a);
        let (text_b, _, _) = capture(text_kb << 10, base_b);
        group.throughput(Throughput::Bytes(2 * text_a.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("algorithm2_pair", text_kb),
            &(text_a, text_b),
            |bch, (ta, tb)| {
                bch.iter(|| {
                    let mut a = ta.clone();
                    let mut b = tb.clone();
                    let stats = adjust_rvas(&mut a, &mut b, base_a, base_b, AddressWidth::W32);
                    black_box((a, b, stats))
                });
            },
        );
    }
    group.finish();
}

fn bench_reloc_table_ablation(c: &mut Criterion) {
    // ABL-2: normalizing one capture via its own .reloc metadata. Faster
    // per capture (single image, table-driven) but trusts in-guest data.
    let base = 0xF712_0000u64;
    let (_, img, parsed) = capture(256 << 10, base);
    c.bench_function("rva_adjust/reloc_table_single_256", |b| {
        b.iter(|| {
            let mut image = img.clone();
            let n = normalize_with_reloc_table(&mut image, base, &parsed)
                .expect("reloc section present");
            black_box((image, n))
        });
    });
}

criterion_group!(benches, bench_adjust, bench_reloc_table_ablation);
criterion_main!(benches);
