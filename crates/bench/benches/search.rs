//! Module-Searcher wall-clock: list walk and page-wise image capture
//! through the introspection stack (symbol → list traversal → page copies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mc_vmi::VmiSession;
use modchecker::ModuleSearcher;
use modchecker_repro::testbed::Testbed;

fn bench_list_walk(c: &mut Criterion) {
    let bed = Testbed::cloud(2);
    c.bench_function("searcher/list_modules", |b| {
        b.iter(|| {
            let mut s = VmiSession::attach(&bed.hv, bed.vm_ids[0]).expect("attach");
            black_box(ModuleSearcher::list_modules(&mut s).expect("walks"))
        });
    });
}

fn bench_capture(c: &mut Criterion) {
    let bed = Testbed::cloud(2);
    let mut group = c.benchmark_group("searcher/capture");
    for module in ["ksecdd.sys", "http.sys", "ntfs.sys"] {
        let size = bed.guests[0].find_module(module).expect("in corpus").size as u64;
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(BenchmarkId::from_parameter(module), &module, |b, module| {
            b.iter(|| {
                let mut s = VmiSession::attach(&bed.hv, bed.vm_ids[0]).expect("attach");
                black_box(ModuleSearcher::find(&mut s, module).expect("found"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_list_walk, bench_capture);
criterion_main!(benches);
