//! ABL-6 — digest agility cost: MD5 (the paper's choice) vs SHA-256 on
//! module-sized inputs, plus the end-to-end impact on a pool check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use modchecker::{CheckConfig, DigestAlgo, ModChecker};
use modchecker_repro::testbed::Testbed;

fn bench_raw_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest");
    for size in [4usize << 10, 256 << 10] {
        let data: Vec<u8> = (0..size).map(|i| (i * 13 % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| mc_md5::md5(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| mc_sha2::sha256(black_box(d)));
        });
    }
    group.finish();
}

fn bench_e2e_algo(c: &mut Criterion) {
    let bed = Testbed::cloud(8);
    let mut group = c.benchmark_group("digest/e2e_pool_http_sys_8vms");
    group.sample_size(10);
    for algo in [DigestAlgo::Md5, DigestAlgo::Sha256] {
        let checker = ModChecker::with_config(CheckConfig {
            digest: algo,
            ..CheckConfig::default()
        });
        group.bench_function(algo.to_string(), |b| {
            b.iter(|| {
                black_box(
                    checker
                        .check_pool(&bed.hv, &bed.vm_ids, "http.sys")
                        .expect("check"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_throughput, bench_e2e_algo);
criterion_main!(benches);
