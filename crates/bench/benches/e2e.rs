//! End-to-end pool checks: wall-clock scaling with pool size and the
//! sequential-vs-parallel ablation (ABL-1) on real threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use modchecker::{ModChecker, ScanMode};
use modchecker_repro::testbed::Testbed;

fn bench_check_one_scaling(c: &mut Criterion) {
    let bed = Testbed::cloud(15);
    let checker = ModChecker::new();
    let mut group = c.benchmark_group("e2e/check_one_http_sys");
    group.sample_size(10);
    for n in [2usize, 5, 10, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let ids = &bed.vm_ids[..n];
            b.iter(|| {
                black_box(
                    checker
                        .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
                        .expect("check"),
                )
            });
        });
    }
    group.finish();
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let bed = Testbed::cloud(12);
    let mut group = c.benchmark_group("e2e/pool_ntfs_sys_12vms");
    group.sample_size(10);
    for (name, mode) in [
        ("sequential", ScanMode::Sequential),
        ("parallel", ScanMode::Parallel),
    ] {
        let checker = ModChecker::with_mode(mode);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    checker
                        .check_pool(&bed.hv, &bed.vm_ids, "ntfs.sys")
                        .expect("check"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_check_one_scaling,
    bench_sequential_vs_parallel
);
criterion_main!(benches);
