//! `modchecker` — command-line driver for the ModChecker reproduction.
//!
//! ```text
//! modchecker check --vms 15 --module http.sys
//! modchecker check --vms 15 --module hal.dll --infect inline-hook@3 --json
//! modchecker list-modules --vms 2
//! modchecker sweep [--loaded]
//! modchecker monitor --vms 6 --rounds 3
//! modchecker techniques
//! ```
//!
//! Every invocation builds a fresh simulated cloud (there is no persistent
//! Xen host to attach to); determinism makes runs reproducible.

use std::process::ExitCode;

use mc_attacks::Technique;
use mc_hypervisor::{AddressWidth, FaultPlan, SimDuration};
use mc_loadgen::{HeavyLoad, LoadProfile};
use mc_vmi::VmiSession;
use modchecker::{
    ContinuousMonitor, ModChecker, ModuleSearcher, MonitorConfig, MonitorEvent, RetryPolicy,
    ScanJitter, ScanMode,
};
use modchecker_repro::testbed::Testbed;

mod args;

use args::Args;

fn main() -> ExitCode {
    let mut args = Args::parse(std::env::args().skip(1));
    let command = match args.positional.first().map(String::as_str) {
        Some(c) => c.to_string(),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `fleet-check` reports integrity through its exit code (see USAGE);
    // every other command is plain success/failure.
    let result = match command.as_str() {
        "check" => cmd_check(&mut args).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(&mut args).map(|()| ExitCode::SUCCESS),
        "list-modules" => cmd_list_modules(&mut args).map(|()| ExitCode::SUCCESS),
        "listdiff" => cmd_listdiff(&mut args).map(|()| ExitCode::SUCCESS),
        "sweep" => cmd_sweep(&mut args).map(|()| ExitCode::SUCCESS),
        "sweep-all" => cmd_sweep_all(&mut args).map(|()| ExitCode::SUCCESS),
        "fleet-check" => cmd_fleet_check(&mut args),
        "serve" => cmd_serve(&mut args).map(|()| ExitCode::SUCCESS),
        "monitor" => cmd_monitor(&mut args).map(|()| ExitCode::SUCCESS),
        "validate-metrics" => cmd_validate_metrics(&mut args).map(|()| ExitCode::SUCCESS),
        "techniques" => cmd_techniques().map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
modchecker — cross-VM kernel module integrity checking (ICPP 2012 reproduction)

USAGE:
  modchecker check --vms <N> --module <NAME> [--parallel] [--width64] [--static]
                   [--infect <technique>@<vm-index>] [--sha256] [--cache] [--json]
                   [--compare pairwise|canonical] [--no-fast-capture]
                   [--retries <R>] [--deadline-ms <MS>] [--min-quorum <Q>]
                   [--fault-seed <SEED>] [--fault-rate <0..1>]
                   [--metrics-out <PATH>] [--trace-out <PATH>]
  modchecker analyze [--vms <N>] [--module <NAME>] [--width64] [--json]
                     [--infect <technique>@<vm-index>] [--hide <module>@<vm-index>]
                     [--metrics-out <PATH>]
                                         single-VM static lints (CFG, L1–L9),
                                         no reference needed
  modchecker list-modules [--vms <N>] [--width64]
  modchecker listdiff --vms <N> [--hide <module>@<vm-index>]
  modchecker sweep [--loaded]            runtime vs pool size (Fig. 7/8 preview)
  modchecker sweep-all [--vms <N>]       list-diff + content-check every module
  modchecker fleet-check [--pools <P>] [--vms-per-pool <M>] [--modules-per-pool <K>]
                         [--seed <S>] [--shards <N>] [--max-inflight-per-vm <K>]
                         [--discover] [--rounds <R>] [--compare pairwise|canonical]
                         [--no-fast-capture]
                         [--retries <R>] [--min-quorum <Q>] [--fault-seed <SEED>]
                         [--fault-rate <0..1>] [--json] [--metrics-out <PATH>]
                         [--trace-out <PATH>] [--static-prepass] [--cross-view]
                                         sharded multi-pool, multi-module sweep;
                                         --seed builds a randomized infected fleet,
                                         otherwise a clean uniform one
  modchecker serve [--pools <P>] [--vms-per-pool <M>] [--modules-per-pool <K>]
                   [--seed <S>] [--queries <N>] [--load-seed <S>] [--tenants <T>]
                   [--mean-gap-us <US>] [--burst-prob <0..1>] [--unknown-rate <0..1>]
                   [--deadline-min-ms <MS>] [--deadline-max-ms <MS>]
                   [--queue-capacity <Q>] [--quota-rate <QPS>] [--quota-burst <B>]
                   [--refresh-ms <MS>] [--freshness-ms <MS>] [--events]
                   [--shards <N>] [--max-inflight-per-vm <K>]
                   [--fault-seed <SEED>] [--fault-rate <0..1>]
                   [--json] [--metrics-out <PATH>] [--trace-out <PATH>]
                                         attestation daemon over a seeded query
                                         stream: admission quotas, bounded queue,
                                         degraded answers under faults
  modchecker monitor [--vms <N>] [--rounds <R>] [--events] [--fault-seed <SEED>]
                     [--fault-rate <0..1>] [--retries <R>] [--min-quorum <Q>]
                     [--compare pairwise|canonical] [--no-fast-capture]
                     [--scan-jitter <MAX_NS>] [--jitter-seed <SEED>]
                     [--metrics-out <PATH>]
  modchecker validate-metrics --file <PATH> --schema <PATH>
                                         validate a metrics JSON export
  modchecker techniques                  list infection techniques

Observability: --metrics-out writes the scan's metric snapshot (counters,
gauges, histograms) as JSON; --trace-out writes the simulated-time span
tree (capture → page_map/parse/hash per VM, plus the pool-level vote) as
JSONL, one span per line. Both derive from the deterministic report, so the
same seed yields byte-identical exports in sequential and parallel modes.

Comparison: --compare canonical normalizes each capture once against its own
load base via the PE .reloc table and majority-votes by digest bucket — O(t)
instead of the O(t²) pairwise matrix; reloc-less modules fall back to
pairwise automatically.

Capture: the scatter-gather fast path (per-session translate cache, one
batched copy per physical run, leaf-level cache refreshes) is on by default;
--no-fast-capture restores the paper's page-by-page loop for ablation —
verdicts are byte-identical either way.

Chaos: --fault-seed/--fault-rate inject deterministic transient read faults
into every VM (same seed ⇒ same faults ⇒ same report); --retries bounds the
per-read retry budget, --deadline-ms the per-VM simulated capture time, and
--min-quorum how many captured VMs the majority vote needs to carry weight.

Exit codes: fleet-check exits 0 when every unit is clean, 2 when any VM is a
vote suspect or statically flagged, 3 when there are no findings but the fleet
cannot vouch for itself (a unit failed or lost its scan quorum), and 1 on
usage or internal errors. Other commands exit 0/1.

Serving: serve builds the fleet (same --pools/--seed knobs as fleet-check),
generates a seeded open-loop query stream, and runs the attestation daemon:
per-tenant token-bucket quotas, a bounded admission queue with typed
rejections, health-based routing around quarantined VMs, and degraded
(stale/unscannable) answers when fresh state cannot be had within the
deadline. Same seeds ⇒ byte-identical report, regardless of --shards.

Push monitoring: --events (monitor, serve) arms EPT-style write traps over
every scanned module's page span and switches rounds to push mode — quiet
(vm, module) pairs are attested straight from the capture cache with zero
guest reads; only pairs dirtied by trapped writes rescan. Verdicts are
identical to polling; steady-state clean rounds cost near nothing.

Active adversaries: fleet-check --cross-view reconciles each pool's in-guest
module lists against a pool-wide physical PE-header sweep and majority-votes
the differences — catching DKOM unlinking (hidden modules) and checker
blinding (unlisted images the redirected list no longer claims); findings
count as integrity findings for the exit code. monitor --scan-jitter MAX_NS
draws a per-round scan-phase offset in [0, MAX_NS) from --jitter-seed
(default 42), denying scrub-race rootkits a learnable cadence; offsets only
move the simulated schedule, so verdicts stay byte-identical.

Static pre-pass: fleet-check --static-prepass (and check --static) runs the
CFG analyzer (lints L1–L9) once per content bucket on top of the canonical
vote, catching vote-invisible tampering such as the IAT pivot; analyze
--metrics-out exports the analyzer's counters.

Techniques: opcode-replacement, inline-hook, stub-modification, dll-hook,
jump-over-junk, iat-pivot, overlapping-decode";

/// Parses the shared chaos flags into an optional [`FaultPlan`] covering
/// every VM. Injection engages when either `--fault-seed` or
/// `--fault-rate` is present (seed defaults to 42, rate to 0.05).
fn fault_plan_of(args: &Args) -> Result<Option<FaultPlan>, String> {
    let seed = args.value("fault-seed")?;
    let rate = match args.raw_value("fault-rate") {
        None => None,
        Some(v) => {
            let r: f64 = v
                .parse()
                .map_err(|_| format!("--fault-rate expects a number in [0,1), got {v:?}"))?;
            if !(0.0..1.0).contains(&r) {
                return Err(format!("--fault-rate must be in [0,1), got {r}"));
            }
            Some(r)
        }
    };
    if seed.is_none() && rate.is_none() {
        return Ok(None);
    }
    Ok(Some(FaultPlan::transient(
        seed.unwrap_or(42) as u64,
        rate.unwrap_or(0.05),
    )))
}

/// Parses `--retries`, `--deadline-ms`, `--min-quorum`, and `--compare`
/// onto a base [`modchecker::CheckConfig`].
fn chaos_config_of(
    args: &Args,
    mut config: modchecker::CheckConfig,
) -> Result<modchecker::CheckConfig, String> {
    config.compare = match args.raw_value("compare") {
        None | Some("pairwise") => modchecker::CompareStrategy::Pairwise,
        Some("canonical") => modchecker::CompareStrategy::Canonical,
        Some(other) => {
            return Err(format!(
                "--compare expects pairwise or canonical, got {other:?}"
            ))
        }
    };
    if let Some(r) = args.value("retries")? {
        config.retry = RetryPolicy::with_max_retries(r as u32);
    }
    if let Some(ms) = args.value("deadline-ms")? {
        config.deadline = Some(SimDuration::from_millis(ms as u64));
    }
    if let Some(q) = args.value("min-quorum")? {
        config.min_quorum = q;
    }
    // The fast path is the default; the flag is the ablation switch back
    // to the paper's page-by-page capture loop.
    config.fast_capture = !args.flag("no-fast-capture");
    Ok(config)
}

fn parse_technique(s: &str) -> Result<Technique, String> {
    match s {
        "opcode-replacement" => Ok(Technique::OpcodeReplacement),
        "inline-hook" => Ok(Technique::InlineHook),
        "stub-modification" => Ok(Technique::StubModification),
        "dll-hook" => Ok(Technique::DllHook),
        "jump-over-junk" => Ok(Technique::JumpOverJunk),
        "iat-pivot" => Ok(Technique::IatPivot),
        "overlapping-decode" => Ok(Technique::OverlappingDecode),
        other => Err(format!(
            "unknown technique {other:?} (see `modchecker techniques`)"
        )),
    }
}

fn width_of(args: &Args) -> AddressWidth {
    if args.flag("width64") {
        AddressWidth::W64
    } else {
        AddressWidth::W32
    }
}

fn build_bed(args: &mut Args) -> Result<(Testbed, Option<String>), String> {
    let n = args.value("vms")?.unwrap_or(5);
    if n < 2 {
        return Err("--vms must be at least 2".into());
    }
    let width = width_of(args);
    let corpus = mc_pe::corpus::standard_corpus(width);
    match args.raw_value("infect") {
        None => Ok((Testbed::cloud_with(n, width, &corpus), None)),
        Some(spec) => {
            let (tech, idx) = spec
                .split_once('@')
                .ok_or_else(|| format!("--infect expects <technique>@<vm-index>, got {spec:?}"))?;
            let technique = parse_technique(tech)?;
            let victim: usize = idx
                .parse()
                .map_err(|_| format!("bad vm index {idx:?} in --infect"))?;
            if victim >= n {
                return Err(format!("vm index {victim} out of range (0..{n})"));
            }
            let (bed, _) = Testbed::infected_cloud_with(n, width, &corpus, technique, &[victim])
                .map_err(|e| e.to_string())?;
            Ok((bed, Some(technique.infection().target_module().to_string())))
        }
    }
}

fn cmd_check(args: &mut Args) -> Result<(), String> {
    let (mut bed, infected_target) = build_bed(args)?;
    let module = args
        .raw_value("module")
        .map(str::to_string)
        .or(infected_target)
        .ok_or("--module is required (or implied by --infect)")?;
    if let Some(plan) = fault_plan_of(args)? {
        bed.hv.inject_fault_plan(plan);
    }
    let config = chaos_config_of(
        args,
        modchecker::CheckConfig {
            mode: if args.flag("parallel") {
                ScanMode::Parallel
            } else {
                ScanMode::Sequential
            },
            page_cache: args.flag("cache"),
            digest: if args.flag("sha256") {
                modchecker::DigestAlgo::Sha256
            } else {
                modchecker::DigestAlgo::Md5
            },
            static_prepass: args.flag("static"),
            ..modchecker::CheckConfig::default()
        },
    )?;
    let metrics_out = args.raw_value("metrics-out").map(str::to_string);
    let trace_out = args.raw_value("trace-out").map(str::to_string);
    let report = ModChecker::with_config(config)
        .check_pool(&bed.hv, &bed.vm_ids, &module)
        .map_err(|e| e.to_string())?;

    if metrics_out.is_some() || trace_out.is_some() {
        let obs = modchecker::observe_scan(&report);
        if let Some(path) = &metrics_out {
            let text = serde_json::to_string_pretty(&obs.registry.to_json()).expect("serializable");
            std::fs::write(path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, obs.trace.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).expect("serializable")
        );
    } else {
        print!("{report}");
    }
    Ok(())
}

/// Parses `--hide <module>@<vm-index>` and, when present, DKOM-hides the
/// module on that guest. Validates the module name before touching the
/// guest (`GuestOs::dkom_hide` panics on unknown modules by design).
fn apply_hide(args: &mut Args, bed: &mut Testbed) -> Result<(), String> {
    let Some(spec) = args.raw_value("hide") else {
        return Ok(());
    };
    let (module, idx) = spec
        .split_once('@')
        .ok_or_else(|| format!("--hide expects <module>@<vm-index>, got {spec:?}"))?;
    let victim: usize = idx.parse().map_err(|_| format!("bad index {idx:?}"))?;
    if victim >= bed.guests.len() {
        return Err(format!("vm index {victim} out of range"));
    }
    if bed.guests[victim].find_module(module).is_none() {
        return Err(format!(
            "unknown module {module:?} on vm {victim} (see `modchecker list-modules`)"
        ));
    }
    let module = module.to_string();
    bed.guests[victim]
        .dkom_hide(&mut bed.hv, &module)
        .map_err(|e| e.to_string())
}

fn cmd_analyze(args: &mut Args) -> Result<(), String> {
    let (mut bed, infected_target) = build_bed(args)?;
    apply_hide(args, &mut bed)?;
    let only_module = args
        .raw_value("module")
        .map(str::to_string)
        .or(infected_target);
    let analyzer = mc_analysis::Analyzer::new();

    let mut reports: Vec<mc_analysis::AnalysisReport> = Vec::new();
    let mut target_captures = 0usize;
    for &vm in &bed.vm_ids {
        let mut session = VmiSession::attach(&bed.hv, vm).map_err(|e| e.to_string())?;
        reports.push(
            analyzer
                .analyze_module_list(&mut session)
                .map_err(|e| e.to_string())?,
        );
        let targets: Vec<String> = match &only_module {
            Some(m) => vec![m.clone()],
            None => ModuleSearcher::list_modules(&mut session)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|m| m.name)
                .collect(),
        };
        for name in targets {
            // A module hidden on this VM is the list report's finding, not
            // a capture error.
            let Ok(image) = ModuleSearcher::find(&mut session, &name) else {
                continue;
            };
            target_captures += 1;
            reports.push(
                analyzer
                    .analyze_image(&image.vm_name, &name, image.base, &image.bytes)
                    .map_err(|e| e.to_string())?,
            );
        }
    }
    if let Some(m) = &only_module {
        if target_captures == 0 {
            return Err(format!(
                "module {m:?} not found on any VM (see `modchecker list-modules`)"
            ));
        }
    }

    let mut flagged: Vec<&str> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| r.vm_name.as_str())
        .collect();
    flagged.sort_unstable();
    flagged.dedup();

    if let Some(path) = args.raw_value("metrics-out").map(str::to_string) {
        let mut reg = mc_obs::MetricsRegistry::new();
        reg.counter_add("analysis_runs_total", reports.len() as u64);
        reg.counter_add("analysis_flagged_vms_total", flagged.len() as u64);
        reg.counter_add(
            "analysis_findings_total",
            reports.iter().map(|r| r.diagnostics.len() as u64).sum(),
        );
        reg.counter_add(
            "analysis_instructions_decoded_total",
            reports.iter().map(|r| r.instructions_decoded as u64).sum(),
        );
        reg.counter_add(
            "analysis_bytes_scanned_total",
            reports.iter().map(|r| r.bytes_scanned as u64).sum(),
        );
        let text = serde_json::to_string_pretty(&reg.to_json()).expect("serializable");
        std::fs::write(&path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
    }

    if args.flag("json") {
        let json = serde_json::json!({
            "flagged_vms": flagged,
            "reports": reports.iter().map(|r| serde_json::json!({
                "vm": r.vm_name,
                "module": r.module,
                "clean": r.is_clean(),
                "instructions_decoded": r.instructions_decoded,
                "bytes_scanned": r.bytes_scanned,
                "diagnostics": r.diagnostics.iter().map(|d| serde_json::json!({
                    "lint": d.lint.code(),
                    "name": d.lint.name(),
                    "severity": d.severity.to_string(),
                    "confidence": d.confidence.to_string(),
                    "va": format!("{:#x}", d.va),
                    "detail": d.detail,
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&json).expect("serializable")
        );
    } else {
        let clean = reports.iter().filter(|r| r.is_clean()).count();
        println!(
            "static analysis: {} subject(s) across {} VM(s), {} clean",
            reports.len(),
            bed.vm_ids.len(),
            clean
        );
        for r in reports.iter().filter(|r| !r.is_clean()) {
            print!("{r}");
        }
        if flagged.is_empty() {
            println!("no findings");
        } else {
            println!("flagged VMs: {}", flagged.join(", "));
        }
    }
    Ok(())
}

fn cmd_list_modules(args: &mut Args) -> Result<(), String> {
    let n = args.value("vms")?.unwrap_or(2);
    let bed = Testbed::cloud_with(
        n.max(2),
        width_of(args),
        &mc_pe::corpus::standard_corpus(width_of(args)),
    );
    let mut session = VmiSession::attach(&bed.hv, bed.vm_ids[0]).map_err(|e| e.to_string())?;
    let modules = ModuleSearcher::list_modules(&mut session).map_err(|e| e.to_string())?;
    println!("{:<18} {:>18} {:>10}", "module", "base", "size");
    for m in modules {
        println!("{:<18} {:>#18x} {:>10}", m.name, m.base, m.size);
    }
    Ok(())
}

fn cmd_listdiff(args: &mut Args) -> Result<(), String> {
    let n = args.value("vms")?.unwrap_or(5);
    let mut bed = Testbed::cloud_with(
        n.max(2),
        width_of(args),
        &mc_pe::corpus::standard_corpus(width_of(args)),
    );
    apply_hide(args, &mut bed)?;
    let report = modchecker::ListDiff::scan(&bed.hv, &bed.vm_ids).map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}

fn cmd_sweep_all(args: &mut Args) -> Result<(), String> {
    let n = args.value("vms")?.unwrap_or(5);
    let bed = Testbed::cloud_with(
        n.max(2),
        width_of(args),
        &mc_pe::corpus::standard_corpus(width_of(args)),
    );
    let (lists, reports) = ModChecker::with_mode(ScanMode::Parallel)
        .check_all_modules(&bed.hv, &bed.vm_ids)
        .map_err(|e| e.to_string())?;
    print!("{lists}");
    println!("content checks over {} consensus module(s):", reports.len());
    for (module, result) in &reports {
        match result {
            Ok(report) => {
                let verdict = if report.all_clean() {
                    "clean".to_string()
                } else {
                    let suspects: Vec<String> =
                        report.suspects().map(|v| v.vm_name.clone()).collect();
                    format!("DISCREPANCY {suspects:?}")
                };
                println!("  {module:<16} {verdict}  ({})", report.times);
            }
            Err(e) => println!("  {module:<16} CHECK FAILED: {e}"),
        }
    }
    Ok(())
}

fn cmd_fleet_check(args: &mut Args) -> Result<ExitCode, String> {
    let pools = args.value("pools")?.unwrap_or(3);
    let vms = args.value("vms-per-pool")?.unwrap_or(4);
    let modules = args.value("modules-per-pool")?.unwrap_or(2);
    let shards = args.value("shards")?.unwrap_or(1).max(1);
    let inflight = args.value("max-inflight-per-vm")?.unwrap_or(1).max(1);
    let rounds = args.value("rounds")?.unwrap_or(1).max(1);
    if pools < 1 {
        return Err("--pools must be at least 1".into());
    }
    if vms < 2 {
        return Err("--vms-per-pool must be at least 2".into());
    }

    // --seed builds the randomized infected topology the simulation suite
    // uses; without it the fleet is a clean uniform cloud.
    let mut bed = match args.value("seed")? {
        Some(s) => modchecker_repro::fleetgen::random_fleet(s as u64),
        None => modchecker_repro::fleetgen::uniform_fleet(pools, vms, modules, 1),
    };
    if let Some(plan) = fault_plan_of(args)? {
        bed.hv.inject_fault_plan(plan);
    }
    let fleet = if args.flag("discover") {
        let ids: Vec<_> = bed.fleet.pools.iter().flat_map(|p| p.vms.clone()).collect();
        modchecker::Fleet::discover(&bed.hv, &ids)
    } else {
        bed.fleet
    };

    let mut check = chaos_config_of(args, modchecker::CheckConfig::default())?;
    check.static_prepass = args.flag("static-prepass");
    let sched = modchecker::FleetScheduler::new(modchecker::FleetConfig {
        check,
        shards,
        max_inflight_per_vm: inflight,
    });
    let monitor = ContinuousMonitor::new(MonitorConfig {
        check,
        ..MonitorConfig::default()
    });
    let mut last = None;
    for round in 0..rounds {
        let report = monitor.run_fleet_round(&bed.hv, &sched, &fleet);
        if rounds > 1 {
            println!(
                "round {round}: {} unit(s), {} failed, {} suspect pair(s)",
                report.units_total(),
                report.units_failed(),
                report.suspects().len()
            );
        }
        last = Some(report);
    }
    let report = last.expect("rounds >= 1");

    // Cross-view reconciliation: the list walk an adversary can rewrite vs
    // the physical header sweep it cannot — one voted pass per pool.
    let crossview = if args.flag("cross-view") {
        let mut passes = Vec::new();
        for pool in &fleet.pools {
            if pool.vms.len() < 2 {
                continue;
            }
            let cv = monitor
                .run_crossview(&bed.hv, &pool.vms)
                .map_err(|e| format!("cross-view {}: {e}", pool.name))?;
            passes.push((pool.name.clone(), cv));
        }
        Some(passes)
    } else {
        None
    };

    if args.raw_value("metrics-out").is_some() || args.raw_value("trace-out").is_some() {
        let mut obs = modchecker::observe_fleet(&report);
        if args.flag("static-prepass") {
            let stats = sched.analysis_stats();
            obs.registry.gauge_set("analysis_runs", stats.runs as f64);
            obs.registry.gauge_set("analysis_hits", stats.hits as f64);
        }
        if let Some(passes) = &crossview {
            for (_, cv) in passes {
                cv.record_metrics(&mut obs.registry);
            }
        }
        if let Some(path) = args.raw_value("metrics-out").map(str::to_string) {
            let text = serde_json::to_string_pretty(&obs.registry.to_json()).expect("serializable");
            std::fs::write(&path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        }
        if let Some(path) = args.raw_value("trace-out").map(str::to_string) {
            std::fs::write(&path, obs.trace.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).expect("serializable")
        );
    } else {
        print!("{report}");
        println!(
            "simulated wall: {} sequential, {} at {shards} shard(s)",
            report.simulated_wall_sequential(),
            modchecker::simulated_fleet_wall(&report, shards)
        );
    }
    if let Some(passes) = &crossview {
        for (pool, cv) in passes {
            if cv.is_clean() {
                eprintln!(
                    "cross-view {pool}: clean ({} VM(s) scanned)",
                    cv.vms_scanned
                );
            } else {
                eprint!("cross-view {pool}: {cv}");
            }
        }
    }

    // Typed exit status so automation reads the verdict without parsing
    // output: 2 = integrity findings (vote suspects or statically flagged
    // VMs), 3 = no findings but the fleet cannot vouch for itself (a unit
    // failed outright or lost its scan quorum), 0 = clean.
    let flagged = report
        .units()
        .any(|u| matches!(&u.result, Ok(r) if !r.static_findings.is_empty()))
        || crossview
            .as_ref()
            .is_some_and(|passes| passes.iter().any(|(_, cv)| !cv.is_clean()));
    let unvouched = report.units().any(|u| match &u.result {
        Ok(r) => r.quorum == modchecker::QuorumStatus::Lost,
        Err(_) => true,
    }) || report
        .pools
        .iter()
        .any(|p| p.vm_names.len() >= 2 && p.units.is_empty());
    if !report.suspects().is_empty() || flagged {
        Ok(ExitCode::from(2))
    } else if unvouched {
        Ok(ExitCode::from(3))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Parses a float-valued `--name value` option with a default.
fn float_value(args: &Args, name: &str, default: f64) -> Result<f64, String> {
    match args.raw_value(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

/// `serve`: run the attestation daemon over a seeded open-loop query
/// stream and report every query's typed outcome.
fn cmd_serve(args: &mut Args) -> Result<(), String> {
    let pools = args.value("pools")?.unwrap_or(2).max(1);
    let vms = args.value("vms-per-pool")?.unwrap_or(4);
    let modules = args.value("modules-per-pool")?.unwrap_or(2).max(1);
    let shards = args.value("shards")?.unwrap_or(1).max(1);
    let inflight = args.value("max-inflight-per-vm")?.unwrap_or(1).max(1);
    if vms < 2 {
        return Err("--vms-per-pool must be at least 2".into());
    }
    let mut bed = match args.value("seed")? {
        Some(s) => modchecker_repro::fleetgen::random_fleet(s as u64),
        None => modchecker_repro::fleetgen::uniform_fleet(pools, vms, modules, 1),
    };
    if let Some(plan) = fault_plan_of(args)? {
        bed.hv.inject_fault_plan(plan);
    }
    let fleet = bed.fleet;

    // Query targets come from what the guests actually load; the daemon
    // re-derives its own catalog from committed sweeps and is the one
    // that says UnknownTarget.
    let mut catalog = Vec::new();
    for pool in &fleet.pools {
        let Some(&vm) = pool.vms.first() else {
            continue;
        };
        let mut session = VmiSession::attach(&bed.hv, vm).map_err(|e| e.to_string())?;
        for m in ModuleSearcher::list_modules(&mut session).map_err(|e| e.to_string())? {
            catalog.push((pool.name.clone(), m.name));
        }
    }
    if catalog.is_empty() {
        return Err("fleet has no scannable modules".into());
    }

    let defaults = mc_loadgen::QueryProfile::default();
    let profile = mc_loadgen::QueryProfile {
        seed: args.value("load-seed")?.map_or(defaults.seed, |s| s as u64),
        queries: args.value("queries")?.unwrap_or(400),
        mean_gap: args
            .value("mean-gap-us")?
            .map_or(defaults.mean_gap, |us| SimDuration::from_micros(us as u64)),
        burst_prob: float_value(args, "burst-prob", defaults.burst_prob)?,
        tenants: args.value("tenants")?.unwrap_or(defaults.tenants).max(1),
        deadline_min: args
            .value("deadline-min-ms")?
            .map_or(defaults.deadline_min, |ms| {
                SimDuration::from_millis(ms as u64)
            }),
        deadline_max: args
            .value("deadline-max-ms")?
            .map_or(defaults.deadline_max, |ms| {
                SimDuration::from_millis(ms as u64)
            }),
        unknown_rate: float_value(args, "unknown-rate", defaults.unknown_rate)?,
    };
    let queries = mc_loadgen::generate(&profile, &catalog);

    let check = chaos_config_of(args, modchecker::CheckConfig::default())?;
    let serve_defaults = modchecker::ServeConfig::default();
    let config = modchecker::ServeConfig {
        fleet: modchecker::FleetConfig {
            check,
            shards,
            max_inflight_per_vm: inflight,
        },
        queue_capacity: args
            .value("queue-capacity")?
            .unwrap_or(serve_defaults.queue_capacity),
        quota: modchecker::QuotaPolicy {
            rate_per_sec: float_value(args, "quota-rate", serve_defaults.quota.rate_per_sec)?,
            burst: float_value(args, "quota-burst", serve_defaults.quota.burst)?,
        },
        refresh_interval: args
            .value("refresh-ms")?
            .map_or(serve_defaults.refresh_interval, |ms| {
                SimDuration::from_millis(ms as u64)
            }),
        freshness_window: args
            .value("freshness-ms")?
            .map_or(serve_defaults.freshness_window, |ms| {
                SimDuration::from_millis(ms as u64)
            }),
        events: args.flag("events"),
        ..serve_defaults
    };
    let server = modchecker::AttestServer::new(config);
    if config.events {
        let frames = server
            .arm_events(&mut bed.hv, &fleet)
            .map_err(|e| e.to_string())?;
        eprintln!("events: armed write traps over {frames} guest frame(s)");
    }
    let report = server.run(&bed.hv, &fleet, &queries);

    if args.raw_value("metrics-out").is_some() || args.raw_value("trace-out").is_some() {
        let obs = modchecker::observe_serve(&report);
        if let Some(path) = args.raw_value("metrics-out").map(str::to_string) {
            let text = serde_json::to_string_pretty(&obs.registry.to_json()).expect("serializable");
            std::fs::write(&path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        }
        if let Some(path) = args.raw_value("trace-out").map(str::to_string) {
            std::fs::write(&path, obs.trace.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).expect("serializable")
        );
    } else {
        print!("{report}");
    }
    Ok(())
}

fn cmd_sweep(args: &mut Args) -> Result<(), String> {
    let loaded = args.flag("loaded");
    let mut bed = Testbed::cloud(15);
    let checker = ModChecker::new();
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "N", "searcher", "parser", "checker", "total"
    );
    for n in 2..=15usize {
        let ids: Vec<_> = bed.vm_ids[..n].to_vec();
        let mut load = HeavyLoad::new();
        if loaded {
            load.start(&mut bed.hv, &ids, LoadProfile::heavy())
                .map_err(|e| e.to_string())?;
        }
        let report = checker
            .check_one(&bed.hv, ids[0], &ids[1..], "http.sys")
            .map_err(|e| e.to_string())?;
        if loaded {
            load.stop(&mut bed.hv).map_err(|e| e.to_string())?;
        }
        println!(
            "{:>4} {:>14} {:>14} {:>14} {:>14}",
            n,
            format!("{}", report.times.searcher),
            format!("{}", report.times.parser),
            format!("{}", report.times.checker),
            format!("{}", report.times.total()),
        );
    }
    Ok(())
}

fn cmd_monitor(args: &mut Args) -> Result<(), String> {
    let n = args.value("vms")?.unwrap_or(6);
    let rounds = args.value("rounds")?.unwrap_or(3);
    let mut bed = Testbed::cloud(n.max(2));
    if let Some(plan) = fault_plan_of(args)? {
        bed.hv.inject_fault_plan(plan);
    }
    let check = chaos_config_of(
        args,
        modchecker::CheckConfig {
            mode: ScanMode::Parallel,
            ..modchecker::CheckConfig::default()
        },
    )?;
    let scan_jitter = match args.value("scan-jitter")? {
        Some(max_ns) => Some(ScanJitter {
            seed: args.value("jitter-seed")?.unwrap_or(42) as u64,
            max_ns: max_ns as u64,
        }),
        None => None,
    };
    let mut monitor = ContinuousMonitor::new(MonitorConfig {
        modules: vec!["hal.dll".into(), "http.sys".into(), "tcpip.sys".into()],
        check,
        scan_jitter,
        ..MonitorConfig::default()
    });
    if scan_jitter.is_some() {
        // Draw every round's phase up front: the offsets only move the
        // simulated schedule (verdicts are phase-independent), so showing
        // the schedule and recording the jitter metrics is the whole job.
        for r in 0..rounds {
            let ctx = monitor.round_ctx(r, 1_000_000_000);
            eprintln!(
                "jitter: round {r} scans at +{} ns into its period",
                ctx.scan_offset_ns
            );
        }
    }
    let (tx, rx) = crossbeam::channel::unbounded();
    if args.flag("events") {
        let frames = monitor
            .arm_events(&mut bed.hv, &bed.vm_ids)
            .map_err(|e| e.to_string())?;
        eprintln!("events: armed write traps over {frames} guest frame(s)");
        monitor.run_events(&bed.hv, &bed.vm_ids, rounds, &tx);
    } else {
        monitor.run(&bed.hv, &bed.vm_ids, rounds, &tx);
    }
    drop(tx);
    for event in rx.iter() {
        match event {
            MonitorEvent::Clean { round, module } => {
                println!("round {round}: {module:<12} clean");
            }
            MonitorEvent::Degraded {
                round,
                module,
                report,
            } => {
                let out: Vec<String> = report.unscannable().map(|v| v.vm_name.clone()).collect();
                println!(
                    "round {round}: {module:<12} degraded ({} quorum, unscannable {out:?})",
                    report.quorum
                );
            }
            MonitorEvent::Discrepancy {
                round,
                module,
                report,
            } => {
                let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
                println!("round {round}: {module:<12} DISCREPANCY {suspects:?}");
            }
            MonitorEvent::Failed {
                round,
                module,
                error,
            } => {
                println!("round {round}: {module:<12} error: {error}");
            }
            MonitorEvent::VmQuarantined {
                round,
                vm_name,
                consecutive_failures,
            } => {
                println!(
                    "round {round}: breaker OPEN for {vm_name} after {consecutive_failures} failed round(s)"
                );
            }
            MonitorEvent::VmRestored { round, vm_name } => {
                println!("round {round}: breaker half-open, re-probing {vm_name}");
            }
        }
    }
    if let Some(path) = args.raw_value("metrics-out").map(str::to_string) {
        let text =
            serde_json::to_string_pretty(&monitor.metrics().to_json()).expect("serializable");
        std::fs::write(&path, text + "\n").map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Validates a `--metrics-out` export against a JSON schema file — the CI
/// gate that keeps the exporter's shape stable.
fn cmd_validate_metrics(args: &mut Args) -> Result<(), String> {
    let file = args
        .raw_value("file")
        .ok_or("--file is required")?
        .to_string();
    let schema_path = args
        .raw_value("schema")
        .ok_or("--schema is required")?
        .to_string();
    let doc_text = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let schema_text =
        std::fs::read_to_string(&schema_path).map_err(|e| format!("reading {schema_path}: {e}"))?;
    let doc = serde_json::from_str(&doc_text).map_err(|e| format!("{file}: {e}"))?;
    let schema = serde_json::from_str(&schema_text).map_err(|e| format!("{schema_path}: {e}"))?;
    match mc_obs::schema::validate(&doc, &schema) {
        Ok(()) => {
            println!("{file}: valid against {schema_path}");
            Ok(())
        }
        Err(errors) => Err(format!(
            "{file}: {} schema violation(s):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )),
    }
}

fn cmd_techniques() -> Result<(), String> {
    println!(
        "{:<22} {:<16} {:<10} paper-reported mismatches",
        "technique", "target", "static"
    );
    for t in Technique::COMPLETE {
        let inf = t.infection();
        let flag = match t {
            Technique::OpcodeReplacement => "opcode-replacement",
            Technique::InlineHook => "inline-hook",
            Technique::StubModification => "stub-modification",
            Technique::DllHook => "dll-hook",
            Technique::JumpOverJunk => "jump-over-junk",
            Technique::IatPivot => "iat-pivot",
            Technique::OverlappingDecode => "overlapping-decode",
        };
        let expect: Vec<String> = inf
            .expected_mismatches()
            .iter()
            .map(|e| match e {
                mc_attacks::Expectation::Part(p) => p.to_string(),
                mc_attacks::Expectation::AllSectionHeaders => "all SECTION_HEADERs".to_string(),
            })
            .collect();
        println!(
            "{:<22} {:<16} {:<10} {}",
            flag,
            inf.target_module(),
            inf.statically_detectable().unwrap_or("—"),
            expect.join(", ")
        );
    }
    Ok(())
}
