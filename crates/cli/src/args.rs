//! Minimal argument parsing (flags, `--key value` pairs, positionals) —
//! enough for the CLI without an external dependency.

use std::collections::HashMap;

/// Parsed command line.
pub struct Args {
    /// Positional arguments in order (the subcommand is `positional[0]`).
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of raw arguments. `--key value` becomes an
    /// option; a `--key` followed by another `--` token (or nothing) is a
    /// flag.
    pub fn parse(raw: impl Iterator<Item = String>) -> Self {
        let raw: Vec<String> = raw.collect();
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    options.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Args {
            positional,
            options,
            flags,
        }
    }

    /// True if the bare flag was present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Raw string value of `--name value`.
    pub fn raw_value(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parsed numeric value of `--name value`.
    pub fn value(&self, name: &str) -> Result<Option<usize>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn mixed_arguments() {
        let a = parse("check --vms 15 --module http.sys --parallel");
        assert_eq!(a.positional, vec!["check"]);
        assert_eq!(a.value("vms").unwrap(), Some(15));
        assert_eq!(a.raw_value("module"), Some("http.sys"));
        assert!(a.flag("parallel"));
        assert!(!a.flag("json"));
    }

    #[test]
    fn flag_before_option() {
        let a = parse("check --json --vms 4");
        assert!(a.flag("json"));
        assert_eq!(a.value("vms").unwrap(), Some(4));
    }

    #[test]
    fn bad_number_is_error() {
        let a = parse("check --vms lots");
        assert!(a.value("vms").is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("sweep --loaded");
        assert!(a.flag("loaded"));
    }
}
