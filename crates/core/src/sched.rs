//! Fleet scan scheduler: sharded, batched multi-module sweeps.
//!
//! The paper scans one module across t clones of a single image. A
//! production cloud is a *fleet*: many pools (images), each with many
//! consensus modules, swept continuously. This module turns that into a
//! scheduling problem over `(pool, module)` work units:
//!
//! 1. **Shard the cloud into pools.** [`Fleet::discover`] groups VMs by
//!    module-list signature (same image ⇒ same loaded-module set), or the
//!    caller provides explicit [`PoolSpec`]s.
//! 2. **Expand work units.** Each pool's [`crate::listdiff::ListDiff`]
//!    scan yields its consensus module set; every consensus module becomes
//!    one `(pool, module)` unit.
//! 3. **Prioritize.** Units dispatch hot-first (modules that were suspects
//!    in an earlier sweep by the same [`FleetScheduler`]), then by image
//!    size descending (big captures first — classic LPT), then by name.
//!    The order is a pure function of scheduler state, never of timing.
//! 4. **Execute.** Pools are assigned to shards by longest-processing-time
//!    (LPT) over an estimated cost; shards run on the rayon pool, and
//!    within a pool units dispatch in batches of `max_inflight_per_vm` —
//!    every unit in a batch touches all of the pool's VMs, so the batch
//!    width *is* the per-VM in-flight bound.
//!
//! **Determinism.** Each unit's [`crate::report::PoolCheckReport`] is a
//! pure function of (cloud state, fault seed, check config): fault streams
//! are derived per `(plan seed, VM id)` at session attach, and within one
//! sweep each `(VM, module)` capture-cache key is owned by exactly one
//! unit. Execution order therefore cannot change any unit's bytes, and
//! results are always assembled in canonical (pool, priority) order — so a
//! fixed `--fault-seed` yields byte-identical [`FleetReport`] JSON for
//! sequential, parallel and sharded runs. The golden tests pin this.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use mc_hypervisor::{Hypervisor, SimDuration, VmId};
use mc_vmi::VmiSession;

use crate::error::CheckError;
use crate::events::EventPlane;
use crate::listdiff::{ListDiff, ListDiffReport};
use crate::pool::{
    AnalysisCache, AnalysisCacheStats, CacheStats, CaptureCache, CheckConfig, ModChecker,
};
use crate::report::{FleetPoolReport, FleetReport, FleetUnitReport, PoolCheckReport};
use crate::searcher::ModuleSearcher;

/// One pool: a named group of VMs presumed to run the same image.
#[derive(Clone, Debug)]
pub struct PoolSpec {
    /// Pool name — the image identity. Keys the scheduler's per-pool
    /// capture cache and suspect history.
    pub name: String,
    /// Member VMs, pool order.
    pub vms: Vec<VmId>,
}

/// A cloud carved into pools, plus the VMs that fit nowhere.
#[derive(Clone, Debug, Default)]
pub struct Fleet {
    /// The pools, in founding order.
    pub pools: Vec<PoolSpec>,
    /// VMs excluded from every pool, as `(vm_name, reason)`.
    pub unassigned: Vec<(String, String)>,
}

impl Fleet {
    /// Builds a fleet from explicit pool specs (topology known a priori —
    /// the common case when the cloud manager tracks image lineage).
    pub fn from_pools(pools: Vec<PoolSpec>) -> Self {
        Fleet {
            pools,
            unassigned: Vec::new(),
        }
    }

    /// Total VMs across all pools.
    pub fn vm_count(&self) -> usize {
        self.pools.iter().map(|p| p.vms.len()).sum()
    }

    /// Discovers pools from module-list topology: VMs whose loaded-module
    /// sets overlap (Jaccard ≥ 0.5 against the group's founding member)
    /// share an image. VMs with unreadable lists, and groups of one (no
    /// peer to vote against), land in `unassigned`.
    ///
    /// Deterministic: VMs are considered in input order and ties never
    /// arise (a VM joins the *best*-overlapping group, first-founded wins
    /// on equal score).
    pub fn discover(hv: &Hypervisor, vms: &[VmId]) -> Fleet {
        let mut groups: Vec<(BTreeSet<String>, Vec<VmId>)> = Vec::new();
        let mut unassigned = Vec::new();
        for &vm in vms {
            let vm_name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
            let listed = VmiSession::attach(hv, vm)
                .map_err(CheckError::from)
                .and_then(|mut s| ModuleSearcher::list_modules(&mut s));
            match listed {
                Ok(modules) => {
                    let sig: BTreeSet<String> =
                        modules.iter().map(|m| m.name.to_lowercase()).collect();
                    // Best-overlapping group; first-founded wins ties
                    // (strict `>`), so assignment is deterministic.
                    let mut best: Option<(usize, f64)> = None;
                    for (gi, (group_sig, _)) in groups.iter().enumerate() {
                        let score = jaccard(group_sig, &sig);
                        if best.is_none_or(|(_, s)| score > s) {
                            best = Some((gi, score));
                        }
                    }
                    match best.filter(|&(_, score)| score >= 0.5) {
                        Some((gi, _)) => groups[gi].1.push(vm),
                        None => groups.push((sig, vec![vm])),
                    }
                }
                Err(e) => unassigned.push((vm_name, format!("unreadable module list: {e}"))),
            }
        }
        let mut pools = Vec::new();
        for (gi, (_, members)) in groups.into_iter().enumerate() {
            if members.len() < 2 {
                for vm in members {
                    let name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
                    unassigned.push((name, "no peer shares this image".to_string()));
                }
            } else {
                pools.push(PoolSpec {
                    name: format!("pool{gi}"),
                    vms: members,
                });
            }
        }
        Fleet { pools, unassigned }
    }
}

#[allow(clippy::cast_precision_loss)]
fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0 // two empty signatures are the same (degenerate) image
    } else {
        inter as f64 / union as f64
    }
}

/// Fleet scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Per-unit check configuration (mode, compare strategy, retries…).
    pub check: CheckConfig,
    /// Number of shards pools are spread over. `1` = fully sequential.
    pub shards: usize,
    /// Maximum units dispatched concurrently within one pool. Every unit
    /// touches all of the pool's VMs, so this bounds in-flight units per
    /// VM. `1` = units run strictly one at a time per pool.
    pub max_inflight_per_vm: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            check: CheckConfig::default(),
            shards: 1,
            max_inflight_per_vm: 1,
        }
    }
}

/// One expanded `(pool, module)` work unit, pre-dispatch.
#[derive(Clone, Debug)]
struct WorkUnit {
    module: String,
    size: u64,
    hot: bool,
}

/// The fleet scan scheduler.
///
/// Holds cross-sweep state: one [`CaptureCache`] per pool (so repeated
/// sweeps reuse page generations) and the suspect history that drives
/// hot-first unit priority. Sweeps take `&self`; internal state is behind
/// mutexes so a sweep can run from the rayon pool.
#[derive(Debug, Default)]
pub struct FleetScheduler {
    checker: ModChecker,
    config: FleetConfig,
    caches: Mutex<HashMap<String, Arc<Mutex<CaptureCache>>>>,
    analysis_caches: Mutex<HashMap<String, Arc<Mutex<AnalysisCache>>>>,
    history: Mutex<HashSet<(String, String)>>,
    /// Last successful list scan per pool, reused by
    /// [`FleetScheduler::sweep_with_trust`] when every member VM is armed
    /// and event-quiet. Watches cover the armed module *images*, not the
    /// LDR list nodes, so reuse trades list-walk cost for staleness of the
    /// list itself; any dirty or unarmed VM forces a fresh list scan, and
    /// plain [`FleetScheduler::sweep`] never consults this cache.
    last_listings: Mutex<HashMap<String, ListDiffReport>>,
}

impl FleetScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetScheduler {
            checker: ModChecker::with_config(config.check),
            config,
            caches: Mutex::new(HashMap::new()),
            analysis_caches: Mutex::new(HashMap::new()),
            history: Mutex::new(HashSet::new()),
            last_listings: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Current suspect history as sorted `(pool, module)` pairs.
    pub fn suspect_history(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .history
            .lock()
            .map(|h| h.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Aggregated capture-cache statistics across every pool cache.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        if let Ok(caches) = self.caches.lock() {
            for cache in caches.values() {
                if let Ok(c) = cache.lock() {
                    let s = c.stats();
                    total.hits += s.hits;
                    total.misses += s.misses;
                    total.invalidations += s.invalidations;
                    total.evictions += s.evictions;
                }
            }
        }
        total
    }

    /// Aggregated static-analysis cache statistics across every pool cache.
    /// `runs` counts real lint-engine invocations: the per-bucket pre-pass
    /// acceptance bound ("≤ one run per content bucket per unit") is pinned
    /// against this.
    pub fn analysis_stats(&self) -> AnalysisCacheStats {
        let mut total = AnalysisCacheStats::default();
        if let Ok(caches) = self.analysis_caches.lock() {
            for cache in caches.values() {
                if let Ok(c) = cache.lock() {
                    let s = c.stats();
                    total.runs += s.runs;
                    total.hits += s.hits;
                }
            }
        }
        total
    }

    fn cache_handle(&self, pool: &str) -> Arc<Mutex<CaptureCache>> {
        self.caches.lock().map_or_else(
            |_| Arc::new(Mutex::new(CaptureCache::new())),
            |mut caches| {
                caches
                    .entry(pool.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(CaptureCache::new())))
                    .clone()
            },
        )
    }

    fn analysis_cache_handle(&self, pool: &str) -> Arc<Mutex<AnalysisCache>> {
        self.analysis_caches.lock().map_or_else(
            |_| Arc::new(Mutex::new(AnalysisCache::new())),
            |mut caches| {
                caches
                    .entry(pool.to_string())
                    .or_insert_with(|| Arc::new(Mutex::new(AnalysisCache::new())))
                    .clone()
            },
        )
    }

    /// Runs one full sweep: per-pool list scans, unit expansion, sharded
    /// execution, canonical-order assembly. See the module docs for the
    /// determinism argument.
    pub fn sweep(&self, hv: &Hypervisor, fleet: &Fleet) -> FleetReport {
        self.sweep_with_trust(hv, fleet, None)
    }

    /// [`FleetScheduler::sweep`] with an optional event plane: pool VMs
    /// that are armed and event-quiet are *trusted* — their units are
    /// served from the pool capture cache with zero guest reads, and a
    /// fully-quiet pool reuses its previous list scan instead of
    /// re-walking every LDR list. Verdicts are identical to an untrusted
    /// sweep (trust only short-circuits pairs whose cached capture is
    /// still live; anything evicted — revert, quarantine — re-probes).
    pub fn sweep_with_trust(
        &self,
        hv: &Hypervisor,
        fleet: &Fleet,
        trust: Option<&EventPlane>,
    ) -> FleetReport {
        // Phase 1: list scans, one per pool, across the rayon pool. A pool
        // whose every member is armed-and-quiet serves its cached listing.
        let listings: Vec<Result<ListDiffReport, CheckError>> = fleet
            .pools
            .par_iter()
            .map(|p| {
                if let Some(plane) = trust {
                    if p.vms.iter().all(|&vm| plane.vm_quiet(vm)) {
                        if let Ok(cached) = self.last_listings.lock() {
                            if let Some(rep) = cached.get(&p.name) {
                                return Ok(rep.clone());
                            }
                        }
                    }
                }
                let rep = ListDiff::scan_with(hv, &p.vms, self.config.check.fast_capture);
                if let Ok(r) = &rep {
                    if let Ok(mut cached) = self.last_listings.lock() {
                        cached.insert(p.name.clone(), r.clone());
                    }
                }
                rep
            })
            .collect();

        // Phase 2: expand consensus modules into prioritized units.
        let history: HashSet<(String, String)> =
            self.history.lock().map(|h| h.clone()).unwrap_or_default();
        let pool_units: Vec<Vec<WorkUnit>> = fleet
            .pools
            .iter()
            .zip(&listings)
            .map(|(pool, lists)| {
                let Ok(rep) = lists else { return Vec::new() };
                let mut units: Vec<WorkUnit> = rep
                    .consensus_modules
                    .iter()
                    .map(|m| WorkUnit {
                        module: m.clone(),
                        size: rep.module_sizes.get(m).copied().unwrap_or(0),
                        hot: history.contains(&(pool.name.clone(), m.clone())),
                    })
                    .collect();
                units.sort_by(|a, b| {
                    b.hot
                        .cmp(&a.hot)
                        .then(b.size.cmp(&a.size))
                        .then(a.module.cmp(&b.module))
                });
                units
            })
            .collect();

        // Phase 3: LPT shard assignment over estimated pool cost
        // (Σ unit size × pool width, so a pool's captures dominate).
        let costs: Vec<u64> = fleet
            .pools
            .iter()
            .zip(&pool_units)
            .map(|(pool, units)| {
                1 + units.iter().map(|u| u.size).sum::<u64>() * pool.vms.len() as u64
            })
            .collect();
        let shard_of = assign_shards(&costs, self.config.shards.max(1));
        let mut shard_groups: Vec<Vec<usize>> = vec![Vec::new(); self.config.shards.max(1)];
        for (pool_idx, &shard) in shard_of.iter().enumerate() {
            shard_groups[shard].push(pool_idx);
        }

        // Phase 4: execute. Shards in parallel; within a shard pools in
        // order; within a pool units in priority order, `max_inflight`
        // at a time.
        let cache_handles: Vec<Arc<Mutex<CaptureCache>>> = fleet
            .pools
            .iter()
            .map(|p| self.cache_handle(&p.name))
            .collect();
        let analysis_handles: Vec<Arc<Mutex<AnalysisCache>>> = fleet
            .pools
            .iter()
            .map(|p| self.analysis_cache_handle(&p.name))
            .collect();
        let batch = self.config.max_inflight_per_vm.max(1);
        // `(pool index, unit index, result)` — the slot coordinates phase 5
        // assembles by.
        type SlottedResult = (usize, usize, Result<PoolCheckReport, CheckError>);
        let shard_results: Vec<Vec<SlottedResult>> = shard_groups
            .par_iter()
            .map(|pool_idxs| {
                let mut out = Vec::new();
                for &pi in pool_idxs {
                    let pool = &fleet.pools[pi];
                    let units = &pool_units[pi];
                    for (bi, chunk) in units.chunks(batch).enumerate() {
                        let reports: Vec<Result<PoolCheckReport, CheckError>> = chunk
                            .par_iter()
                            .map(|u| {
                                self.run_unit(
                                    hv,
                                    pool,
                                    &cache_handles[pi],
                                    &analysis_handles[pi],
                                    &u.module,
                                    trust,
                                )
                            })
                            .collect();
                        for (ci, report) in reports.into_iter().enumerate() {
                            out.push((pi, bi * batch + ci, report));
                        }
                    }
                }
                out
            })
            .collect();

        // Phase 5: canonical-order assembly — results land in their
        // (pool, priority) slots regardless of which shard ran them.
        let mut slots: Vec<Vec<Option<Result<PoolCheckReport, CheckError>>>> = pool_units
            .iter()
            .map(|units| units.iter().map(|_| None).collect())
            .collect();
        for (pi, ui, report) in shard_results.into_iter().flatten() {
            slots[pi][ui] = Some(report);
        }

        let mut pools_out = Vec::with_capacity(fleet.pools.len());
        for (pi, pool) in fleet.pools.iter().enumerate() {
            let vm_names: Vec<String> = pool
                .vms
                .iter()
                .map(|&vm| hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default())
                .collect();
            let units: Vec<FleetUnitReport> = pool_units[pi]
                .iter()
                .zip(std::mem::take(&mut slots[pi]))
                .enumerate()
                .map(|(priority, (u, result))| FleetUnitReport {
                    pool: pool.name.clone(),
                    module: u.module.clone(),
                    priority,
                    hot: u.hot,
                    result: result.unwrap_or(Err(CheckError::PoolTooSmall(0))),
                })
                .collect();
            let (lists, list_error) = match &listings[pi] {
                Ok(rep) => (Some(rep.clone()), None),
                Err(e) => (None, Some(e.to_string())),
            };
            pools_out.push(FleetPoolReport {
                pool: pool.name.clone(),
                vm_names,
                lists,
                list_error,
                units,
            });
        }

        // Update suspect history for the next sweep's priority ordering.
        if let Ok(mut h) = self.history.lock() {
            for pool in &pools_out {
                for unit in &pool.units {
                    let key = (pool.pool.clone(), unit.module.clone());
                    match &unit.result {
                        Ok(r) if r.suspects().next().is_some() => {
                            h.insert(key);
                        }
                        Ok(_) => {
                            h.remove(&key);
                        }
                        Err(_) => {} // keep prior heat; errors say nothing
                    }
                }
            }
        }

        FleetReport {
            pools: pools_out,
            unassigned: fleet.unassigned.clone(),
        }
    }

    fn run_unit(
        &self,
        hv: &Hypervisor,
        pool: &PoolSpec,
        cache: &Arc<Mutex<CaptureCache>>,
        analysis: &Arc<Mutex<AnalysisCache>>,
        module: &str,
        trust: Option<&EventPlane>,
    ) -> Result<PoolCheckReport, CheckError> {
        let trusted = trust
            .map(|plane| plane.trusted_for(module, &pool.vms))
            .unwrap_or_default();
        if self.config.check.static_prepass {
            if let (Ok(mut c), Ok(mut a)) = (cache.lock(), analysis.lock()) {
                return self.checker.check_pool_with_caches_trusted(
                    hv, &pool.vms, module, &mut c, &mut a, &trusted,
                );
            }
        }
        match cache.lock() {
            Ok(mut c) => self
                .checker
                .check_pool_with_cache_trusted(hv, &pool.vms, module, &mut c, &trusted),
            Err(_) => self.checker.check_pool(hv, &pool.vms, module),
        }
    }
}

/// Longest-processing-time assignment: pools sorted by cost descending
/// (ties: lower index first) each go to the currently lightest shard
/// (ties: lowest shard index). Returns `assignment[pool_idx] = shard_idx`.
/// Deterministic by construction.
pub fn assign_shards(costs: &[u64], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    let mut load = vec![0u64; shards];
    let mut assignment = vec![0usize; costs.len()];
    for pool_idx in order {
        let lightest = (0..shards).min_by_key(|&s| (load[s], s)).unwrap_or(0);
        assignment[pool_idx] = lightest;
        load[lightest] += costs[pool_idx];
    }
    assignment
}

/// The sharded makespan model: assigns pools to `shards` shards by LPT
/// over their *measured* simulated durations and returns the heaviest
/// shard's total — the simulated wall-clock of the sharded sweep.
///
/// Monotone nonincreasing in `shards` and never better than
/// `sequential / shards` (sub-linear: LPT imbalance and per-pool
/// serialization are real). `fig_fleet` plots units/sec from this.
pub fn simulated_fleet_wall(report: &FleetReport, shards: usize) -> SimDuration {
    let costs: Vec<u64> = report
        .pools
        .iter()
        .map(|p| p.duration().as_nanos())
        .collect();
    let assignment = assign_shards(&costs, shards);
    let mut load = vec![0u64; shards.max(1)];
    for (pool_idx, &shard) in assignment.iter().enumerate() {
        load[shard] += costs[pool_idx];
    }
    SimDuration::from_nanos(load.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::GuestOs;
    use mc_hypervisor::{AddressWidth, FaultPlan};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::PeFile;

    fn blueprints(prefix: &str, count: usize) -> Vec<(String, PeFile)> {
        (0..count)
            .map(|m| {
                let name = format!("{prefix}m{m}.sys");
                let pe = ModuleBlueprint::new(&name, AddressWidth::W32, (4 + 2 * m) * 1024)
                    .build()
                    .unwrap();
                (name, pe)
            })
            .collect()
    }

    /// Builds `pools` pools of `per_pool` VMs each, with `modules` modules
    /// per pool (distinct names per pool so discovery can't merge them).
    fn fleet_bed(
        pools: usize,
        per_pool: usize,
        modules: usize,
    ) -> (Hypervisor, Vec<Vec<GuestOs>>, Fleet) {
        let mut hv = Hypervisor::new();
        let mut specs = Vec::new();
        let mut guests = Vec::new();
        for p in 0..pools {
            let files = blueprints(&format!("p{p}"), modules);
            let mut vms = Vec::new();
            let mut pool_guests = Vec::new();
            for i in 0..per_pool {
                let vm = hv
                    .create_vm(&format!("p{p}dom{i}"), AddressWidth::W32)
                    .unwrap();
                let g =
                    GuestOs::install_with_modules(&mut hv, vm, &files, (p * 100 + i + 1) as u64)
                        .unwrap();
                vms.push(vm);
                pool_guests.push(g);
            }
            specs.push(PoolSpec {
                name: format!("pool{p}"),
                vms,
            });
            guests.push(pool_guests);
        }
        (hv, guests, Fleet::from_pools(specs))
    }

    #[test]
    fn sweep_covers_every_pool_and_module() {
        let (hv, _guests, fleet) = fleet_bed(3, 4, 2);
        let sched = FleetScheduler::new(FleetConfig::default());
        let report = sched.sweep(&hv, &fleet);
        assert_eq!(report.pools.len(), 3);
        assert_eq!(report.units_total(), 6);
        assert_eq!(report.units_failed(), 0);
        assert!(report.all_clean(), "{report}");
        for p in &report.pools {
            assert_eq!(p.vm_names.len(), 4);
            assert!(p.lists.as_ref().unwrap().consistent());
        }
    }

    #[test]
    fn unit_priority_is_size_desc_then_name() {
        let (hv, _guests, fleet) = fleet_bed(1, 3, 3);
        let sched = FleetScheduler::new(FleetConfig::default());
        let report = sched.sweep(&hv, &fleet);
        let modules: Vec<&str> = report.pools[0]
            .units
            .iter()
            .map(|u| u.module.as_str())
            .collect();
        // Expected order: by advertised image size descending (name as
        // tie-break) — exactly what the list scan measured.
        let sizes = &report.pools[0].lists.as_ref().unwrap().module_sizes;
        let mut expected: Vec<&str> = sizes.keys().map(String::as_str).collect();
        expected.sort_by(|a, b| sizes[*b].cmp(&sizes[*a]).then(a.cmp(b)));
        assert_eq!(modules, expected, "sizes: {sizes:?}");
        assert!(
            sizes.len() == 3 && sizes.values().all(|&s| s > 0),
            "{sizes:?}"
        );
    }

    #[test]
    fn suspect_history_boosts_hot_modules_next_sweep() {
        let (mut hv, guests, fleet) = fleet_bed(1, 4, 3);
        // Patch the *smallest* module on one VM so priority and heat pull
        // in opposite directions.
        guests[0][2]
            .patch_module(&mut hv, "p0m0.sys", 0x1010, &[0xCC, 0xCC])
            .unwrap();
        let sched = FleetScheduler::new(FleetConfig::default());
        let first = sched.sweep(&hv, &fleet);
        assert_eq!(
            first.suspects(),
            vec![(
                "pool0".to_string(),
                "p0m0.sys".to_string(),
                "p0dom2".to_string()
            )]
        );
        assert_eq!(
            sched.suspect_history(),
            vec![("pool0".to_string(), "p0m0.sys".to_string())]
        );
        let second = sched.sweep(&hv, &fleet);
        let head = &second.pools[0].units[0];
        assert!(head.hot, "hot module must dispatch first");
        assert_eq!(head.module, "p0m0.sys");
        // Remediate and the heat clears after the next clean sweep.
        guests[0][2]
            .patch_module(&mut hv, "p0m0.sys", 0x1010, &[0x55, 0x8B])
            .unwrap();
        let _third = sched.sweep(&hv, &fleet);
        // The module content is still different from peers unless restored
        // exactly; just assert history tracking ran without panicking and
        // hot ordering stayed deterministic.
        assert_eq!(second.pools[0].units.len(), 3);
    }

    #[test]
    fn sharded_and_sequential_sweeps_serialize_identically() {
        let (mut hv, guests, fleet) = fleet_bed(3, 3, 2);
        guests[1][0]
            .patch_module(&mut hv, "p1m1.sys", 0x1008, &[0xDE, 0xAD])
            .unwrap();
        hv.inject_fault_plan(FaultPlan::transient(7, 0.02));
        let render = |shards: usize, inflight: usize| {
            let sched = FleetScheduler::new(FleetConfig {
                shards,
                max_inflight_per_vm: inflight,
                ..FleetConfig::default()
            });
            serde_json::to_string_pretty(&sched.sweep(&hv, &fleet).to_json()).unwrap()
        };
        let sequential = render(1, 1);
        assert_eq!(sequential, render(4, 2), "shards must not change bytes");
        assert_eq!(sequential, render(8, 4), "shards must not change bytes");
    }

    #[test]
    fn static_prepass_amortizes_analysis_runs_across_sweeps() {
        let (mut hv, guests, fleet) = fleet_bed(2, 4, 2);
        // A hook-style rel32 patch on one VM: the pre-pass must flag it,
        // and its bucket split adds exactly one extra analyzer run.
        guests[0][1]
            .patch_module(&mut hv, "p0m0.sys", 0x1000, &[0xE9, 0x10, 0x00, 0x00, 0x00])
            .unwrap();
        let sched = FleetScheduler::new(FleetConfig {
            check: CheckConfig {
                compare: crate::pool::CompareStrategy::Canonical,
                static_prepass: true,
                ..CheckConfig::default()
            },
            ..FleetConfig::default()
        });
        let report = sched.sweep(&hv, &fleet);
        assert_eq!(report.units_failed(), 0);
        let flagged: Vec<(&str, Vec<&str>)> = report
            .pools
            .iter()
            .flat_map(|p| &p.units)
            .filter_map(|u| u.result.as_ref().ok())
            .filter(|r| !r.static_findings.is_empty())
            .map(|r| (r.module.as_str(), r.statically_flagged_vms()))
            .collect();
        assert_eq!(flagged, vec![("p0m0.sys", vec!["p0dom1"])]);

        // Per-bucket bound: every clean (pool, module) unit is one content
        // bucket = one run; the hooked unit splits into two. 4 units total.
        let first = sched.analysis_stats();
        assert_eq!(first.runs, 5, "4 clean buckets + 1 split");

        // A second sweep over unchanged content is served entirely from
        // the per-pool caches: zero new analyzer runs.
        let again = sched.sweep(&hv, &fleet);
        assert_eq!(again.units_failed(), 0);
        let second = sched.analysis_stats();
        assert_eq!(second.runs, first.runs, "steady state re-runs nothing");
        assert!(second.hits > first.hits);
    }

    #[test]
    fn static_prepass_keeps_sharded_sweeps_byte_identical() {
        let (mut hv, guests, fleet) = fleet_bed(3, 3, 2);
        guests[1][0]
            .patch_module(&mut hv, "p1m1.sys", 0x1000, &[0xE9, 0x10, 0x00, 0x00, 0x00])
            .unwrap();
        let render = |shards: usize, inflight: usize| {
            let sched = FleetScheduler::new(FleetConfig {
                check: CheckConfig {
                    compare: crate::pool::CompareStrategy::Canonical,
                    static_prepass: true,
                    ..CheckConfig::default()
                },
                shards,
                max_inflight_per_vm: inflight,
            });
            serde_json::to_string_pretty(&sched.sweep(&hv, &fleet).to_json()).unwrap()
        };
        let sequential = render(1, 1);
        assert!(sequential.contains("statically_flagged"));
        assert_eq!(sequential, render(4, 2), "prepass must not change bytes");
        assert_eq!(sequential, render(8, 4), "prepass must not change bytes");
    }

    #[test]
    fn discover_groups_by_module_signature() {
        let (hv, _guests, fleet) = fleet_bed(2, 3, 2);
        let all_vms: Vec<VmId> = fleet.pools.iter().flat_map(|p| p.vms.clone()).collect();
        let found = Fleet::discover(&hv, &all_vms);
        assert_eq!(found.pools.len(), 2);
        assert!(found.unassigned.is_empty());
        assert_eq!(found.pools[0].vms, fleet.pools[0].vms);
        assert_eq!(found.pools[1].vms, fleet.pools[1].vms);
    }

    #[test]
    fn discover_sidelines_loners_and_unreadable_vms() {
        let (mut hv, _guests, fleet) = fleet_bed(1, 3, 2);
        // A singleton with its own image...
        let lone = hv.create_vm("loner", AddressWidth::W32).unwrap();
        let files = blueprints("q", 1);
        let _g = GuestOs::install_with_modules(&mut hv, lone, &files, 99).unwrap();
        // ...and a VM that is unreachable at list time.
        let dead = hv.create_vm("dead", AddressWidth::W32).unwrap();
        let _g2 = GuestOs::install_with_modules(&mut hv, dead, &blueprints("r", 1), 98).unwrap();
        hv.set_fault_plan(dead, Some(FaultPlan::none(1).lose_after(0)))
            .unwrap();
        let mut all_vms: Vec<VmId> = fleet.pools[0].vms.clone();
        all_vms.push(lone);
        all_vms.push(dead);
        let found = Fleet::discover(&hv, &all_vms);
        assert_eq!(found.pools.len(), 1);
        assert_eq!(found.pools[0].vms, fleet.pools[0].vms);
        let names: Vec<&str> = found.unassigned.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["dead", "loner"]);
    }

    #[test]
    fn trusted_sweep_serves_quiet_pools_without_guest_reads() {
        // 4 VMs per pool so the one infected VM is outvoted by its three
        // clean peers (strict majority flags everyone at 3 VMs).
        let (mut hv, guests, fleet) = fleet_bed(2, 4, 2);
        let all_vms: Vec<VmId> = fleet.pools.iter().flat_map(|p| p.vms.clone()).collect();
        let mut plane = EventPlane::new();
        for pool in &fleet.pools {
            let listing = ListDiff::scan_with(&hv, &pool.vms, true).unwrap();
            plane
                .arm_modules(&mut hv, &pool.vms, &listing.consensus_modules)
                .unwrap();
        }
        let _ = all_vms;

        let sched = FleetScheduler::new(FleetConfig::default());
        // Cold sweep fills the caches; quiet sweep reads nothing.
        let cold = sched.sweep_with_trust(&hv, &fleet, Some(&plane));
        assert!(cold.all_clean());
        plane.drain(&hv);
        let quiet = sched.sweep_with_trust(&hv, &fleet, Some(&plane));
        assert!(quiet.all_clean());
        let reads: u64 = quiet
            .pools
            .iter()
            .flat_map(|p| &p.units)
            .filter_map(|u| u.result.as_ref().ok())
            .map(|r| r.vmi.reads)
            .sum();
        assert_eq!(reads, 0, "every unit trusted: zero guest reads");

        // An event-dirtied pair re-probes and is caught.
        guests[1][0]
            .patch_module(&mut hv, "p1m1.sys", 0x1008, &[0xDE, 0xAD])
            .unwrap();
        plane.drain(&hv);
        let dirty = sched.sweep_with_trust(&hv, &fleet, Some(&plane));
        assert_eq!(
            dirty.suspects(),
            vec![(
                "pool1".to_string(),
                "p1m1.sys".to_string(),
                "p1dom0".to_string()
            )]
        );
    }

    #[test]
    fn lpt_assignment_is_deterministic_and_balanced() {
        let costs = vec![10, 7, 7, 3, 1];
        assert_eq!(assign_shards(&costs, 2), vec![0, 1, 1, 0, 0]);
        assert_eq!(assign_shards(&costs, 1), vec![0, 0, 0, 0, 0]);
        // More shards than pools: each pool gets its own shard.
        let spread = assign_shards(&costs, 8);
        let unique: HashSet<usize> = spread.iter().copied().collect();
        assert_eq!(unique.len(), costs.len());
    }

    #[test]
    fn makespan_model_is_monotone_and_sublinear() {
        let (hv, _guests, fleet) = fleet_bed(4, 3, 2);
        let sched = FleetScheduler::new(FleetConfig::default());
        let report = sched.sweep(&hv, &fleet);
        let seq = report.simulated_wall_sequential();
        assert_eq!(simulated_fleet_wall(&report, 1), seq);
        let mut prev = seq;
        for shards in [2, 4, 8] {
            let wall = simulated_fleet_wall(&report, shards);
            assert!(wall <= prev, "makespan must not grow with shards");
            assert!(
                wall.as_nanos() * (shards as u64) >= seq.as_nanos(),
                "speedup beyond shard count is impossible"
            );
            prev = wall;
        }
        // With 4 pools on 8 shards the makespan is the heaviest pool.
        let heaviest = report
            .pools
            .iter()
            .map(FleetPoolReport::duration)
            .max()
            .unwrap();
        assert_eq!(simulated_fleet_wall(&report, 8), heaviest);
    }
}
