//! Digest agility (extension EXT-3).
//!
//! The paper fingerprints parts with MD5. For cross-VM *consistency*
//! checking that is defensible even today — an attacker must produce a
//! second preimage of the clean module's parts, not a mere collision pair —
//! but hash agility costs little and removes the conversation entirely.
//! [`DigestAlgo`] selects the algorithm pool-wide; both implementations are
//! from scratch in this workspace (`mc-md5`, `mc-sha2`). Ablation ABL-6
//! measures the runtime difference.

use std::fmt;

/// Which hash fingerprints module parts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DigestAlgo {
    /// MD5 — the paper's choice (OpenSSL, 2012).
    #[default]
    Md5,
    /// SHA-256 — modern alternative.
    Sha256,
}

impl DigestAlgo {
    /// Relative per-byte cost versus MD5 for the simulated-time model
    /// (measured by the `digest` criterion bench; SHA-256 is roughly 2×
    /// slower per byte in scalar implementations).
    pub fn cost_factor(self) -> f64 {
        match self {
            DigestAlgo::Md5 => 1.0,
            DigestAlgo::Sha256 => 2.2,
        }
    }
}

impl fmt::Display for DigestAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigestAlgo::Md5 => f.write_str("md5"),
            DigestAlgo::Sha256 => f.write_str("sha256"),
        }
    }
}

/// A part fingerprint under either algorithm.
///
/// Digests of different algorithms are never equal (comparing them would
/// be a configuration bug; the pool scanner uses one algorithm for every
/// capture in a run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PartDigest {
    /// 128-bit MD5.
    Md5(mc_md5::Digest),
    /// 256-bit SHA-256.
    Sha256(mc_sha2::Digest),
}

impl PartDigest {
    /// The algorithm this digest was produced with.
    pub fn algo(&self) -> DigestAlgo {
        match self {
            PartDigest::Md5(_) => DigestAlgo::Md5,
            PartDigest::Sha256(_) => DigestAlgo::Sha256,
        }
    }

    /// Hex rendering.
    pub fn to_hex(&self) -> String {
        match self {
            PartDigest::Md5(d) => d.to_hex(),
            PartDigest::Sha256(d) => d.to_hex(),
        }
    }
}

impl fmt::Display for PartDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Hashes `data` under `algo`.
pub fn digest(algo: DigestAlgo, data: &[u8]) -> PartDigest {
    match algo {
        DigestAlgo::Md5 => PartDigest::Md5(mc_md5::md5(data)),
        DigestAlgo::Sha256 => PartDigest::Sha256(mc_sha2::sha256(data)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_disagree_by_construction() {
        let a = digest(DigestAlgo::Md5, b"same input");
        let b = digest(DigestAlgo::Sha256, b"same input");
        assert_ne!(a, b);
        assert_eq!(a.algo(), DigestAlgo::Md5);
        assert_eq!(b.algo(), DigestAlgo::Sha256);
    }

    #[test]
    fn equal_inputs_equal_digests_per_algo() {
        for algo in [DigestAlgo::Md5, DigestAlgo::Sha256] {
            assert_eq!(digest(algo, b"x"), digest(algo, b"x"));
            assert_ne!(digest(algo, b"x"), digest(algo, b"y"));
        }
    }

    #[test]
    fn hex_lengths_match_algorithms() {
        assert_eq!(digest(DigestAlgo::Md5, b"").to_hex().len(), 32);
        assert_eq!(digest(DigestAlgo::Sha256, b"").to_hex().len(), 64);
    }

    #[test]
    fn cost_factor_ordering() {
        assert!(DigestAlgo::Sha256.cost_factor() > DigestAlgo::Md5.cost_factor());
    }
}
