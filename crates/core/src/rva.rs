//! Algorithm 2 — adjusting relative virtual addresses by pairwise diff.
//!
//! After loading, each absolute-address slot in a module's executable code
//! holds `RVA + base`, and `base` differs per VM, so byte-identical code
//! hashes differently across VMs. The paper's insight: ModChecker doesn't
//! need relocation metadata to undo this. Comparing the same section from
//! two VMs, *every byte difference must be part of a relocated address* (as
//! long as nobody tampered with the code). So:
//!
//! 1. Find `offset`, the 1-based index of the first byte (in memory order,
//!    i.e. little-endian) where the two base addresses differ. Differences
//!    in the loaded images can then only begin at slot byte `offset − 1`,
//!    because lower bytes of `RVA + base` agree when the low base bytes
//!    agree (equal addends, equal carries).
//! 2. Scan both sections; at a differing byte `j`, the address slot starts
//!    at `j − offset + 1`. Read both slots, compute `RVA = abs − base`
//!    (Equation 1) on each side; if the RVAs agree it was relocation —
//!    rewrite both slots to the RVA. If they disagree, the difference is
//!    *tampering*; leave it (the hashes will expose it).
//!
//! The paper's Algorithm 2 line 22 reads `j ← j − offset + 1 − 4`, which
//! would move the cursor backwards and never terminate; it is a typo for
//! advancing *past* the 4-byte slot, which is what this implementation does.
//!
//! If the two bases are identical (possible: the allocator may coincide),
//! no adjustment is needed or attempted — the images are directly
//! comparable (`IsDifferenceExist = 0` in the paper).

use mc_hypervisor::AddressWidth;
use mc_pe::parser::ParsedModule;
use mc_pe::reloc::parse_reloc_section;

/// Outcome statistics of one pairwise adjustment pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdjustStats {
    /// Address slots recognized as relocation and rewritten to RVAs on both
    /// sides.
    pub slots_adjusted: usize,
    /// Byte differences that did *not* reconcile as relocation — tampering
    /// (or structural divergence). A section-length mismatch counts its
    /// truncated tail here too: bytes past `min(len_a, len_b)` can never
    /// reconcile, and length divergence is itself structural tampering
    /// evidence. Nonzero residuals always surface as hash mismatches.
    pub residual_diffs: usize,
    /// Bytes scanned (min of the two section lengths).
    pub bytes_scanned: usize,
    /// True if the base addresses were identical (no adjustment possible or
    /// needed).
    pub identical_bases: bool,
}

/// Reads a `width`-byte little-endian value.
fn read_le(buf: &[u8], at: usize, width: usize) -> u64 {
    let mut v = 0u64;
    for i in (0..width).rev() {
        v = (v << 8) | buf[at + i] as u64;
    }
    v
}

/// Writes a `width`-byte little-endian value.
fn write_le(buf: &mut [u8], at: usize, v: u64, width: usize) {
    for i in 0..width {
        buf[at + i] = (v >> (8 * i)) as u8;
    }
}

/// Runs Algorithm 2 over one section captured from two VMs, rewriting
/// reconciled address slots to RVAs **in both buffers**.
///
/// `base_a`/`base_b` are the modules' load bases (`DllBase`). Returns
/// adjustment statistics; after this call, equal-content sections hash
/// equal, and any tampering shows up as `residual_diffs > 0` plus a hash
/// mismatch.
pub fn adjust_rvas(
    a: &mut [u8],
    b: &mut [u8],
    base_a: u64,
    base_b: u64,
    width: AddressWidth,
) -> AdjustStats {
    let w = width.bytes();
    let len = a.len().min(b.len());
    // Bytes past the common prefix cannot be scanned, let alone reconciled;
    // count the whole truncated tail as residual so mismatched-length
    // captures can never under-report.
    let tail = a.len().max(b.len()) - len;
    let mut stats = AdjustStats {
        bytes_scanned: len,
        residual_diffs: tail,
        ..AdjustStats::default()
    };
    // Mask RVAs to the guest word size (32-bit arithmetic wraps mod 2^32).
    let mask = match width {
        AddressWidth::W32 => 0xFFFF_FFFFu64,
        AddressWidth::W64 => u64::MAX,
    };

    // Lines 1–9: offset of the first differing base-address byte.
    let ba = base_a.to_le_bytes();
    let bb = base_b.to_le_bytes();
    let mut offset = 0usize;
    let mut difference_exists = false;
    for i in 0..w {
        offset += 1;
        if ba[i] != bb[i] {
            difference_exists = true;
            break;
        }
    }
    if !difference_exists {
        stats.identical_bases = true;
        return stats;
    }

    // Lines 11–23: scan, back up to the slot start, reconcile.
    let mut j = 0usize;
    while j < len {
        if a[j] == b[j] {
            j += 1;
            continue;
        }
        // Slot start: j − offset + 1 (the paper's line 13/14 index).
        let slot = match (j + 1).checked_sub(offset) {
            Some(s) if s + w <= len => s,
            // Difference too close to a section edge to hold an address.
            _ => {
                stats.residual_diffs += 1;
                j += 1;
                continue;
            }
        };
        let abs_a = read_le(a, slot, w);
        let abs_b = read_le(b, slot, w);
        let rva_a = abs_a.wrapping_sub(base_a) & mask;
        let rva_b = abs_b.wrapping_sub(base_b) & mask;
        if rva_a == rva_b {
            write_le(a, slot, rva_a, w);
            write_le(b, slot, rva_b, w);
            stats.slots_adjusted += 1;
            j = slot + w;
        } else {
            stats.residual_diffs += 1;
            j += 1;
        }
    }
    stats
}

/// Relocation-table-driven normalization (ablation ABL-2).
///
/// Instead of diffing two captures, parse the module's own `.reloc` section
/// and rewrite every listed slot from `abs` to `abs − base`. Works on a
/// single capture but *trusts in-guest metadata* (a rootkit can doctor
/// `.reloc`), which is exactly why the paper's diff-based approach is more
/// robust. Returns the number of slots rewritten, or `None` if the image
/// has no parseable `.reloc` section.
pub fn normalize_with_reloc_table(
    image: &mut [u8],
    base: u64,
    parsed: &ParsedModule,
) -> Option<usize> {
    let reloc_idx = parsed.find_section(".reloc")?;
    let range = parsed.sections[reloc_idx].data_range.clone();
    let rvas = parse_reloc_section(&image[range])?;
    let w = parsed.width.bytes();
    let mask = match parsed.width {
        AddressWidth::W32 => 0xFFFF_FFFFu64,
        AddressWidth::W64 => u64::MAX,
    };
    let mut count = 0;
    for rva in rvas {
        let at = rva as usize;
        if at + w > image.len() {
            continue;
        }
        let abs = read_le(image, at, w);
        write_le(image, at, abs.wrapping_sub(base) & mask, w);
        count += 1;
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds two "loaded" copies of `file` content: each slot (offset list)
    /// holds a file RVA; loading adds the base.
    fn load_pair(
        file: &[u8],
        slots: &[usize],
        base_a: u64,
        base_b: u64,
        width: AddressWidth,
    ) -> (Vec<u8>, Vec<u8>) {
        let w = width.bytes();
        let mut a = file.to_vec();
        let mut b = file.to_vec();
        for &s in slots {
            let rva = read_le(file, s, w);
            write_le(&mut a, s, rva.wrapping_add(base_a), w);
            write_le(&mut b, s, rva.wrapping_add(base_b), w);
        }
        (a, b)
    }

    fn sample_file() -> Vec<u8> {
        (0..600u32).map(|i| (i * 7 % 251) as u8).collect()
    }

    #[test]
    fn clean_relocation_fully_reconciles() {
        let file = sample_file();
        let slots = [16usize, 100, 301, 590];
        for &s in &slots {
            assert!(s + 4 <= file.len());
        }
        let (mut a, mut b) = load_pair(&file, &slots, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_ne!(a, b);
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.residual_diffs, 0);
        assert_eq!(stats.slots_adjusted, slots.len());
        assert_eq!(a, b, "both sides reconciled to the same bytes");
        assert_eq!(a, file, "...which are the original file RVAs");
    }

    #[test]
    fn identical_bases_short_circuit() {
        let file = sample_file();
        let (mut a, mut b) = load_pair(&file, &[32], 0xF700_0000, 0xF700_0000, AddressWidth::W32);
        assert_eq!(a, b);
        let stats = adjust_rvas(&mut a, &mut b, 0xF700_0000, 0xF700_0000, AddressWidth::W32);
        assert!(stats.identical_bases);
        assert_eq!(stats.slots_adjusted, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn partial_base_prefix_overlap_backs_up_correctly() {
        // The paper's own example: bases sharing leading (low) bytes, so the
        // detected difference starts inside the slot and the scan must back
        // up. Bases 0x00CC20F8 vs 0x00CC9070 displayed big-endian in the
        // paper are 0xF820CC00 vs 0x7090CC00 numerically here; what matters
        // is sharing low-order bytes.
        let base_a = 0xF712_3400u64;
        let base_b = 0xF7A9_3400u64; // low two bytes equal → offset = 3
        let file = sample_file();
        let slots = [40usize, 222];
        let (mut a, mut b) = load_pair(&file, &slots, base_a, base_b, AddressWidth::W32);
        let stats = adjust_rvas(&mut a, &mut b, base_a, base_b, AddressWidth::W32);
        assert_eq!(stats.residual_diffs, 0);
        assert_eq!(stats.slots_adjusted, slots.len());
        assert_eq!(a, file);
        assert_eq!(b, file);
    }

    #[test]
    fn tampering_leaves_residual_diffs() {
        let file = sample_file();
        let slots = [64usize, 300];
        let (mut a, mut b) = load_pair(&file, &slots, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        // Single opcode change on one side (the §V.B.1 scenario).
        a[150] ^= 0x5A;
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert!(stats.residual_diffs > 0, "tampering must not reconcile");
        assert_eq!(stats.slots_adjusted, 2, "real relocations still reconcile");
        assert_ne!(a, b, "tampered byte survives adjustment");
    }

    #[test]
    fn tampering_on_both_sides_at_same_offset_detected() {
        // Different malicious payloads at the same offset on both VMs: the
        // fake "RVAs" disagree, so the diff persists.
        let file = sample_file();
        let (mut a, mut b) = load_pair(&file, &[64], 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        a[200] = 0xCC;
        b[200] = 0xCD;
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert!(stats.residual_diffs > 0);
        assert_ne!(a[200], b[200]);
    }

    #[test]
    fn difference_at_section_edge_is_residual_not_panic() {
        let file = sample_file();
        let len = file.len();
        let (mut a, mut b) = load_pair(&file, &[], 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        a[len - 1] ^= 0xFF; // too close to the edge to be a full slot
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.residual_diffs, 1);
        assert_eq!(stats.slots_adjusted, 0);
    }

    #[test]
    fn sixty_four_bit_slots_reconcile() {
        let base_a = 0xFFFF_F880_0123_0000u64;
        let base_b = 0xFFFF_F880_0456_0000u64;
        let file = sample_file();
        let slots = [24usize, 480];
        let (mut a, mut b) = load_pair(&file, &slots, base_a, base_b, AddressWidth::W64);
        let stats = adjust_rvas(&mut a, &mut b, base_a, base_b, AddressWidth::W64);
        assert_eq!(stats.residual_diffs, 0);
        assert_eq!(stats.slots_adjusted, 2);
        assert_eq!(a, file);
    }

    #[test]
    fn slot_at_offset_zero_reconciles() {
        let file = sample_file();
        let (mut a, mut b) = load_pair(&file, &[0], 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.slots_adjusted, 1);
        assert_eq!(stats.residual_diffs, 0);
        assert_eq!(a, file);
    }

    #[test]
    fn back_to_back_slots_reconcile() {
        // Two 4-byte slots with zero gap — the scan must hop exactly one
        // slot at a time.
        let file = sample_file();
        let slots = [100usize, 104, 108];
        let (mut a, mut b) = load_pair(&file, &slots, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.slots_adjusted, 3);
        assert_eq!(stats.residual_diffs, 0);
        assert_eq!(a, file);
        assert_eq!(b, file);
    }

    #[test]
    fn empty_sections_are_trivially_equal() {
        let mut a: Vec<u8> = Vec::new();
        let mut b: Vec<u8> = Vec::new();
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.bytes_scanned, 0);
        assert_eq!(stats.slots_adjusted, 0);
        assert_eq!(stats.residual_diffs, 0);
    }

    #[test]
    fn unequal_lengths_scan_common_prefix() {
        let file = sample_file();
        let (mut a, mut b) = load_pair(&file, &[16], 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        b.truncate(400);
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.bytes_scanned, 400);
        assert_eq!(stats.slots_adjusted, 1);
        assert_eq!(
            stats.residual_diffs, 200,
            "truncated tail counts as residual"
        );
    }

    #[test]
    fn truncation_attack_is_residual_even_with_identical_bases() {
        // A rootkit that shrinks a section (e.g. hooks the size field so the
        // capture stops early) must not make the diff look clean. Identical
        // bases used to short-circuit before counting the tail; both return
        // paths must report it.
        let file = sample_file();
        let (mut a, mut b) = load_pair(&file, &[], 0xF700_0000, 0xF700_0000, AddressWidth::W32);
        b.truncate(512);
        let stats = adjust_rvas(&mut a, &mut b, 0xF700_0000, 0xF700_0000, AddressWidth::W32);
        assert!(stats.identical_bases);
        assert_eq!(
            stats.residual_diffs, 88,
            "600 - 512 tail bytes are residual"
        );

        // Same attack with differing bases takes the scan path: the clean
        // common prefix contributes nothing, the tail everything.
        let (mut a, mut b) = load_pair(&file, &[16], 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        a.truncate(512);
        let stats = adjust_rvas(&mut a, &mut b, 0xF712_0000, 0xF7C4_3000, AddressWidth::W32);
        assert_eq!(stats.slots_adjusted, 1);
        assert_eq!(stats.residual_diffs, 88);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For arbitrary content, slot placement and distinct bases,
            /// Algorithm 2 recovers the original file bytes exactly.
            #[test]
            fn recovers_file_image(
                file in proptest::collection::vec(any::<u8>(), 64..2048),
                base_sel in 0u64..0xFFFF,
                wide in proptest::bool::ANY,
            ) {
                let width = if wide { AddressWidth::W64 } else { AddressWidth::W32 };
                let w = width.bytes();
                let base_a = 0xF700_0000u64 + (base_sel << 12);
                let base_b = 0xF700_0000u64 + (((base_sel * 7 + 13) & 0xFFFF) << 12);
                prop_assume!(base_a != base_b);
                let slots: Vec<usize> = (0..file.len().saturating_sub(w)).step_by(97).collect();
                let (mut a, mut b) = load_pair(&file, &slots, base_a, base_b, width);
                let stats = adjust_rvas(&mut a, &mut b, base_a, base_b, width);
                prop_assert_eq!(stats.residual_diffs, 0);
                prop_assert_eq!(&a, &file);
                prop_assert_eq!(&b, &file);
            }

            /// A single tampered byte (outside relocation slots) always
            /// survives adjustment as a difference.
            #[test]
            fn tampering_survives(
                file in proptest::collection::vec(any::<u8>(), 64..1024),
                tamper_at in 0usize..1024,
                flip in 1u8..=255,
            ) {
                let base_a = 0xF712_0000u64;
                let base_b = 0xF7C4_3000u64;
                let slots: Vec<usize> = (0..file.len().saturating_sub(4)).step_by(151).collect();
                let (mut a, mut b) = load_pair(&file, &slots, base_a, base_b, AddressWidth::W32);
                let at = tamper_at % file.len();
                // Keep the tamper clear of genuine slots so the scenario is
                // "pure code modification".
                prop_assume!(slots.iter().all(|&s| at < s || at >= s + 4));
                a[at] ^= flip;
                adjust_rvas(&mut a, &mut b, base_a, base_b, AddressWidth::W32);
                prop_assert_ne!(&a, &b);
            }
        }
    }
}
