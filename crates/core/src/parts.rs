//! Module-Parser — the paper's Algorithm 1.
//!
//! Splits a captured in-memory module image into its hashable parts:
//! the DOS header (including the stub program), the composite NT headers,
//! the FILE and OPTIONAL headers individually, every section header, and
//! every *executable* section's data. These are exactly the units the
//! paper's Integrity-Checker MD5s and cross-compares; hashing them
//! separately (rather than the whole image) is what localizes an infection
//! to "the `.text` section of hal.dll" in the experiments of §V.B.
//!
//! Writable data sections are excluded from content hashing — they change
//! legitimately at runtime and their cross-VM hashes would never match; the
//! paper checks "headers and read-only executable contents".

use std::fmt;
use std::ops::Range;

use mc_pe::parser::ParsedModule;

use crate::error::CheckError;
use crate::searcher::ModuleImage;

/// Identity of one hashable part of a module.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub enum PartId {
    /// `IMAGE_DOS_HEADER` plus the DOS stub program (`[0, e_lfanew)`).
    DosHeader,
    /// Composite `IMAGE_NT_HEADERS` (signature + file + optional).
    NtHeaders,
    /// `IMAGE_FILE_HEADER`.
    FileHeader,
    /// `IMAGE_OPTIONAL_HEADER`.
    OptionalHeader,
    /// One `IMAGE_SECTION_HEADER`, by section name.
    SectionHeader(String),
    /// One executable section's data, by section name.
    SectionData(String),
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartId::DosHeader => write!(f, "IMAGE_DOS_HEADER"),
            PartId::NtHeaders => write!(f, "IMAGE_NT_HEADER"),
            PartId::FileHeader => write!(f, "IMAGE_FILE_HEADER"),
            PartId::OptionalHeader => write!(f, "IMAGE_OPTIONAL_HEADER"),
            PartId::SectionHeader(n) => write!(f, "SECTION_HEADER({n})"),
            PartId::SectionData(n) => write!(f, "{n} section data"),
        }
    }
}

/// One extracted part: its identity, byte range in the image, and whether
/// its content participates in RVA adjustment.
#[derive(Clone, Debug)]
pub struct Part {
    /// Which part this is.
    pub id: PartId,
    /// Byte range within the captured image.
    pub range: Range<usize>,
    /// True for executable section data (subject to Algorithm 2 before
    /// hashing).
    pub is_exec_data: bool,
}

/// An executable section's geometry (needed by Algorithm 2).
#[derive(Clone, Debug)]
pub struct ExecSection {
    /// Section name.
    pub name: String,
    /// Data range within the image.
    pub range: Range<usize>,
    /// `VirtualAddress` (RVA) of the section.
    pub virtual_address: u32,
}

/// The parsed decomposition of one module image.
#[derive(Clone, Debug)]
pub struct ModuleParts {
    /// All hashable parts, in canonical order (headers first, then section
    /// headers in table order, then executable section data).
    pub parts: Vec<Part>,
    /// Executable sections, in table order.
    pub exec_sections: Vec<ExecSection>,
    /// Total bytes parsed (for cost accounting).
    pub image_len: usize,
    /// Pointer width from the optional-header magic.
    pub width: mc_pe::AddressWidth,
}

impl ModuleParts {
    /// Runs Algorithm 1 on a captured image.
    pub fn extract(image: &ModuleImage) -> Result<Self, CheckError> {
        let parsed =
            ParsedModule::parse_memory(&image.bytes).map_err(|source| CheckError::BadImage {
                vm: image.vm_name.clone(),
                module: image.name.clone(),
                source,
            })?;
        Ok(Self::from_parsed(&parsed, image.bytes.len()))
    }

    /// Decomposition from an already-parsed module (shared with tests).
    pub fn from_parsed(parsed: &ParsedModule, image_len: usize) -> Self {
        let mut parts = vec![
            Part {
                id: PartId::DosHeader,
                range: parsed.dos_range.clone(),
                is_exec_data: false,
            },
            Part {
                id: PartId::NtHeaders,
                range: parsed.nt_range.clone(),
                is_exec_data: false,
            },
            Part {
                id: PartId::FileHeader,
                range: parsed.file_header_range.clone(),
                is_exec_data: false,
            },
            Part {
                id: PartId::OptionalHeader,
                range: parsed.optional_range.clone(),
                is_exec_data: false,
            },
        ];
        let mut exec_sections = Vec::new();
        for s in &parsed.sections {
            parts.push(Part {
                id: PartId::SectionHeader(s.name.clone()),
                range: s.header_range.clone(),
                is_exec_data: false,
            });
        }
        for s in &parsed.sections {
            if s.is_executable() && !s.is_writable() {
                parts.push(Part {
                    id: PartId::SectionData(s.name.clone()),
                    range: s.data_range.clone(),
                    is_exec_data: true,
                });
                exec_sections.push(ExecSection {
                    name: s.name.clone(),
                    range: s.data_range.clone(),
                    virtual_address: s.virtual_address,
                });
            }
        }
        ModuleParts {
            parts,
            exec_sections,
            image_len,
            width: parsed.width,
        }
    }

    /// Looks up a part by id.
    pub fn part(&self, id: &PartId) -> Option<&Part> {
        self.parts.iter().find(|p| &p.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hypervisor::VmId;
    use mc_pe::corpus::ModuleBlueprint;
    use mc_pe::AddressWidth;

    fn image_of(name: &str, text_size: usize) -> ModuleImage {
        // Build a file image and fake a "capture" by converting to memory
        // layout through the loader in a scratch VM.
        let mut vm = mc_hypervisor::Vm::new(VmId(0), "t", AddressWidth::W32);
        let pe = ModuleBlueprint::new(name, AddressWidth::W32, text_size)
            .build()
            .unwrap();
        let m = mc_guest::load_module(&mut vm, &pe, name, 0xF700_0000).unwrap();
        let mut bytes = vec![0u8; m.size as usize];
        vm.read_virt(m.base, &mut bytes).unwrap();
        ModuleImage {
            vm: VmId(0),
            vm_name: "t".into(),
            name: name.into(),
            base: m.base,
            bytes,
        }
    }

    #[test]
    fn extraction_produces_expected_parts() {
        let img = image_of("hal.dll", 8 * 1024);
        let parts = ModuleParts::extract(&img).unwrap();
        let ids: Vec<String> = parts.parts.iter().map(|p| p.id.to_string()).collect();
        assert_eq!(
            ids,
            vec![
                "IMAGE_DOS_HEADER",
                "IMAGE_NT_HEADER",
                "IMAGE_FILE_HEADER",
                "IMAGE_OPTIONAL_HEADER",
                "SECTION_HEADER(.text)",
                "SECTION_HEADER(.rdata)",
                "SECTION_HEADER(.data)",
                "SECTION_HEADER(.reloc)",
                ".text section data",
            ]
        );
        assert_eq!(parts.exec_sections.len(), 1);
        assert_eq!(parts.exec_sections[0].name, ".text");
    }

    #[test]
    fn writable_data_sections_are_not_content_hashed() {
        let img = image_of("x.sys", 4 * 1024);
        let parts = ModuleParts::extract(&img).unwrap();
        assert!(parts
            .parts
            .iter()
            .all(|p| p.id != PartId::SectionData(".data".into())));
        // ...but their headers are.
        assert!(parts.part(&PartId::SectionHeader(".data".into())).is_some());
    }

    #[test]
    fn dos_part_covers_the_stub() {
        let img = image_of("stub.sys", 4 * 1024);
        let parts = ModuleParts::extract(&img).unwrap();
        let dos = parts.part(&PartId::DosHeader).unwrap();
        let dos_bytes = &img.bytes[dos.range.clone()];
        assert!(
            dos_bytes.windows(3).any(|w| w == b"DOS"),
            "stub message must hash under the DOS header part (experiment §V.B.3)"
        );
    }

    #[test]
    fn corrupt_image_is_bad_image_error() {
        let mut img = image_of("x.sys", 4 * 1024);
        img.bytes[0] = 0;
        assert!(matches!(
            ModuleParts::extract(&img),
            Err(CheckError::BadImage { .. })
        ));
    }

    #[test]
    fn part_ranges_are_within_image() {
        let img = image_of("bounds.sys", 16 * 1024);
        let parts = ModuleParts::extract(&img).unwrap();
        for p in &parts.parts {
            assert!(p.range.end <= img.bytes.len(), "{} out of bounds", p.id);
            assert!(p.range.start < p.range.end, "{} empty", p.id);
        }
    }
}
