//! Cross-VM module-*list* comparison (extension EXT-2).
//!
//! The paper checks one named module at a time. The same cross-view
//! principle applies one level up: on identical clones, the *set* of
//! loaded modules should also agree. A module present on most VMs but
//! missing from one (DKOM unlinking — rootkits hide themselves from
//! `PsLoadedModuleList`) or present on one VM only (an implanted driver)
//! is a discrepancy no per-module check would surface, because
//! [`crate::pool::ModChecker`] has to be told a name to look for.
//!
//! [`ListDiff::scan`] walks every VM's list, majority-votes per module
//! name, and reports per-VM anomalies. Combined with
//! [`crate::pool::ModChecker::check_pool`] over the union of names, this
//! turns ModChecker into a whole-pool sweeper (see
//! [`crate::pool::ModChecker::check_all_modules`]).

use std::collections::BTreeMap;

use mc_hypervisor::{Hypervisor, SimDuration, VmId};
use mc_vmi::VmiSession;

use crate::error::CheckError;
use crate::searcher::ModuleSearcher;

/// One VM's view of the module list (or why it could not be read).
#[derive(Clone, Debug)]
pub struct VmListing {
    /// VM name.
    pub vm_name: String,
    /// Module names in load order, lowercased for comparison.
    pub modules: Vec<String>,
    /// Error reading the list, if any.
    pub error: Option<String>,
}

/// A per-module anomaly across the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListAnomaly {
    /// The module is loaded on a majority of VMs but missing on these —
    /// the DKOM-hiding signature.
    MissingOn {
        /// Module name.
        module: String,
        /// VMs lacking it.
        vms: Vec<String>,
        /// VMs having it.
        present_on: usize,
    },
    /// The module is loaded only on a minority of VMs — an implant or
    /// unexpected driver.
    ExtraOn {
        /// Module name.
        module: String,
        /// VMs carrying it.
        vms: Vec<String>,
        /// Total VMs with a readable list.
        total: usize,
    },
}

impl std::fmt::Display for ListAnomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListAnomaly::MissingOn {
                module,
                vms,
                present_on,
            } => write!(
                f,
                "{module}: loaded on {present_on} VM(s) but MISSING on {vms:?} (possible DKOM hiding)"
            ),
            ListAnomaly::ExtraOn { module, vms, total } => write!(
                f,
                "{module}: loaded ONLY on {vms:?} of {total} VM(s) (possible implant)"
            ),
        }
    }
}

/// Result of a cross-VM list scan.
#[derive(Clone, Debug)]
pub struct ListDiffReport {
    /// Per-VM listings, scan order.
    pub listings: Vec<VmListing>,
    /// Anomalies, sorted by module name.
    pub anomalies: Vec<ListAnomaly>,
    /// Module names loaded on a majority of VMs (the pool's consensus
    /// module set) — the natural input for a full-pool content sweep.
    pub consensus_modules: Vec<String>,
    /// Largest advertised `SizeOfImage` per module name (lowercased),
    /// across every VM that reported it. The fleet scheduler uses this to
    /// order work units by expected capture cost.
    pub module_sizes: BTreeMap<String, u64>,
    /// Total simulated introspection time spent walking the lists.
    pub elapsed: SimDuration,
}

impl ListDiffReport {
    /// True when every readable VM reports the identical module set.
    pub fn consistent(&self) -> bool {
        self.anomalies.is_empty() && self.listings.iter().all(|l| l.error.is_none())
    }
}

impl std::fmt::Display for ListDiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "module-list cross-view over {} VM(s): {}",
            self.listings.len(),
            if self.consistent() {
                "consistent"
            } else {
                "ANOMALOUS"
            }
        )?;
        for l in &self.listings {
            if let Some(e) = &l.error {
                writeln!(f, "  {}: unreadable list: {e}", l.vm_name)?;
            }
        }
        for a in &self.anomalies {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

/// The list-diff scanner.
#[derive(Clone, Copy, Debug)]
pub struct ListDiff;

impl ListDiff {
    /// Walks every VM's loaded-module list and cross-compares the sets,
    /// with the capture fast path on (the default everywhere else).
    pub fn scan(hv: &Hypervisor, vms: &[VmId]) -> Result<ListDiffReport, CheckError> {
        Self::scan_with(hv, vms, true)
    }

    /// [`Self::scan`] with explicit fast-path control: `fast` enables the
    /// per-session translate cache and scatter-gather entry reads for each
    /// list walk. Listings are identical either way — only the simulated
    /// walk cost moves.
    pub fn scan_with(
        hv: &Hypervisor,
        vms: &[VmId],
        fast: bool,
    ) -> Result<ListDiffReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let mut listings = Vec::with_capacity(vms.len());
        let mut module_sizes: BTreeMap<String, u64> = BTreeMap::new();
        let mut elapsed = SimDuration::ZERO;
        for &vm in vms {
            let vm_name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
            match VmiSession::attach(hv, vm) {
                Ok(mut session) => {
                    if fast {
                        session = session.with_fast_capture();
                    }
                    let walked = ModuleSearcher::list_modules(&mut session);
                    elapsed += session.elapsed();
                    match walked {
                        Ok(modules) => {
                            for m in &modules {
                                let name = m.name.to_lowercase();
                                let size = module_sizes.entry(name).or_insert(0);
                                *size = (*size).max(m.size);
                            }
                            listings.push(VmListing {
                                vm_name,
                                modules: modules.iter().map(|m| m.name.to_lowercase()).collect(),
                                error: None,
                            });
                        }
                        Err(e) => listings.push(VmListing {
                            vm_name,
                            modules: Vec::new(),
                            error: Some(e.to_string()),
                        }),
                    }
                }
                Err(e) => listings.push(VmListing {
                    vm_name,
                    modules: Vec::new(),
                    error: Some(CheckError::from(e).to_string()),
                }),
            }
        }

        // Presence map over readable listings.
        let readable: Vec<&VmListing> = listings.iter().filter(|l| l.error.is_none()).collect();
        let total = readable.len();
        let mut presence: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for l in &readable {
            for m in &l.modules {
                presence.entry(m).or_default().push(&l.vm_name);
            }
        }

        let mut anomalies = Vec::new();
        let mut consensus_modules = Vec::new();
        for (module, on) in &presence {
            let count = on.len();
            if count * 2 > total {
                consensus_modules.push(module.to_string());
                if count < total {
                    let missing: Vec<String> = readable
                        .iter()
                        .filter(|l| !l.modules.iter().any(|m| m == module))
                        .map(|l| l.vm_name.clone())
                        .collect();
                    anomalies.push(ListAnomaly::MissingOn {
                        module: module.to_string(),
                        vms: missing,
                        present_on: count,
                    });
                }
            } else {
                anomalies.push(ListAnomaly::ExtraOn {
                    module: module.to_string(),
                    vms: on.iter().map(std::string::ToString::to_string).collect(),
                    total,
                });
            }
        }

        // Keep only consensus names in the size map: that is the set the
        // scheduler expands into work units.
        module_sizes.retain(|name, _| consensus_modules.iter().any(|m| m == name));

        Ok(ListDiffReport {
            listings,
            anomalies,
            consensus_modules,
            module_sizes,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("tcpip.sys", AddressWidth::W32, 8 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    #[test]
    fn clean_cloud_is_consistent() {
        let (hv, _guests, ids) = cloud(5);
        let report = ListDiff::scan(&hv, &ids).unwrap();
        assert!(report.consistent(), "{report}");
        assert_eq!(
            report.consensus_modules,
            vec!["hal.dll", "ndis.sys", "tcpip.sys"]
        );
    }

    #[test]
    fn dkom_hidden_module_reported_missing() {
        let (mut hv, guests, ids) = cloud(5);
        guests[2].dkom_hide(&mut hv, "ndis.sys").unwrap();
        let report = ListDiff::scan(&hv, &ids).unwrap();
        assert!(!report.consistent());
        assert_eq!(report.anomalies.len(), 1);
        match &report.anomalies[0] {
            ListAnomaly::MissingOn {
                module,
                vms,
                present_on,
            } => {
                assert_eq!(module, "ndis.sys");
                assert_eq!(vms, &vec!["dom3".to_string()]);
                assert_eq!(*present_on, 4);
            }
            other => panic!("wrong anomaly {other:?}"),
        }
        // The hidden module stays in the consensus set (majority has it).
        assert!(report.consensus_modules.contains(&"ndis.sys".to_string()));
    }

    #[test]
    fn implanted_driver_reported_extra() {
        let (mut hv, mut guests, ids) = cloud(4);
        // Load an extra driver on one VM only.
        let implant = ModuleBlueprint::new("rootkit.sys", AddressWidth::W32, 8 * 1024)
            .build()
            .unwrap();
        let base = 0xF7F0_0000;
        guests[1]
            .load(&mut hv, "rootkit.sys", &implant, base)
            .unwrap();

        let report = ListDiff::scan(&hv, &ids).unwrap();
        assert!(!report.consistent());
        match &report.anomalies[0] {
            ListAnomaly::ExtraOn { module, vms, total } => {
                assert_eq!(module, "rootkit.sys");
                assert_eq!(vms, &vec!["dom2".to_string()]);
                assert_eq!(*total, 4);
            }
            other => panic!("wrong anomaly {other:?}"),
        }
        assert!(!report
            .consensus_modules
            .contains(&"rootkit.sys".to_string()));
    }

    #[test]
    fn unreadable_list_is_reported_not_fatal() {
        let (mut hv, guests, ids) = cloud(3);
        // Self-loop the first entry on dom2 → corrupt list.
        let e0 = guests[1].modules[0].ldr_entry_va;
        hv.vm_mut(ids[1]).unwrap().write_ptr(e0, e0).unwrap();
        let report = ListDiff::scan(&hv, &ids).unwrap();
        assert!(!report.consistent());
        assert!(report.listings[1].error.is_some());
        // Consensus computed over the two readable VMs.
        assert_eq!(report.consensus_modules.len(), 3);
    }

    #[test]
    fn sizes_and_elapsed_ride_along_for_the_scheduler() {
        let (hv, _guests, ids) = cloud(3);
        let report = ListDiff::scan(&hv, &ids).unwrap();
        assert!(report.elapsed > SimDuration::ZERO);
        assert_eq!(report.module_sizes.len(), 3);
        assert!(
            report.module_sizes.values().all(|&s| s >= 8 * 1024),
            "{:?}",
            report.module_sizes
        );
        // Non-consensus names are pruned from the size map.
        let (mut hv2, mut guests2, ids2) = cloud(4);
        let implant = ModuleBlueprint::new("rootkit.sys", AddressWidth::W32, 8 * 1024)
            .build()
            .unwrap();
        guests2[1]
            .load(&mut hv2, "rootkit.sys", &implant, 0xF7F0_0000)
            .unwrap();
        let report2 = ListDiff::scan(&hv2, &ids2).unwrap();
        assert!(!report2.module_sizes.contains_key("rootkit.sys"));
    }

    #[test]
    fn pool_too_small_rejected() {
        let (hv, _guests, ids) = cloud(1);
        assert!(matches!(
            ListDiff::scan(&hv, &ids),
            Err(CheckError::PoolTooSmall(1))
        ));
    }
}
