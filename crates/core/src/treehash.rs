//! Incremental tree hashing — a page-granular Merkle layer over
//! [`DigestAlgo`].
//!
//! Every capture is chopped into [`PAGE_SIZE`] leaves; each leaf is
//! digested independently and the root is the digest of the concatenated
//! leaf digests. The payoff is incrementality: the leaves line up
//! one-to-one with the hypervisor's per-frame write-generation stamps
//! (PR 3), so when a rescan proves that only page `i` moved, the cache
//! re-reads and re-digests *one leaf* and recombines the root, instead of
//! re-hashing the whole image.
//!
//! Two invariants the equivalence suite pins:
//!
//! * **Flat-hash equivalence.** Two images have equal roots iff their
//!   flat `digest(algo, bytes)` values are equal (collision-freeness of
//!   the underlying hash assumed, as the paper itself does). Roots can
//!   therefore feed any grouping the flat digest fed — fingerprint
//!   buckets, cache keys — without changing a single verdict.
//! * **Leaf locality.** A single-byte mutation flips exactly the
//!   containing leaf (and hence the root); every other leaf digest is
//!   untouched. This is what makes generation-keyed partial invalidation
//!   sound: unmoved generation ⟹ unmoved bytes ⟹ reusable leaf.

use mc_hypervisor::PAGE_SIZE;

use crate::digest::{digest, DigestAlgo, PartDigest};

/// Page-granular Merkle tree over one captured image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeHash {
    algo: DigestAlgo,
    /// Total image length in bytes (the last leaf may be short).
    len: usize,
    /// One digest per [`PAGE_SIZE`] chunk, in page order.
    leaves: Vec<PartDigest>,
}

impl TreeHash {
    /// Digests every page of `bytes` and builds the tree.
    pub fn build(algo: DigestAlgo, bytes: &[u8]) -> Self {
        let leaves = if bytes.is_empty() {
            Vec::new()
        } else {
            bytes.chunks(PAGE_SIZE).map(|c| digest(algo, c)).collect()
        };
        TreeHash {
            algo,
            len: bytes.len(),
            leaves,
        }
    }

    /// The digest algorithm the leaves were produced with.
    pub fn algo(&self) -> DigestAlgo {
        self.algo
    }

    /// Number of leaves (pages).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Image length this tree covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a tree over an empty image.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The leaf digests, in page order.
    pub fn leaves(&self) -> &[PartDigest] {
        &self.leaves
    }

    /// Re-digests leaf `idx` from the page's current bytes (the caller
    /// passes exactly the chunk `bytes[idx*PAGE_SIZE..]` would cover).
    ///
    /// # Panics
    /// If `idx` is out of range or `page` is not the length the leaf
    /// covers — both are caller logic errors, not data-dependent states.
    pub fn update_leaf(&mut self, idx: usize, page: &[u8]) {
        let expected = (self.len - idx * PAGE_SIZE).min(PAGE_SIZE);
        assert_eq!(
            page.len(),
            expected,
            "leaf {idx} covers {expected} bytes, got {}",
            page.len()
        );
        self.leaves[idx] = digest(self.algo, page);
    }

    /// The root: digest of the concatenated leaf digests (length-prefixed
    /// by construction — `len` is mixed in so a truncated image with
    /// identical whole leaves cannot collide with its prefix).
    pub fn root(&self) -> PartDigest {
        let mut pre = Vec::with_capacity(8 + self.leaves.len() * 64);
        pre.extend_from_slice(&(self.len as u64).to_le_bytes());
        for leaf in &self.leaves {
            pre.extend_from_slice(leaf.to_hex().as_bytes());
        }
        digest(self.algo, &pre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 253) as u8).collect()
    }

    #[test]
    fn build_covers_every_page_including_a_short_tail() {
        let bytes = image(3 * PAGE_SIZE + 100);
        let t = TreeHash::build(DigestAlgo::Md5, &bytes);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.len(), bytes.len());
        assert_eq!(
            t.leaves()[3],
            digest(DigestAlgo::Md5, &bytes[3 * PAGE_SIZE..])
        );
    }

    #[test]
    fn equal_bytes_equal_roots_both_algos() {
        for algo in [DigestAlgo::Md5, DigestAlgo::Sha256] {
            let a = TreeHash::build(algo, &image(2 * PAGE_SIZE));
            let b = TreeHash::build(algo, &image(2 * PAGE_SIZE));
            assert_eq!(a.root(), b.root());
        }
    }

    #[test]
    fn single_byte_mutation_flips_exactly_the_containing_leaf() {
        let mut bytes = image(4 * PAGE_SIZE);
        let clean = TreeHash::build(DigestAlgo::Md5, &bytes);
        bytes[2 * PAGE_SIZE + 17] ^= 0xFF;
        let dirty = TreeHash::build(DigestAlgo::Md5, &bytes);
        for (i, (a, b)) in clean.leaves().iter().zip(dirty.leaves()).enumerate() {
            if i == 2 {
                assert_ne!(a, b, "containing leaf must flip");
            } else {
                assert_eq!(a, b, "leaf {i} must not flip");
            }
        }
        assert_ne!(clean.root(), dirty.root());
    }

    #[test]
    fn update_leaf_reaches_the_full_rebuild_state() {
        let mut bytes = image(3 * PAGE_SIZE);
        let mut t = TreeHash::build(DigestAlgo::Sha256, &bytes);
        bytes[PAGE_SIZE + 5] = 0xAA;
        t.update_leaf(1, &bytes[PAGE_SIZE..2 * PAGE_SIZE]);
        let rebuilt = TreeHash::build(DigestAlgo::Sha256, &bytes);
        assert_eq!(t, rebuilt);
        assert_eq!(t.root(), rebuilt.root());
    }

    #[test]
    fn truncation_changes_the_root_even_with_identical_leaves() {
        // A one-leaf image vs the same bytes plus an empty... the shorter
        // image shares every whole leaf with the longer one's prefix; the
        // length prefix must still split the roots.
        let long = image(2 * PAGE_SIZE);
        let t_long = TreeHash::build(DigestAlgo::Md5, &long);
        let t_short = TreeHash::build(DigestAlgo::Md5, &long[..PAGE_SIZE]);
        assert_eq!(t_long.leaves()[0], t_short.leaves()[0]);
        assert_ne!(t_long.root(), t_short.root());
    }

    #[test]
    fn empty_image_has_a_stable_root() {
        let a = TreeHash::build(DigestAlgo::Md5, &[]);
        let b = TreeHash::build(DigestAlgo::Md5, &[]);
        assert_eq!(a.leaf_count(), 0);
        assert!(a.is_empty());
        assert_eq!(a.root(), b.root());
    }

    #[test]
    #[should_panic(expected = "leaf 1 covers")]
    fn update_leaf_rejects_wrong_chunk_length() {
        let bytes = image(2 * PAGE_SIZE);
        let mut t = TreeHash::build(DigestAlgo::Md5, &bytes);
        t.update_leaf(1, &bytes[..100]);
    }
}
