//! Continuous monitoring and remediation (the paper's §III discussion).
//!
//! ModChecker is positioned as a *light-weight first-pass* check: scan the
//! pool continuously; on a discrepancy, escalate — trigger deeper analysis
//! or revert the flagged VM to a clean snapshot. [`ContinuousMonitor`]
//! implements the scan loop (optionally on a background thread streaming
//! [`MonitorEvent`]s over a crossbeam channel) and [`remediate`] implements
//! snapshot-revert remediation.

use crossbeam::channel::Sender;

use mc_hypervisor::{Hypervisor, VmId};

use crate::error::CheckError;
use crate::pool::{ModChecker, ScanMode};
use crate::report::PoolCheckReport;

/// Monitor configuration.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Modules to check each round (e.g. every module in the list, or the
    /// high-value set: hal.dll, ntfs.sys, tcpip.sys ...).
    pub modules: Vec<String>,
    /// Scan mode per round.
    pub mode: ScanMode,
}

/// One event from a monitoring round.
#[derive(Clone, Debug)]
pub enum MonitorEvent {
    /// A module scanned clean across the pool.
    Clean {
        /// Round number (0-based).
        round: usize,
        /// Module name.
        module: String,
    },
    /// A discrepancy was found — the escalation trigger.
    Discrepancy {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Full report (who mismatched, which parts).
        report: Box<PoolCheckReport>,
    },
    /// The check itself failed (e.g. pool too small).
    Failed {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Error description.
        error: String,
    },
}

/// The continuous scan loop.
#[derive(Clone, Debug)]
pub struct ContinuousMonitor {
    checker: ModChecker,
    config: MonitorConfig,
}

impl ContinuousMonitor {
    /// Creates a monitor for the given module set.
    pub fn new(config: MonitorConfig) -> Self {
        ContinuousMonitor {
            checker: ModChecker::with_mode(config.mode),
            config,
        }
    }

    /// Runs one round over all configured modules, returning reports in
    /// configuration order.
    pub fn run_round(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Vec<(String, Result<PoolCheckReport, CheckError>)> {
        self.config
            .modules
            .iter()
            .map(|m| (m.clone(), self.checker.check_pool(hv, vms, m)))
            .collect()
    }

    /// Runs `rounds` rounds, emitting an event per module per round into
    /// `events`. Blocks until done; call from a scoped thread for
    /// concurrent consumption (see the `continuous_monitoring` example).
    pub fn run(&self, hv: &Hypervisor, vms: &[VmId], rounds: usize, events: &Sender<MonitorEvent>) {
        for round in 0..rounds {
            for (module, result) in self.run_round(hv, vms) {
                let event = match result {
                    Ok(report) if report.any_discrepancy() => MonitorEvent::Discrepancy {
                        round,
                        module,
                        report: Box::new(report),
                    },
                    Ok(_) => MonitorEvent::Clean { round, module },
                    Err(e) => MonitorEvent::Failed {
                        round,
                        module,
                        error: e.to_string(),
                    },
                };
                if events.send(event).is_err() {
                    return; // receiver hung up; stop scanning
                }
            }
        }
    }
}

/// Reverts every VM the report flags as suspect to the named snapshot —
/// the paper's "machines can be reverted back to their clean state to flush
/// infections". Returns the names of reverted VMs.
pub fn remediate(
    hv: &mut Hypervisor,
    report: &PoolCheckReport,
    snapshot: &str,
) -> Result<Vec<String>, mc_hypervisor::HvError> {
    let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
    let ids: Vec<VmId> = suspects
        .iter()
        .filter_map(|name| hv.vm_by_name(name).map(|vm| vm.id))
        .collect();
    for id in ids {
        hv.vm_mut(id)?.revert(snapshot)?;
    }
    Ok(suspects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 8 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    fn monitor() -> ContinuousMonitor {
        ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into(), "ndis.sys".into()],
            mode: ScanMode::Sequential,
        })
    }

    #[test]
    fn clean_rounds_emit_clean_events() {
        let (hv, _guests, ids) = cloud(3);
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 2, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        assert_eq!(events.len(), 4, "2 rounds × 2 modules");
        assert!(events
            .iter()
            .all(|e| matches!(e, MonitorEvent::Clean { .. })));
    }

    #[test]
    fn infection_emits_discrepancy_with_report() {
        // 4 VMs: clean peers match 2 of 3 (> 3/2) and stay clean, so the
        // verdict pinpoints the infected VM. (At 3 VMs the strict-majority
        // rule flags everyone — see the worm test in pool.rs.)
        let (mut hv, guests, ids) = cloud(4);
        guests[1]
            .patch_module(&mut hv, "ndis.sys", 0x1002, &[0xCC])
            .unwrap();
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 1, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        let discrepancies: Vec<&MonitorEvent> = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Discrepancy { .. }))
            .collect();
        assert_eq!(discrepancies.len(), 1);
        match discrepancies[0] {
            MonitorEvent::Discrepancy { module, report, .. } => {
                assert_eq!(module, "ndis.sys");
                let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
                assert_eq!(suspects, vec!["dom2"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn remediation_reverts_and_next_round_is_clean() {
        let (mut hv, guests, ids) = cloud(4);
        // Take clean snapshots first (operators do this at provision time).
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();

        let m = monitor();
        let round = m.run_round(&hv, &ids);
        let (_, result) = &round[0];
        let report = result.as_ref().unwrap();
        assert!(report.any_discrepancy());

        let reverted = remediate(&mut hv, report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"]);

        let round2 = m.run_round(&hv, &ids);
        assert!(round2
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
    }

    #[test]
    fn run_stops_when_receiver_drops() {
        let (hv, _guests, ids) = cloud(2);
        let (tx, rx) = unbounded();
        drop(rx);
        // Must return promptly instead of looping forever.
        monitor().run(&hv, &ids, 1000, &tx);
    }
}
