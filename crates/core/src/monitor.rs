//! Continuous monitoring and remediation (the paper's §III discussion).
//!
//! ModChecker is positioned as a *light-weight first-pass* check: scan the
//! pool continuously; on a discrepancy, escalate — trigger deeper analysis
//! or revert the flagged VM to a clean snapshot. [`ContinuousMonitor`]
//! implements the scan loop (optionally on a background thread streaming
//! [`MonitorEvent`]s over a crossbeam channel) and [`remediate`] implements
//! snapshot-revert remediation.
//!
//! The monitor also carries per-VM health: a VM that is unscannable for
//! [`HealthPolicy::failure_threshold`] consecutive rounds trips a circuit
//! breaker and is quarantined — dropped from the scan set for
//! [`HealthPolicy::cooldown_rounds`] rounds so a flapping guest cannot
//! burn every round's introspection budget — then re-probed half-open: one
//! clean round restores it fully, one more failure re-trips the breaker
//! immediately.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use crossbeam::channel::Sender;

use mc_hypervisor::{Hypervisor, VmId};
use mc_obs::MetricsRegistry;

use crate::error::CheckError;
use crate::obs::record_pool_report;
use crate::pool::{CacheStats, CaptureCache, CheckConfig, ModChecker};
use crate::report::{PoolCheckReport, QuorumStatus, VerdictStatus};

/// Circuit-breaker policy for persistently unscannable VMs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive unscannable rounds before a VM is quarantined. Clamped
    /// to at least 1.
    pub failure_threshold: usize,
    /// Rounds a quarantined VM sits out before the half-open re-probe.
    /// Clamped to at least 1.
    pub cooldown_rounds: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            failure_threshold: 3,
            cooldown_rounds: 2,
        }
    }
}

/// Monitor configuration.
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    /// Modules to check each round (e.g. every module in the list, or the
    /// high-value set: hal.dll, ntfs.sys, tcpip.sys ...).
    pub modules: Vec<String>,
    /// Per-round scan configuration (mode, retries, deadline, quorum...).
    pub check: CheckConfig,
    /// Circuit-breaker policy.
    pub health: HealthPolicy,
}

/// Per-VM circuit-breaker state.
#[derive(Clone, Copy, Debug, Default)]
struct VmHealth {
    /// Consecutive rounds in which the VM was unscannable.
    consecutive_unscannable: usize,
    /// Quarantine rounds remaining; 0 means the VM is in the scan set.
    cooldown_left: usize,
}

/// One event from a monitoring round.
#[derive(Clone, Debug)]
pub enum MonitorEvent {
    /// A module scanned clean across the pool.
    Clean {
        /// Round number (0-based).
        round: usize,
        /// Module name.
        module: String,
    },
    /// A discrepancy was found — the escalation trigger.
    Discrepancy {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Full report (who mismatched, which parts).
        report: Box<PoolCheckReport>,
    },
    /// The scan completed but fewer VMs than the full pool took part —
    /// verdicts for the survivors are valid, coverage is not total.
    Degraded {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Full report (quorum status, who was unscannable).
        report: Box<PoolCheckReport>,
    },
    /// The check itself failed (e.g. pool too small).
    Failed {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Error description.
        error: String,
    },
    /// A VM tripped the circuit breaker and sits out the next
    /// [`HealthPolicy::cooldown_rounds`] rounds.
    VmQuarantined {
        /// Round number in which the breaker tripped.
        round: usize,
        /// VM name.
        vm_name: String,
        /// Consecutive unscannable rounds that tripped the breaker.
        consecutive_failures: usize,
    },
    /// A quarantined VM finished cooldown and rejoins the scan set
    /// (half-open: the next failure re-quarantines immediately).
    VmRestored {
        /// Round number in which the VM rejoined.
        round: usize,
        /// VM name.
        vm_name: String,
    },
}

/// The continuous scan loop.
///
/// Rounds share a [`CaptureCache`]: a module whose page write-generations
/// did not move since the previous round is re-voted from its cached
/// capture instead of being re-copied, so steady-state clean rounds cost
/// O(pages probed) rather than O(module bytes · VMs). The cache sits behind
/// a mutex because `run_round` takes `&self` (callers poll an immutable
/// monitor); contention is nil — rounds are sequential.
#[derive(Debug)]
pub struct ContinuousMonitor {
    checker: ModChecker,
    config: MonitorConfig,
    health: HashMap<VmId, VmHealth>,
    cache: Mutex<CaptureCache>,
    metrics: Mutex<MetricsRegistry>,
}

impl Clone for ContinuousMonitor {
    fn clone(&self) -> Self {
        ContinuousMonitor {
            checker: self.checker,
            config: self.config.clone(),
            health: self.health.clone(),
            cache: Mutex::new(self.cache.lock().map(|c| c.clone()).unwrap_or_default()),
            metrics: Mutex::new(self.metrics.lock().map(|m| m.clone()).unwrap_or_default()),
        }
    }
}

impl ContinuousMonitor {
    /// Creates a monitor for the given module set.
    pub fn new(config: MonitorConfig) -> Self {
        ContinuousMonitor {
            checker: ModChecker::with_config(config.check),
            config,
            health: HashMap::new(),
            cache: Mutex::new(CaptureCache::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
        }
    }

    /// Cumulative capture-cache counters across all rounds so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().map(|c| c.stats()).unwrap_or_default()
    }

    /// A snapshot of the monitor's metrics registry: every pool scan's
    /// counters and timing gauges accumulated across rounds, plus monitor
    /// lifecycle counters (`monitor_rounds_total`,
    /// `monitor_quarantines_total`, `monitor_restores_total`,
    /// `monitor_remediations_total`) and the capture-cache gauges.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.lock().map(|m| m.clone()).unwrap_or_default()
    }

    fn bump(&self, name: &str, v: u64) {
        if let Ok(mut m) = self.metrics.lock() {
            m.counter_add(name, v);
        }
    }

    /// VM names currently quarantined by the circuit breaker.
    pub fn quarantined(&self) -> Vec<VmId> {
        let mut out: Vec<VmId> = self
            .health
            .iter()
            .filter(|(_, h)| h.cooldown_left > 0)
            .map(|(&vm, _)| vm)
            .collect();
        out.sort_by_key(|vm| vm.0);
        out
    }

    /// Runs one round over all configured modules, returning reports in
    /// configuration order.
    pub fn run_round(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Vec<(String, Result<PoolCheckReport, CheckError>)> {
        let results: Vec<(String, Result<PoolCheckReport, CheckError>)> = self
            .config
            .modules
            .iter()
            .map(|m| {
                let result = match self.cache.lock() {
                    Ok(mut cache) => self.checker.check_pool_with_cache(hv, vms, m, &mut cache),
                    // Poisoned mutex (a panicking sibling thread): scan
                    // uncached rather than propagate the panic.
                    Err(_) => self.checker.check_pool(hv, vms, m),
                };
                (m.clone(), result)
            })
            .collect();

        // Metrics snapshot per round: accumulate every successful scan's
        // counters, refresh the host/cache gauges. Recording happens after
        // the scans so the bookkeeping never affects verdicts or timing.
        if let Ok(mut reg) = self.metrics.lock() {
            reg.counter_add("monitor_rounds_total", 1);
            for (_, result) in &results {
                if let Ok(report) = result {
                    record_pool_report(report, &mut reg);
                }
            }
            hv.record_metrics(&mut reg);
            if let Ok(cache) = self.cache.lock() {
                cache.record_metrics(&mut reg);
            }
        }
        results
    }

    /// Runs one *fleet* round: one full sweep of every pool in `fleet` by
    /// the given scheduler. The scheduler owns the per-pool capture caches
    /// and suspect history (so hot modules dispatch first next round);
    /// the monitor contributes the metrics ledger — `fleet_*` series plus
    /// every unit's pool-scan counters — under its own
    /// `monitor_rounds_total` lifecycle.
    pub fn run_fleet_round(
        &self,
        hv: &Hypervisor,
        sched: &crate::sched::FleetScheduler,
        fleet: &crate::sched::Fleet,
    ) -> crate::report::FleetReport {
        let report = sched.sweep(hv, fleet);
        if let Ok(mut reg) = self.metrics.lock() {
            reg.counter_add("monitor_rounds_total", 1);
            crate::obs::record_fleet_report(&report, &mut reg);
            for unit in report.units() {
                if let Ok(r) = &unit.result {
                    record_pool_report(r, &mut reg);
                }
            }
            hv.record_metrics(&mut reg);
        }
        report
    }

    /// Reverts the report's suspects to `snapshot` (the free [`remediate`]
    /// function) and evicts the reverted VMs' capture-cache entries: a
    /// reverted guest is a different memory image, and its cached captures
    /// must not survive the revert even as invalidation candidates.
    pub fn remediate(
        &self,
        hv: &mut Hypervisor,
        report: &PoolCheckReport,
        snapshot: &str,
    ) -> Result<Vec<String>, mc_hypervisor::HvError> {
        let reverted = remediate(hv, report, snapshot)?;
        if let Ok(mut cache) = self.cache.lock() {
            for name in &reverted {
                if let Some(vm) = hv.vm_by_name(name) {
                    cache.evict_vm(vm.id);
                }
            }
        }
        self.bump("monitor_remediations_total", reverted.len() as u64);
        Ok(reverted)
    }

    /// Runs `rounds` rounds, emitting an event per module per round into
    /// `events`, plus circuit-breaker events as VMs drop out and return.
    /// Blocks until done; call from a scoped thread for concurrent
    /// consumption (see the `continuous_monitoring` example).
    pub fn run(
        &mut self,
        hv: &Hypervisor,
        vms: &[VmId],
        rounds: usize,
        events: &Sender<MonitorEvent>,
    ) {
        let threshold = self.config.health.failure_threshold.max(1);
        let cooldown = self.config.health.cooldown_rounds.max(1);
        for round in 0..rounds {
            // Assemble this round's scan set; expired quarantines re-probe.
            let mut active: Vec<VmId> = Vec::with_capacity(vms.len());
            for &vm in vms {
                let h = self.health.entry(vm).or_default();
                if h.cooldown_left > 0 {
                    h.cooldown_left -= 1;
                    continue; // sits this round out
                }
                if h.consecutive_unscannable >= threshold {
                    // Cooldown just elapsed: half-open re-probe. One clean
                    // round resets the counter; one more failure re-trips.
                    h.consecutive_unscannable = threshold - 1;
                    self.bump("monitor_restores_total", 1);
                    if events
                        .send(MonitorEvent::VmRestored {
                            round,
                            vm_name: Self::vm_name(hv, vm),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                active.push(vm);
            }

            let mut unscannable_this_round: HashSet<String> = HashSet::new();
            for (module, result) in self.run_round(hv, &active) {
                let event = match result {
                    Ok(report) => {
                        unscannable_this_round.extend(
                            report
                                .verdicts
                                .iter()
                                .filter(|v| v.status == VerdictStatus::Unscannable)
                                .map(|v| v.vm_name.clone()),
                        );
                        if report.any_discrepancy() {
                            MonitorEvent::Discrepancy {
                                round,
                                module,
                                report: Box::new(report),
                            }
                        } else if report.quorum == QuorumStatus::Full {
                            MonitorEvent::Clean { round, module }
                        } else {
                            MonitorEvent::Degraded {
                                round,
                                module,
                                report: Box::new(report),
                            }
                        }
                    }
                    Err(e) => MonitorEvent::Failed {
                        round,
                        module,
                        error: e.to_string(),
                    },
                };
                if events.send(event).is_err() {
                    return; // receiver hung up; stop scanning
                }
            }

            // Health bookkeeping for the VMs that were actually probed.
            for &vm in &active {
                let name = Self::vm_name(hv, vm);
                let h = self.health.entry(vm).or_default();
                if unscannable_this_round.contains(&name) {
                    h.consecutive_unscannable += 1;
                    if h.consecutive_unscannable >= threshold {
                        h.cooldown_left = cooldown;
                        let consecutive_failures = h.consecutive_unscannable;
                        // Quarantine evicts the VM's cached captures: when
                        // it returns from cooldown it re-scans from scratch
                        // rather than trusting pre-quarantine entries.
                        if let Ok(mut cache) = self.cache.lock() {
                            cache.evict_vm(vm);
                        }
                        self.bump("monitor_quarantines_total", 1);
                        if events
                            .send(MonitorEvent::VmQuarantined {
                                round,
                                vm_name: name,
                                consecutive_failures,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                } else {
                    h.consecutive_unscannable = 0;
                }
            }
        }
    }

    fn vm_name(hv: &Hypervisor, vm: VmId) -> String {
        hv.vm(vm)
            .map_or_else(|_| format!("vm{}", vm.0), |v| v.name.clone())
    }
}

/// Reverts every VM the report flags as suspect to the named snapshot —
/// the paper's "machines can be reverted back to their clean state to flush
/// infections". Returns the names of reverted VMs.
pub fn remediate(
    hv: &mut Hypervisor,
    report: &PoolCheckReport,
    snapshot: &str,
) -> Result<Vec<String>, mc_hypervisor::HvError> {
    let suspects: Vec<String> = report.suspects().map(|v| v.vm_name.clone()).collect();
    let ids: Vec<VmId> = suspects
        .iter()
        .filter_map(|name| hv.vm_by_name(name).map(|vm| vm.id))
        .collect();
    for id in ids {
        hv.vm_mut(id)?.revert(snapshot)?;
    }
    Ok(suspects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 8 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    fn monitor() -> ContinuousMonitor {
        ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into(), "ndis.sys".into()],
            ..MonitorConfig::default()
        })
    }

    #[test]
    fn clean_rounds_emit_clean_events() {
        let (hv, _guests, ids) = cloud(3);
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 2, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        assert_eq!(events.len(), 4, "2 rounds × 2 modules");
        assert!(events
            .iter()
            .all(|e| matches!(e, MonitorEvent::Clean { .. })));
    }

    #[test]
    fn infection_emits_discrepancy_with_report() {
        // 4 VMs: clean peers match 2 of 3 (> 3/2) and stay clean, so the
        // verdict pinpoints the infected VM. (At 3 VMs the strict-majority
        // rule flags everyone — see the worm test in pool.rs.)
        let (mut hv, guests, ids) = cloud(4);
        guests[1]
            .patch_module(&mut hv, "ndis.sys", 0x1002, &[0xCC])
            .unwrap();
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 1, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        let discrepancies: Vec<&MonitorEvent> = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Discrepancy { .. }))
            .collect();
        assert_eq!(discrepancies.len(), 1);
        let MonitorEvent::Discrepancy { module, report, .. } = discrepancies[0] else {
            panic!(
                "filtered to discrepancies above, got {:?}",
                discrepancies[0]
            );
        };
        assert_eq!(module, "ndis.sys");
        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom2"]);
    }

    #[test]
    fn remediation_reverts_and_next_round_is_clean() {
        let (mut hv, guests, ids) = cloud(4);
        // Take clean snapshots first (operators do this at provision time).
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();

        let m = monitor();
        let round = m.run_round(&hv, &ids);
        let (_, result) = &round[0];
        let report = result.as_ref().unwrap();
        assert!(report.any_discrepancy());

        let reverted = remediate(&mut hv, report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"]);

        let round2 = m.run_round(&hv, &ids);
        assert!(round2
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
    }

    #[test]
    fn persistent_failure_trips_and_retrips_the_breaker() {
        use mc_hypervisor::FaultPlan;
        let (mut hv, _guests, ids) = cloud(4);
        // dom4 is gone for good: every attach fails.
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();
        m.run(&hv, &ids, 6, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();

        // Breaker lifecycle: trip after 2 failed rounds, sit out 2, re-probe
        // half-open, fail once more, re-trip immediately.
        let breaker: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { round, vm_name, .. } => {
                    Some(format!("quarantine {vm_name} @{round}"))
                }
                MonitorEvent::VmRestored { round, vm_name } => {
                    Some(format!("restore {vm_name} @{round}"))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            breaker,
            vec![
                "quarantine dom4 @1",
                "restore dom4 @4",
                "quarantine dom4 @4"
            ]
        );

        // While dom4 is probed the scans degrade; while it sits out, the
        // survivors form a full quorum and the rounds read clean.
        let per_round: Vec<(usize, &'static str)> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Clean { round, .. } => Some((*round, "clean")),
                MonitorEvent::Degraded { round, .. } => Some((*round, "degraded")),
                MonitorEvent::Discrepancy { round, .. } => Some((*round, "discrepancy")),
                MonitorEvent::Failed { round, .. } => Some((*round, "failed")),
                _ => None,
            })
            .collect();
        assert_eq!(
            per_round,
            vec![
                (0, "degraded"),
                (1, "degraded"),
                (2, "clean"),
                (3, "clean"),
                (4, "degraded"),
                (5, "clean"),
            ]
        );
    }

    #[test]
    fn steady_state_rounds_reuse_cached_captures() {
        // A realistically sized module: the saving is the skipped per-page
        // map+copy, so it grows with module size (the list walk is the
        // fixed cost both paths pay).
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new(
            "ntoskrnl.exe",
            AddressWidth::W32,
            96 * 1024,
        )];
        let guests = build_cloud_with_modules(&mut hv, 4, AddressWidth::W32, &bps).unwrap();
        let ids: Vec<VmId> = guests.iter().map(|g| g.vm).collect();
        let m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["ntoskrnl.exe".into()],
            ..MonitorConfig::default()
        });
        let cost = |round: &[(String, Result<PoolCheckReport, CheckError>)]| {
            round
                .iter()
                .map(|(_, r)| r.as_ref().unwrap().times.searcher)
                .fold(mc_hypervisor::SimDuration::ZERO, |acc, t| acc + t)
        };
        let first = m.run_round(&hv, &ids);
        let first_cost = cost(&first);
        assert_eq!(m.cache_stats().hits, 0);
        assert_eq!(m.cache_stats().misses, 4);

        let second = m.run_round(&hv, &ids);
        assert!(second
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
        assert_eq!(m.cache_stats().hits, 4);
        let second_cost = cost(&second);
        // The capture fast path compressed the cold round itself (one
        // scatter-gather read per module), so the cached round's relative
        // win is smaller than in the legacy loop — but reuse must still
        // strictly undercut re-copying the images.
        assert!(
            second_cost < first_cost,
            "cached round {second_cost} should undercut the cold round {first_cost}"
        );
    }

    #[test]
    fn remediation_refreshes_the_reverted_vms_cache_entry() {
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.run_round(&hv, &ids); // warm the cache on the clean pool

        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round(&hv, &ids);
        let report = round[0].1.as_ref().unwrap();
        assert!(report.any_discrepancy(), "patch invalidated dom1's entry");

        remediate(&mut hv, report, "clean").unwrap();
        // The revert restores pre-patch page stamps, which differ from the
        // cached (patched) capture's stamps — the moved pages must be
        // re-read (leaf-level refresh), never served back infected.
        let after = m.run_round(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
        assert!(m.cache_stats().partial_hits >= 2, "patch + revert");
        assert_eq!(m.cache_stats().invalidations, 0, "shape never changed");
    }

    #[test]
    fn quarantine_evicts_cached_captures_and_rescan_is_clean_after_restore() {
        use mc_hypervisor::FaultPlan;
        let (mut hv, _guests, ids) = cloud(4);
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into(), "ndis.sys".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();
        // Warm the cache on the healthy pool: 4 VMs × 2 modules.
        m.run(&hv, &ids, 1, &tx);
        assert_eq!(m.cache_stats().evictions, 0);

        // dom4 dies; two failing rounds trip the breaker. Its two cached
        // entries must be gone afterwards (evicted at the first fatal
        // attach failure — the quarantine eviction then finds nothing).
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        m.run(&hv, &ids, 2, &tx);
        drop(tx);
        assert_eq!(m.cache_stats().evictions, 2, "dom4's hal.dll + ndis.sys");
        let quarantined: Vec<String> = rx
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { vm_name, .. } => Some(vm_name),
                _ => None,
            })
            .collect();
        assert_eq!(quarantined, vec!["dom4"]);
        let metrics = m.metrics();
        assert_eq!(metrics.counter("monitor_quarantines_total"), 1);
        assert_eq!(metrics.counter("monitor_rounds_total"), 3);

        // The guest comes back: the next scan re-captures dom4 from
        // scratch (no stale entry to mislead it) and reads clean.
        hv.set_fault_plan(ids[3], None).unwrap();
        let round = m.run_round(&hv, &ids);
        assert!(round
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
    }

    #[test]
    fn infection_landing_during_quarantine_is_caught_at_the_half_open_probe() {
        // The full breaker lifecycle against a *changing* guest: warm →
        // quarantine (evicting the VM's cached captures) → infection lands
        // while the VM sits out → half-open re-probe. The re-probe must
        // flag the infection — if the pre-quarantine clean capture had
        // survived the eviction, the scan would resurrect it and read
        // clean, exactly the stale-answer bug this lifecycle exists to
        // prevent.
        use mc_hypervisor::FaultPlan;
        let (mut hv, guests, ids) = cloud(4);
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();

        // Warm the cache on the healthy pool: one entry per VM.
        m.run(&hv, &ids, 1, &tx);
        assert_eq!(m.cache_stats().evictions, 0);
        assert_eq!(m.cache_stats().misses, 4);

        // dom4 drops off the bus; two failing rounds trip the breaker and
        // its cached capture is evicted (fatal attach failure at round 0,
        // so the quarantine eviction finds nothing further).
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        m.run(&hv, &ids, 2, &tx);
        assert_eq!(m.cache_stats().evictions, 1, "dom4's hal.dll entry");
        assert_eq!(m.metrics().counter("monitor_quarantines_total"), 1);
        assert_eq!(m.quarantined(), vec![ids[3]]);

        // While dom4 sits out its cooldown, the infection lands and the
        // guest comes back reachable.
        guests[3]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        hv.set_fault_plan(ids[3], None).unwrap();

        // Cooldown (2 rounds) elapses, then the half-open re-probe scans
        // dom4 from scratch and must name it — fresh bytes, not the
        // evicted clean capture.
        m.run(&hv, &ids, 3, &tx);
        drop(tx);
        assert_eq!(m.metrics().counter("monitor_restores_total"), 1);
        assert!(
            m.quarantined().is_empty(),
            "probe succeeded: fully restored"
        );

        let events: Vec<MonitorEvent> = rx.iter().collect();
        let lifecycle: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { vm_name, .. } => {
                    Some(format!("quarantine {vm_name}"))
                }
                MonitorEvent::VmRestored { vm_name, .. } => Some(format!("restore {vm_name}")),
                _ => None,
            })
            .collect();
        assert_eq!(lifecycle, vec!["quarantine dom4", "restore dom4"]);
        let suspects: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Discrepancy { report, .. } => Some(report),
                _ => None,
            })
            .flat_map(|r| r.suspects().map(|v| v.vm_name.clone()))
            .collect();
        assert_eq!(
            suspects,
            vec!["dom4"],
            "the half-open probe must surface the quarantine-era infection"
        );
        // A suspect verdict is still a *successful* probe: the breaker
        // counts unscannable rounds, not bad content.
        assert_eq!(m.metrics().counter("monitor_quarantines_total"), 1);
    }

    #[test]
    fn monitor_remediate_evicts_the_reverted_vms_entries() {
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.run_round(&hv, &ids); // warm the cache on the clean pool

        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round(&hv, &ids);
        let report = round[0].1.as_ref().unwrap().clone();
        assert!(report.any_discrepancy());

        let reverted = m.remediate(&mut hv, &report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"]);
        // Both of dom1's entries go — the revert rewrote the whole guest,
        // not just the module that flagged.
        assert_eq!(m.cache_stats().evictions, 2);
        assert_eq!(m.metrics().counter("monitor_remediations_total"), 1);

        let after = m.run_round(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().map(|rep| rep.all_clean()).unwrap_or(false)));
    }

    #[test]
    fn metrics_accumulate_across_rounds() {
        let (hv, _guests, ids) = cloud(3);
        let m = monitor();
        m.run_round(&hv, &ids);
        m.run_round(&hv, &ids);
        let reg = m.metrics();
        assert_eq!(reg.counter("monitor_rounds_total"), 2);
        assert_eq!(reg.counter("scan_rounds_total"), 4, "2 rounds × 2 modules");
        assert_eq!(
            reg.counter("scan_verdict_clean_total"),
            12,
            "3 VMs × 4 scans"
        );
        assert!(reg.counter("vmi_reads_total") > 0);
        assert_eq!(reg.gauge("hv_vm_count"), Some(3.0));
        // Cache gauges reflect the cumulative stats at the last round.
        assert_eq!(
            reg.gauge("cache_hits"),
            Some(6.0),
            "round 2 hit 3 VMs × 2 modules"
        );
        assert_eq!(reg.gauge("cache_entries"), Some(6.0));
    }

    #[test]
    fn run_stops_when_receiver_drops() {
        let (hv, _guests, ids) = cloud(2);
        let (tx, rx) = unbounded();
        drop(rx);
        // Must return promptly instead of looping forever.
        monitor().run(&hv, &ids, 1000, &tx);
    }
}
