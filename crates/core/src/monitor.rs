//! Continuous monitoring and remediation (the paper's §III discussion).
//!
//! ModChecker is positioned as a *light-weight first-pass* check: scan the
//! pool continuously; on a discrepancy, escalate — trigger deeper analysis
//! or revert the flagged VM to a clean snapshot. [`ContinuousMonitor`]
//! implements the scan loop (optionally on a background thread streaming
//! [`MonitorEvent`]s over a crossbeam channel) and [`remediate`] implements
//! snapshot-revert remediation.
//!
//! The monitor also carries per-VM health: a VM that is unscannable for
//! [`HealthPolicy::failure_threshold`] consecutive rounds trips a circuit
//! breaker and is quarantined — dropped from the scan set for
//! [`HealthPolicy::cooldown_rounds`] rounds so a flapping guest cannot
//! burn every round's introspection budget — then re-probed half-open: one
//! clean round restores it fully, one more failure re-trips the breaker
//! immediately.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, PoisonError};

use crossbeam::channel::Sender;

use mc_hypervisor::{Hypervisor, RoundCtx, VmId};
use mc_obs::MetricsRegistry;

use crate::crossview::{CrossView, CrossViewConfig, CrossViewReport};
use crate::error::CheckError;
use crate::events::{EventPlane, EventPlaneStats};
use crate::obs::record_pool_report;
use crate::pool::{CacheStats, CaptureCache, CheckConfig, ModChecker};
use crate::report::{PoolCheckReport, QuorumStatus, VerdictStatus};

/// Circuit-breaker policy for persistently unscannable VMs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive unscannable rounds before a VM is quarantined. Clamped
    /// to at least 1.
    pub failure_threshold: usize,
    /// Rounds a quarantined VM sits out before the half-open re-probe.
    /// Clamped to at least 1.
    pub cooldown_rounds: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            failure_threshold: 3,
            cooldown_rounds: 2,
        }
    }
}

/// Monitor configuration.
#[derive(Clone, Debug, Default)]
pub struct MonitorConfig {
    /// Modules to check each round (e.g. every module in the list, or the
    /// high-value set: hal.dll, ntfs.sys, tcpip.sys ...).
    pub modules: Vec<String>,
    /// Per-round scan configuration (mode, retries, deadline, quorum...).
    pub check: CheckConfig,
    /// Circuit-breaker policy.
    pub health: HealthPolicy,
    /// Seeded per-round scan-phase jitter; `None` scans at a fixed phase.
    pub scan_jitter: Option<ScanJitter>,
}

/// Seeded per-round scan-phase jitter.
///
/// A scrub-race adversary that has learned the monitor's cadence re-infects
/// right after each scan and restores clean bytes just before the next one.
/// Against a fixed phase the restore window always wins; a seeded random
/// offset moves each round's scan inside the period, so a
/// (seed-determined, reproducible) subset of rounds lands inside the dirty
/// window. The offset is a pure function of `(seed, round)` — verdicts stay
/// deterministic and shard/mode invariant, and a ground-truth oracle can
/// recompute exactly which rounds catch the adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanJitter {
    /// Jitter seed.
    pub seed: u64,
    /// Exclusive upper bound on the phase offset, simulated nanoseconds.
    /// Zero disables jitter.
    pub max_ns: u64,
}

impl ScanJitter {
    /// The phase offset for `round`: a splitmix64 hash of `(seed, round)`
    /// reduced modulo [`ScanJitter::max_ns`]. Pure — no RNG state to thread
    /// through shards or scan modes.
    pub fn offset_ns(&self, round: usize) -> u64 {
        if self.max_ns == 0 {
            return 0;
        }
        let mut z = (self.seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.max_ns
    }
}

/// Per-VM circuit-breaker state.
#[derive(Clone, Copy, Debug, Default)]
struct VmHealth {
    /// Consecutive rounds in which the VM was unscannable.
    consecutive_unscannable: usize,
    /// Quarantine rounds remaining; 0 means the VM is in the scan set.
    cooldown_left: usize,
}

/// One event from a monitoring round.
#[derive(Clone, Debug)]
pub enum MonitorEvent {
    /// A module scanned clean across the pool.
    Clean {
        /// Round number (0-based).
        round: usize,
        /// Module name.
        module: String,
    },
    /// A discrepancy was found — the escalation trigger.
    Discrepancy {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Full report (who mismatched, which parts).
        report: Box<PoolCheckReport>,
    },
    /// The scan completed but fewer VMs than the full pool took part —
    /// verdicts for the survivors are valid, coverage is not total.
    Degraded {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Full report (quorum status, who was unscannable).
        report: Box<PoolCheckReport>,
    },
    /// The check itself failed (e.g. pool too small).
    Failed {
        /// Round number.
        round: usize,
        /// Module name.
        module: String,
        /// Error description.
        error: String,
    },
    /// A VM tripped the circuit breaker and sits out the next
    /// [`HealthPolicy::cooldown_rounds`] rounds.
    VmQuarantined {
        /// Round number in which the breaker tripped.
        round: usize,
        /// VM name.
        vm_name: String,
        /// Consecutive unscannable rounds that tripped the breaker.
        consecutive_failures: usize,
    },
    /// A quarantined VM finished cooldown and rejoins the scan set
    /// (half-open: the next failure re-quarantines immediately).
    VmRestored {
        /// Round number in which the VM rejoined.
        round: usize,
        /// VM name.
        vm_name: String,
    },
}

/// The continuous scan loop.
///
/// Rounds share a [`CaptureCache`]: a module whose page write-generations
/// did not move since the previous round is re-voted from its cached
/// capture instead of being re-copied, so steady-state clean rounds cost
/// O(pages probed) rather than O(module bytes · VMs). The cache sits behind
/// a mutex because `run_round` takes `&self` (callers poll an immutable
/// monitor); contention is nil — rounds are sequential.
#[derive(Debug)]
pub struct ContinuousMonitor {
    checker: ModChecker,
    config: MonitorConfig,
    health: HashMap<VmId, VmHealth>,
    cache: Mutex<CaptureCache>,
    metrics: Mutex<MetricsRegistry>,
    /// Write-trap subscription state; `Some` once [`ContinuousMonitor::arm_events`]
    /// has armed the configured modules, switching rounds to push mode.
    events: Mutex<Option<EventPlane>>,
}

impl Clone for ContinuousMonitor {
    fn clone(&self) -> Self {
        // A poisoned lock means a sibling thread panicked mid-round — the
        // data (cache entries, counters) is still internally consistent
        // because rounds only mutate it between scans, so recover the guard
        // instead of silently cloning an *empty* cache/registry (which
        // would discard every capture and metric accumulated so far).
        ContinuousMonitor {
            checker: self.checker,
            config: self.config.clone(),
            health: self.health.clone(),
            cache: Mutex::new(
                self.cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            metrics: Mutex::new(
                self.metrics
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            events: Mutex::new(
                self.events
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl ContinuousMonitor {
    /// Creates a monitor for the given module set.
    pub fn new(config: MonitorConfig) -> Self {
        ContinuousMonitor {
            checker: ModChecker::with_config(config.check),
            config,
            health: HashMap::new(),
            cache: Mutex::new(CaptureCache::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            events: Mutex::new(None),
        }
    }

    /// Cumulative capture-cache counters across all rounds so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// `(vm, module)` pairs the tamper-evidence channel flagged as
    /// scrubbed-then-restored across all rounds so far (empty unless
    /// [`CheckConfig::tamper_evidence`] is enabled).
    pub fn silent_restores(&self) -> Vec<(VmId, String)> {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .silent_restores()
    }

    /// A snapshot of the monitor's metrics registry: every pool scan's
    /// counters and timing gauges accumulated across rounds, plus monitor
    /// lifecycle counters (`monitor_rounds_total`,
    /// `monitor_quarantines_total`, `monitor_restores_total`,
    /// `monitor_remediations_total`) and the capture-cache gauges.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn bump(&self, name: &str, v: u64) {
        if let Ok(mut m) = self.metrics.lock() {
            m.counter_add(name, v);
        }
    }

    /// The scan-phase offset for `round` under the configured jitter
    /// (zero when jitter is off). Pure function of the config and round.
    pub fn scan_phase_ns(&self, round: usize) -> u64 {
        self.config.scan_jitter.map_or(0, |j| j.offset_ns(round))
    }

    /// Builds the [`RoundCtx`] an adversary-replay driver steps scripts
    /// with before this round's scan: round number, nominal period, and
    /// this monitor's jittered phase offset. Also records the offset into
    /// the metrics registry (`monitor_jittered_rounds_total`,
    /// `monitor_scan_jitter_ns`).
    pub fn round_ctx(&self, round: usize, period_ns: u64) -> RoundCtx {
        let offset = self.scan_phase_ns(round);
        if self.config.scan_jitter.is_some() {
            if let Ok(mut m) = self.metrics.lock() {
                m.counter_add("monitor_jittered_rounds_total", 1);
                #[allow(clippy::cast_precision_loss)]
                m.gauge_set("monitor_scan_jitter_ns", offset as f64);
            }
        }
        RoundCtx {
            round,
            period_ns,
            scan_offset_ns: offset,
        }
    }

    /// Runs a cross-view scan (guest list consensus vs physical header
    /// sweep, see [`CrossView`]) over the pool, recording `crossview_*`
    /// metrics into this monitor's registry.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckError::PoolTooSmall`] from the scanner.
    pub fn run_crossview(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Result<CrossViewReport, CheckError> {
        let scanner = CrossView {
            config: CrossViewConfig {
                fast_capture: self.config.check.fast_capture,
                retry: self.config.check.retry,
                ..CrossViewConfig::default()
            },
        };
        let report = scanner.scan(hv, vms)?;
        if let Ok(mut m) = self.metrics.lock() {
            report.record_metrics(&mut m);
        }
        Ok(report)
    }

    /// VM names currently quarantined by the circuit breaker.
    pub fn quarantined(&self) -> Vec<VmId> {
        let mut out: Vec<VmId> = self
            .health
            .iter()
            .filter(|(_, h)| h.cooldown_left > 0)
            .map(|(&vm, _)| vm)
            .collect();
        out.sort_by_key(|vm| vm.0);
        out
    }

    /// Runs one round over all configured modules, returning reports in
    /// configuration order.
    pub fn run_round(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Vec<(String, Result<PoolCheckReport, CheckError>)> {
        let results: Vec<(String, Result<PoolCheckReport, CheckError>)> = self
            .config
            .modules
            .iter()
            .map(|m| {
                let result = match self.cache.lock() {
                    Ok(mut cache) => self.checker.check_pool_with_cache(hv, vms, m, &mut cache),
                    // Poisoned mutex (a panicking sibling thread): scan
                    // uncached rather than propagate the panic.
                    Err(_) => self.checker.check_pool(hv, vms, m),
                };
                (m.clone(), result)
            })
            .collect();

        // Metrics snapshot per round: accumulate every successful scan's
        // counters, refresh the host/cache gauges. Recording happens after
        // the scans so the bookkeeping never affects verdicts or timing.
        if let Ok(mut reg) = self.metrics.lock() {
            reg.counter_add("monitor_rounds_total", 1);
            for (_, result) in &results {
                if let Ok(report) = result {
                    record_pool_report(report, &mut reg);
                }
            }
            hv.record_metrics(&mut reg);
            if let Ok(cache) = self.cache.lock() {
                cache.record_metrics(&mut reg);
            }
        }
        results
    }

    /// Arms write traps over every configured module on every VM in `vms`,
    /// switching subsequent [`ContinuousMonitor::run_round_events`] /
    /// [`ContinuousMonitor::run_events`] calls to push mode. Replaces any
    /// previous plane (old watches are released by the replacement plane's
    /// drop of its armed set only if re-armed — callers arm once per VM
    /// set). Returns the number of guest frames now watched.
    pub fn arm_events(&self, hv: &mut Hypervisor, vms: &[VmId]) -> Result<usize, CheckError> {
        let mut plane = EventPlane::new();
        let modules = self.config.modules.clone();
        let frames = plane.arm_modules(hv, vms, &modules)?;
        *self.events.lock().unwrap_or_else(PoisonError::into_inner) = Some(plane);
        Ok(frames)
    }

    /// True once [`ContinuousMonitor::arm_events`] has installed a plane.
    pub fn events_armed(&self) -> bool {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// The event plane's cumulative counters, if armed.
    pub fn event_stats(&self) -> Option<EventPlaneStats> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(EventPlane::stats)
    }

    /// Runs one *push-mode* round: drains the host's write events, marks
    /// the `(vm, module)` pairs they land on dirty, and scans with every
    /// armed-and-quiet pair trusted — served straight from the capture
    /// cache with zero guest reads. Dirty pairs (and pairs whose cache
    /// entry is gone, e.g. evicted by a revert) rescan through the normal
    /// probe path, so verdicts are identical to [`ContinuousMonitor::run_round`].
    /// Falls back to `run_round` wholesale when no plane is armed.
    pub fn run_round_events(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Vec<(String, Result<PoolCheckReport, CheckError>)> {
        let mut guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(plane) = guard.as_mut() else {
            drop(guard);
            return self.run_round(hv, vms);
        };

        let drained = plane.drain(hv);
        let dirty_now = plane.dirty_len() as u64;
        let mut trusted_total = 0u64;
        let results: Vec<(String, Result<PoolCheckReport, CheckError>)> = self
            .config
            .modules
            .iter()
            .map(|m| {
                let trusted = plane.trusted_for(m, vms);
                trusted_total += trusted.len() as u64;
                let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
                let result = self
                    .checker
                    .check_pool_with_cache_trusted(hv, vms, m, &mut cache, &trusted);
                (m.clone(), result)
            })
            .collect();
        // Every dirty pair either rescanned just now or belongs to a VM
        // outside `vms` (quarantined — it rescans cold on return anyway,
        // because quarantine evicted its cache entries).
        plane.clear_dirty();
        let plane_stats = plane.stats();
        drop(guard);

        if let Ok(mut reg) = self.metrics.lock() {
            reg.counter_add("monitor_rounds_total", 1);
            reg.counter_add("event_writes_drained_total", drained.len() as u64);
            reg.counter_add("event_dirty_pairs_total", dirty_now);
            reg.counter_add("event_trusted_pairs_total", trusted_total);
            let scanned = (vms.len() as u64) * (self.config.modules.len() as u64);
            reg.counter_add("event_rescans_total", scanned.saturating_sub(trusted_total));
            reg.gauge_set(
                "event_unattributed_total",
                plane_stats.unattributed_events as f64,
            );
            for e in &drained {
                reg.observe("event_delivery_ns", e.latency.as_nanos() as f64);
            }
            for (_, result) in &results {
                if let Ok(report) = result {
                    record_pool_report(report, &mut reg);
                }
            }
            hv.record_metrics(&mut reg);
            if let Ok(cache) = self.cache.lock() {
                cache.record_metrics(&mut reg);
            }
        }
        results
    }

    /// Runs one *fleet* round: one full sweep of every pool in `fleet` by
    /// the given scheduler. The scheduler owns the per-pool capture caches
    /// and suspect history (so hot modules dispatch first next round);
    /// the monitor contributes the metrics ledger — `fleet_*` series plus
    /// every unit's pool-scan counters — under its own
    /// `monitor_rounds_total` lifecycle.
    pub fn run_fleet_round(
        &self,
        hv: &Hypervisor,
        sched: &crate::sched::FleetScheduler,
        fleet: &crate::sched::Fleet,
    ) -> crate::report::FleetReport {
        let report = sched.sweep(hv, fleet);
        if let Ok(mut reg) = self.metrics.lock() {
            reg.counter_add("monitor_rounds_total", 1);
            crate::obs::record_fleet_report(&report, &mut reg);
            for unit in report.units() {
                if let Ok(r) = &unit.result {
                    record_pool_report(r, &mut reg);
                }
            }
            hv.record_metrics(&mut reg);
        }
        report
    }

    /// Reverts the report's suspects to `snapshot` (the free
    /// [`remediate_vms`] function) and evicts the reverted VMs'
    /// capture-cache entries: a reverted guest is a different memory image,
    /// and its cached captures must not survive the revert even as
    /// invalidation candidates.
    ///
    /// Eviction keys on the *id* each verdict was scanned under, never on a
    /// name re-lookup: if a suspect was renamed (and its old name possibly
    /// given to another VM) between the scan and the remediation, the
    /// revert and the eviction still land on the same — correct — VM, so a
    /// rename can never leave stale infected captures behind.
    pub fn remediate(
        &self,
        hv: &mut Hypervisor,
        report: &PoolCheckReport,
        snapshot: &str,
    ) -> Result<Vec<String>, mc_hypervisor::HvError> {
        let reverted = remediate_vms(hv, report, snapshot)?;
        if let Ok(mut cache) = self.cache.lock() {
            for (vm, _) in &reverted {
                cache.evict_vm(*vm);
            }
        }
        self.bump("monitor_remediations_total", reverted.len() as u64);
        Ok(reverted.into_iter().map(|(_, name)| name).collect())
    }

    /// Runs `rounds` rounds, emitting an event per module per round into
    /// `events`, plus circuit-breaker events as VMs drop out and return.
    /// Blocks until done; call from a scoped thread for concurrent
    /// consumption (see the `continuous_monitoring` example).
    pub fn run(
        &mut self,
        hv: &Hypervisor,
        vms: &[VmId],
        rounds: usize,
        events: &Sender<MonitorEvent>,
    ) {
        self.run_inner(hv, vms, rounds, events, false);
    }

    /// [`ContinuousMonitor::run`], but each round goes through
    /// [`ContinuousMonitor::run_round_events`]: quiet armed pairs are
    /// served from cache, only event-dirtied pairs rescan. Emits the same
    /// [`MonitorEvent`] stream (identical verdicts) as pull mode. Call
    /// [`ContinuousMonitor::arm_events`] first; without a plane this is
    /// plain polling.
    pub fn run_events(
        &mut self,
        hv: &Hypervisor,
        vms: &[VmId],
        rounds: usize,
        events: &Sender<MonitorEvent>,
    ) {
        self.run_inner(hv, vms, rounds, events, true);
    }

    fn run_inner(
        &mut self,
        hv: &Hypervisor,
        vms: &[VmId],
        rounds: usize,
        events: &Sender<MonitorEvent>,
        push: bool,
    ) {
        let threshold = self.config.health.failure_threshold.max(1);
        let cooldown = self.config.health.cooldown_rounds.max(1);
        for round in 0..rounds {
            // Assemble this round's scan set; expired quarantines re-probe.
            let mut active: Vec<VmId> = Vec::with_capacity(vms.len());
            for &vm in vms {
                let h = self.health.entry(vm).or_default();
                if h.cooldown_left > 0 {
                    h.cooldown_left -= 1;
                    continue; // sits this round out
                }
                if h.consecutive_unscannable >= threshold {
                    // Cooldown just elapsed: half-open re-probe. One clean
                    // round resets the counter; one more failure re-trips.
                    h.consecutive_unscannable = threshold - 1;
                    self.bump("monitor_restores_total", 1);
                    if events
                        .send(MonitorEvent::VmRestored {
                            round,
                            vm_name: Self::vm_name(hv, vm),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                active.push(vm);
            }

            let mut unscannable_this_round: HashSet<String> = HashSet::new();
            let round_results = if push {
                self.run_round_events(hv, &active)
            } else {
                self.run_round(hv, &active)
            };
            for (module, result) in round_results {
                let event = match result {
                    Ok(report) => {
                        unscannable_this_round.extend(
                            report
                                .verdicts
                                .iter()
                                .filter(|v| v.status == VerdictStatus::Unscannable)
                                .map(|v| v.vm_name.clone()),
                        );
                        if report.any_discrepancy() {
                            MonitorEvent::Discrepancy {
                                round,
                                module,
                                report: Box::new(report),
                            }
                        } else if report.quorum == QuorumStatus::Full {
                            MonitorEvent::Clean { round, module }
                        } else {
                            MonitorEvent::Degraded {
                                round,
                                module,
                                report: Box::new(report),
                            }
                        }
                    }
                    Err(e) => MonitorEvent::Failed {
                        round,
                        module,
                        error: e.to_string(),
                    },
                };
                if events.send(event).is_err() {
                    return; // receiver hung up; stop scanning
                }
            }

            // Health bookkeeping for the VMs that were actually probed.
            for &vm in &active {
                let name = Self::vm_name(hv, vm);
                let h = self.health.entry(vm).or_default();
                if unscannable_this_round.contains(&name) {
                    h.consecutive_unscannable += 1;
                    if h.consecutive_unscannable >= threshold {
                        h.cooldown_left = cooldown;
                        let consecutive_failures = h.consecutive_unscannable;
                        // Quarantine evicts the VM's cached captures: when
                        // it returns from cooldown it re-scans from scratch
                        // rather than trusting pre-quarantine entries.
                        if let Ok(mut cache) = self.cache.lock() {
                            cache.evict_vm(vm);
                        }
                        self.bump("monitor_quarantines_total", 1);
                        if events
                            .send(MonitorEvent::VmQuarantined {
                                round,
                                vm_name: name,
                                consecutive_failures,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                } else {
                    h.consecutive_unscannable = 0;
                }
            }
        }
    }

    fn vm_name(hv: &Hypervisor, vm: VmId) -> String {
        hv.vm(vm)
            .map_or_else(|_| format!("vm{}", vm.0), |v| v.name.clone())
    }
}

/// Reverts every VM the report flags as suspect to the named snapshot —
/// the paper's "machines can be reverted back to their clean state to flush
/// infections". Returns the `(id, scan-time name)` of each VM actually
/// reverted.
///
/// Suspects are addressed by the [`crate::report::VmVerdict::vm`] id
/// recorded at scan time, not by re-resolving `vm_name`: names are mutable
/// (and reusable) between scan and remediation, and reverting whichever VM
/// *currently* holds the name would both miss the infected guest and wipe
/// an innocent one. A suspect whose id no longer exists (destroyed since
/// the scan) is skipped — there is nothing left to revert.
pub fn remediate_vms(
    hv: &mut Hypervisor,
    report: &PoolCheckReport,
    snapshot: &str,
) -> Result<Vec<(VmId, String)>, mc_hypervisor::HvError> {
    let mut reverted = Vec::new();
    for v in report.suspects() {
        let Ok(vm) = hv.vm_mut(v.vm) else {
            continue; // destroyed since the scan
        };
        vm.revert(snapshot)?;
        reverted.push((v.vm, v.vm_name.clone()));
    }
    Ok(reverted)
}

/// Name-returning convenience over [`remediate_vms`] (reverts by scan-time
/// id; returns the scan-time names of the VMs actually reverted).
pub fn remediate(
    hv: &mut Hypervisor,
    report: &PoolCheckReport,
    snapshot: &str,
) -> Result<Vec<String>, mc_hypervisor::HvError> {
    Ok(remediate_vms(hv, report, snapshot)?
        .into_iter()
        .map(|(_, name)| name)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 8 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    fn monitor() -> ContinuousMonitor {
        ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into(), "ndis.sys".into()],
            ..MonitorConfig::default()
        })
    }

    #[test]
    fn clean_rounds_emit_clean_events() {
        let (hv, _guests, ids) = cloud(3);
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 2, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        assert_eq!(events.len(), 4, "2 rounds × 2 modules");
        assert!(events
            .iter()
            .all(|e| matches!(e, MonitorEvent::Clean { .. })));
    }

    #[test]
    fn infection_emits_discrepancy_with_report() {
        // 4 VMs: clean peers match 2 of 3 (> 3/2) and stay clean, so the
        // verdict pinpoints the infected VM. (At 3 VMs the strict-majority
        // rule flags everyone — see the worm test in pool.rs.)
        let (mut hv, guests, ids) = cloud(4);
        guests[1]
            .patch_module(&mut hv, "ndis.sys", 0x1002, &[0xCC])
            .unwrap();
        let (tx, rx) = unbounded();
        monitor().run(&hv, &ids, 1, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();
        let discrepancies: Vec<&MonitorEvent> = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Discrepancy { .. }))
            .collect();
        assert_eq!(discrepancies.len(), 1);
        let MonitorEvent::Discrepancy { module, report, .. } = discrepancies[0] else {
            panic!(
                "filtered to discrepancies above, got {:?}",
                discrepancies[0]
            );
        };
        assert_eq!(module, "ndis.sys");
        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom2"]);
    }

    #[test]
    fn remediation_reverts_and_next_round_is_clean() {
        let (mut hv, guests, ids) = cloud(4);
        // Take clean snapshots first (operators do this at provision time).
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();

        let m = monitor();
        let round = m.run_round(&hv, &ids);
        let (_, result) = &round[0];
        let report = result.as_ref().unwrap();
        assert!(report.any_discrepancy());

        let reverted = remediate(&mut hv, report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"]);

        let round2 = m.run_round(&hv, &ids);
        assert!(round2
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
    }

    #[test]
    fn persistent_failure_trips_and_retrips_the_breaker() {
        use mc_hypervisor::FaultPlan;
        let (mut hv, _guests, ids) = cloud(4);
        // dom4 is gone for good: every attach fails.
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();
        m.run(&hv, &ids, 6, &tx);
        drop(tx);
        let events: Vec<MonitorEvent> = rx.iter().collect();

        // Breaker lifecycle: trip after 2 failed rounds, sit out 2, re-probe
        // half-open, fail once more, re-trip immediately.
        let breaker: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { round, vm_name, .. } => {
                    Some(format!("quarantine {vm_name} @{round}"))
                }
                MonitorEvent::VmRestored { round, vm_name } => {
                    Some(format!("restore {vm_name} @{round}"))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            breaker,
            vec![
                "quarantine dom4 @1",
                "restore dom4 @4",
                "quarantine dom4 @4"
            ]
        );

        // While dom4 is probed the scans degrade; while it sits out, the
        // survivors form a full quorum and the rounds read clean.
        let per_round: Vec<(usize, &'static str)> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Clean { round, .. } => Some((*round, "clean")),
                MonitorEvent::Degraded { round, .. } => Some((*round, "degraded")),
                MonitorEvent::Discrepancy { round, .. } => Some((*round, "discrepancy")),
                MonitorEvent::Failed { round, .. } => Some((*round, "failed")),
                _ => None,
            })
            .collect();
        assert_eq!(
            per_round,
            vec![
                (0, "degraded"),
                (1, "degraded"),
                (2, "clean"),
                (3, "clean"),
                (4, "degraded"),
                (5, "clean"),
            ]
        );
    }

    #[test]
    fn steady_state_rounds_reuse_cached_captures() {
        // A realistically sized module: the saving is the skipped per-page
        // map+copy, so it grows with module size (the list walk is the
        // fixed cost both paths pay).
        let mut hv = Hypervisor::new();
        let bps = vec![ModuleBlueprint::new(
            "ntoskrnl.exe",
            AddressWidth::W32,
            96 * 1024,
        )];
        let guests = build_cloud_with_modules(&mut hv, 4, AddressWidth::W32, &bps).unwrap();
        let ids: Vec<VmId> = guests.iter().map(|g| g.vm).collect();
        let m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["ntoskrnl.exe".into()],
            ..MonitorConfig::default()
        });
        let cost = |round: &[(String, Result<PoolCheckReport, CheckError>)]| {
            round
                .iter()
                .map(|(_, r)| r.as_ref().unwrap().times.searcher)
                .fold(mc_hypervisor::SimDuration::ZERO, |acc, t| acc + t)
        };
        let first = m.run_round(&hv, &ids);
        let first_cost = cost(&first);
        assert_eq!(m.cache_stats().hits, 0);
        assert_eq!(m.cache_stats().misses, 4);

        let second = m.run_round(&hv, &ids);
        assert!(second
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
        assert_eq!(m.cache_stats().hits, 4);
        let second_cost = cost(&second);
        // The capture fast path compressed the cold round itself (one
        // scatter-gather read per module), so the cached round's relative
        // win is smaller than in the legacy loop — but reuse must still
        // strictly undercut re-copying the images.
        assert!(
            second_cost < first_cost,
            "cached round {second_cost} should undercut the cold round {first_cost}"
        );
    }

    #[test]
    fn remediation_refreshes_the_reverted_vms_cache_entry() {
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.run_round(&hv, &ids); // warm the cache on the clean pool

        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round(&hv, &ids);
        let report = round[0].1.as_ref().unwrap();
        assert!(report.any_discrepancy(), "patch invalidated dom1's entry");

        remediate(&mut hv, report, "clean").unwrap();
        // The revert restores pre-patch page stamps, which differ from the
        // cached (patched) capture's stamps — the moved pages must be
        // re-read (leaf-level refresh), never served back infected.
        let after = m.run_round(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
        assert!(m.cache_stats().partial_hits >= 2, "patch + revert");
        assert_eq!(m.cache_stats().invalidations, 0, "shape never changed");
    }

    #[test]
    fn quarantine_evicts_cached_captures_and_rescan_is_clean_after_restore() {
        use mc_hypervisor::FaultPlan;
        let (mut hv, _guests, ids) = cloud(4);
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into(), "ndis.sys".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();
        // Warm the cache on the healthy pool: 4 VMs × 2 modules.
        m.run(&hv, &ids, 1, &tx);
        assert_eq!(m.cache_stats().evictions, 0);

        // dom4 dies; two failing rounds trip the breaker. Its two cached
        // entries must be gone afterwards (evicted at the first fatal
        // attach failure — the quarantine eviction then finds nothing).
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        m.run(&hv, &ids, 2, &tx);
        drop(tx);
        assert_eq!(m.cache_stats().evictions, 2, "dom4's hal.dll + ndis.sys");
        let quarantined: Vec<String> = rx
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { vm_name, .. } => Some(vm_name),
                _ => None,
            })
            .collect();
        assert_eq!(quarantined, vec!["dom4"]);
        let metrics = m.metrics();
        assert_eq!(metrics.counter("monitor_quarantines_total"), 1);
        assert_eq!(metrics.counter("monitor_rounds_total"), 3);

        // The guest comes back: the next scan re-captures dom4 from
        // scratch (no stale entry to mislead it) and reads clean.
        hv.set_fault_plan(ids[3], None).unwrap();
        let round = m.run_round(&hv, &ids);
        assert!(round
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
    }

    #[test]
    fn infection_landing_during_quarantine_is_caught_at_the_half_open_probe() {
        // The full breaker lifecycle against a *changing* guest: warm →
        // quarantine (evicting the VM's cached captures) → infection lands
        // while the VM sits out → half-open re-probe. The re-probe must
        // flag the infection — if the pre-quarantine clean capture had
        // survived the eviction, the scan would resurrect it and read
        // clean, exactly the stale-answer bug this lifecycle exists to
        // prevent.
        use mc_hypervisor::FaultPlan;
        let (mut hv, guests, ids) = cloud(4);
        let mut m = ContinuousMonitor::new(MonitorConfig {
            modules: vec!["hal.dll".into()],
            health: HealthPolicy {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
            ..MonitorConfig::default()
        });
        let (tx, rx) = unbounded();

        // Warm the cache on the healthy pool: one entry per VM.
        m.run(&hv, &ids, 1, &tx);
        assert_eq!(m.cache_stats().evictions, 0);
        assert_eq!(m.cache_stats().misses, 4);

        // dom4 drops off the bus; two failing rounds trip the breaker and
        // its cached capture is evicted (fatal attach failure at round 0,
        // so the quarantine eviction finds nothing further).
        hv.set_fault_plan(ids[3], Some(FaultPlan::none(7).lose_after(0)))
            .unwrap();
        m.run(&hv, &ids, 2, &tx);
        assert_eq!(m.cache_stats().evictions, 1, "dom4's hal.dll entry");
        assert_eq!(m.metrics().counter("monitor_quarantines_total"), 1);
        assert_eq!(m.quarantined(), vec![ids[3]]);

        // While dom4 sits out its cooldown, the infection lands and the
        // guest comes back reachable.
        guests[3]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        hv.set_fault_plan(ids[3], None).unwrap();

        // Cooldown (2 rounds) elapses, then the half-open re-probe scans
        // dom4 from scratch and must name it — fresh bytes, not the
        // evicted clean capture.
        m.run(&hv, &ids, 3, &tx);
        drop(tx);
        assert_eq!(m.metrics().counter("monitor_restores_total"), 1);
        assert!(
            m.quarantined().is_empty(),
            "probe succeeded: fully restored"
        );

        let events: Vec<MonitorEvent> = rx.iter().collect();
        let lifecycle: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::VmQuarantined { vm_name, .. } => {
                    Some(format!("quarantine {vm_name}"))
                }
                MonitorEvent::VmRestored { vm_name, .. } => Some(format!("restore {vm_name}")),
                _ => None,
            })
            .collect();
        assert_eq!(lifecycle, vec!["quarantine dom4", "restore dom4"]);
        let suspects: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::Discrepancy { report, .. } => Some(report),
                _ => None,
            })
            .flat_map(|r| r.suspects().map(|v| v.vm_name.clone()))
            .collect();
        assert_eq!(
            suspects,
            vec!["dom4"],
            "the half-open probe must surface the quarantine-era infection"
        );
        // A suspect verdict is still a *successful* probe: the breaker
        // counts unscannable rounds, not bad content.
        assert_eq!(m.metrics().counter("monitor_quarantines_total"), 1);
    }

    #[test]
    fn monitor_remediate_evicts_the_reverted_vms_entries() {
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.run_round(&hv, &ids); // warm the cache on the clean pool

        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round(&hv, &ids);
        let report = round[0].1.as_ref().unwrap().clone();
        assert!(report.any_discrepancy());

        let reverted = m.remediate(&mut hv, &report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"]);
        // Both of dom1's entries go — the revert rewrote the whole guest,
        // not just the module that flagged.
        assert_eq!(m.cache_stats().evictions, 2);
        assert_eq!(m.metrics().counter("monitor_remediations_total"), 1);

        let after = m.run_round(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
    }

    #[test]
    fn metrics_accumulate_across_rounds() {
        let (hv, _guests, ids) = cloud(3);
        let m = monitor();
        m.run_round(&hv, &ids);
        m.run_round(&hv, &ids);
        let reg = m.metrics();
        assert_eq!(reg.counter("monitor_rounds_total"), 2);
        assert_eq!(reg.counter("scan_rounds_total"), 4, "2 rounds × 2 modules");
        assert_eq!(
            reg.counter("scan_verdict_clean_total"),
            12,
            "3 VMs × 4 scans"
        );
        assert!(reg.counter("vmi_reads_total") > 0);
        assert_eq!(reg.gauge("hv_vm_count"), Some(3.0));
        // Cache gauges reflect the cumulative stats at the last round.
        assert_eq!(
            reg.gauge("cache_hits"),
            Some(6.0),
            "round 2 hit 3 VMs × 2 modules"
        );
        assert_eq!(reg.gauge("cache_entries"), Some(6.0));
    }

    #[test]
    fn remediation_by_id_survives_a_rename_race() {
        // Between the scan and the remediation, the infected VM is renamed
        // and a fresh VM steals its old name. Name-keyed remediation would
        // revert/evict the innocent name-thief and leave the infected
        // guest's stale captures live; id-keyed remediation must hit the
        // true suspect.
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.run_round(&hv, &ids); // warm the cache

        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round(&hv, &ids);
        let report = round[0].1.as_ref().unwrap().clone();
        assert_eq!(
            report
                .suspects()
                .map(|v| v.vm_name.clone())
                .collect::<Vec<_>>(),
            vec!["dom1"]
        );

        // The race: dom1 becomes dom1b, a brand-new VM takes "dom1".
        hv.rename_vm(ids[0], "dom1b").unwrap();
        hv.create_vm("dom1", AddressWidth::W32).unwrap();

        let reverted = m.remediate(&mut hv, &report, "clean").unwrap();
        assert_eq!(reverted, vec!["dom1"], "scan-time name of the true suspect");
        assert_eq!(
            m.cache_stats().evictions,
            2,
            "both of the *infected* VM's entries evicted"
        );

        // The infected guest (now dom1b) scans clean again: revert landed
        // on it and no stale infected capture survived to resurrect.
        let after = m.run_round(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
    }

    #[test]
    fn remediate_vms_skips_destroyed_suspects() {
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let m = monitor();
        let round = m.run_round(&hv, &ids);
        let mut report = round[0].1.as_ref().unwrap().clone();
        // The suspect vanishes between scan and remediation (the simulator
        // has no destroy; point the verdict at an id that never existed).
        for v in &mut report.verdicts {
            v.vm = VmId(u32::MAX);
        }
        let reverted = remediate_vms(&mut hv, &report, "clean").unwrap();
        assert!(reverted.is_empty(), "nothing left to revert");
    }

    #[test]
    fn event_rounds_match_poll_verdicts_and_skip_guest_reads_when_quiet() {
        let (mut hv, guests, ids) = cloud(4);
        let m = monitor();
        let frames = m.arm_events(&mut hv, &ids).unwrap();
        assert!(frames > 0);
        assert!(m.events_armed());

        // Cold round: nothing cached yet, every pair probes normally.
        let cold = m.run_round_events(&hv, &ids);
        assert!(cold.iter().all(|(_, r)| r.as_ref().unwrap().all_clean()));

        // Quiet steady state: every pair armed + clean cache entry → the
        // whole round is served from cache, zero guest reads.
        let reads_before = m.metrics().counter("vmi_reads_total");
        let quiet = m.run_round_events(&hv, &ids);
        assert!(quiet.iter().all(|(_, r)| r.as_ref().unwrap().all_clean()));
        let reads_after = m.metrics().counter("vmi_reads_total");
        assert_eq!(
            reads_after, reads_before,
            "quiet round reads no guest memory"
        );
        assert_eq!(m.cache_stats().trusted_hits, 8, "4 VMs × 2 modules");

        // An infection fires events; only the dirtied pair rescans, and the
        // verdict names the same suspect a poll round would.
        guests[1]
            .patch_module(&mut hv, "ndis.sys", 0x1002, &[0xCC])
            .unwrap();
        let dirty = m.run_round_events(&hv, &ids);
        let ndis = dirty.iter().find(|(m, _)| m == "ndis.sys").unwrap();
        let suspects: Vec<String> = ndis
            .1
            .as_ref()
            .unwrap()
            .suspects()
            .map(|v| v.vm_name.clone())
            .collect();
        assert_eq!(suspects, vec!["dom2"]);
        let stats = m.event_stats().unwrap();
        assert!(stats.events_drained > 0);
        assert_eq!(stats.dirty_marks, 1);
        let reg = m.metrics();
        assert!(reg.counter("event_writes_drained_total") > 0);
        assert!(reg.counter("event_trusted_pairs_total") >= 8);
    }

    #[test]
    fn event_mode_catches_revert_despite_no_trap_events() {
        // A snapshot revert rewrites guest memory *without* firing write
        // traps (hypervisor-side remap). Trust must not mask it: the
        // monitor's remediation evicts the cache entries, which disables
        // the trusted short-circuit for exactly those pairs.
        let (mut hv, guests, ids) = cloud(4);
        for id in &ids {
            hv.vm_mut(*id).unwrap().snapshot("clean");
        }
        let m = monitor();
        m.arm_events(&mut hv, &ids).unwrap();
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();
        let round = m.run_round_events(&hv, &ids);
        let report = round[0].1.as_ref().unwrap().clone();
        assert!(report.any_discrepancy());

        m.remediate(&mut hv, &report, "clean").unwrap();
        // No events fired for the revert, the pair reads armed-and-quiet —
        // but its cache entry is gone, so the next round re-probes and sees
        // the clean bytes.
        let after = m.run_round_events(&hv, &ids);
        assert!(after
            .iter()
            .all(|(_, r)| r.as_ref().is_ok_and(PoolCheckReport::all_clean)));
    }

    #[test]
    fn run_events_emits_the_same_stream_as_run() {
        let (mut hv, guests, ids) = cloud(4);
        guests[2]
            .patch_module(&mut hv, "hal.dll", 0x1002, &[0xCC])
            .unwrap();

        let (tx_pull, rx_pull) = unbounded();
        monitor().run(&hv, &ids, 3, &tx_pull);
        drop(tx_pull);

        let mut m = monitor();
        m.arm_events(&mut hv, &ids).unwrap();
        let (tx_push, rx_push) = unbounded();
        m.run_events(&hv, &ids, 3, &tx_push);
        drop(tx_push);

        let label = |e: &MonitorEvent| match e {
            MonitorEvent::Clean { round, module } => format!("clean {module} @{round}"),
            MonitorEvent::Discrepancy {
                round,
                module,
                report,
            } => format!(
                "discrepancy {module} @{round}: {:?}",
                report
                    .suspects()
                    .map(|v| v.vm_name.clone())
                    .collect::<Vec<_>>()
            ),
            other => format!("{other:?}"),
        };
        let pull: Vec<String> = rx_pull.iter().map(|e| label(&e)).collect();
        let push: Vec<String> = rx_push.iter().map(|e| label(&e)).collect();
        assert_eq!(pull, push, "push and pull must agree event for event");
    }

    #[test]
    fn run_stops_when_receiver_drops() {
        let (hv, _guests, ids) = cloud(2);
        let (tx, rx) = unbounded();
        drop(rx);
        // Must return promptly instead of looping forever.
        monitor().run(&hv, &ids, 1000, &tx);
    }
}
