//! Pool scanning: drive the three components across a cloud of VMs.
//!
//! [`ModChecker::check_one`] is the paper's primary operation: take the
//! module from one (reference) VM and compare it against the same module on
//! the other `t − 1` VMs, majority-voting the verdict. The paper's
//! prototype "accesses the virtual machines' memory in a sequence"
//! ([`ScanMode::Sequential`]); its authors note the modular design "can
//! support parallel access of virtual machines' memory which would
//! considerably enhance the runtime performance" — [`ScanMode::Parallel`]
//! implements exactly that with a rayon fan-out over VMs and pairs.
//!
//! [`ModChecker::check_pool`] extends the vote to every VM (full pairwise
//! matrix) so each VM gets a verdict in one pass — what a monitoring daemon
//! wants.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rayon::prelude::*;

use mc_hypervisor::{Hypervisor, SimDuration, VmId, PAGE_SIZE};
use mc_vmi::{RetryPolicy, VmiError, VmiSession, VmiStats};

use crate::checker::{
    canonical_form, compare_pair, compare_pair_with, CanonicalForm, ExtractedModule, PairOutcome,
    PairScratch,
};
use crate::digest::PartDigest;
use crate::error::CheckError;
use crate::parts::PartId;
use crate::report::{
    ComponentTimes, ModuleCheckReport, PoolCheckReport, QuorumStatus, VerdictError, VerdictStatus,
    VmScanStats, VmVerdict,
};
use crate::searcher::ModuleSearcher;

/// How the pool is traversed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScanMode {
    /// One VM at a time, as the paper's prototype (Figures 7/8 measure
    /// this).
    #[default]
    Sequential,
    /// Concurrent capture and pairwise checking (the paper's proposed
    /// improvement; ablation ABL-1).
    Parallel,
}

/// How cross-VM agreement is established.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompareStrategy {
    /// The paper's Algorithm 2: every pair of captures is diff-reconciled
    /// and hashed — O(t²) pairs. Robust (trusts no in-guest metadata) but
    /// quadratic in pool size.
    #[default]
    Pairwise,
    /// Canonical-form comparison: each capture is normalized once against
    /// its own load base via its `.reloc` table and hashed; verdicts come
    /// from content-addressed bucket grouping of the fingerprints — O(t),
    /// with pairwise Algorithm 2 retained as the fallback for reloc-less
    /// modules and as a targeted cross-bucket diff between bucket
    /// representatives (so the report still names disagreeing parts).
    Canonical,
}

/// Scanner configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Traversal mode.
    pub mode: ScanMode,
    /// Cross-VM comparison strategy (paper: pairwise; tentpole: canonical).
    pub compare: CompareStrategy,
    /// Enable the VMI page-map cache (libVMI-style; the paper's prototype
    /// runs uncached — ablation ABL-5).
    pub page_cache: bool,
    /// Part fingerprint algorithm (paper: MD5; ablation ABL-6).
    pub digest: crate::digest::DigestAlgo,
    /// Run the single-VM static lint pass (`mc-analysis`) over every
    /// captured image and attach non-clean reports. This is the "deeper
    /// analysis" the paper's §III defers to when voting is ambiguous: it
    /// needs no reference VM, so it names infected VMs even when the
    /// majority is compromised (EXT-4).
    pub static_prepass: bool,
    /// Retry policy for transient introspection faults (applies to every
    /// per-VM session the scan opens).
    pub retry: RetryPolicy,
    /// Per-VM simulated-time capture deadline. `None` — the default —
    /// lets a capture run as long as it takes.
    pub deadline: Option<SimDuration>,
    /// Minimum number of scannable VMs for the vote to carry weight. Below
    /// this the scan still completes but reports
    /// [`QuorumStatus::Lost`] and marks every surviving verdict
    /// [`VerdictStatus::Unscannable`].
    pub min_quorum: usize,
    /// Capture fast path (DESIGN.md §14): per-session translate caching
    /// plus scatter-gather stable reads for module captures and list
    /// walks. On by default — verdicts are byte-identical either way
    /// (the equivalence suite pins this); `false` restores the paper's
    /// page-by-page capture loop for ablation.
    pub fast_capture: bool,
    /// Tamper-evidence channel (DESIGN.md §16): when a cached capture's
    /// page write-generations moved but the refreshed bytes are identical
    /// to the cached ones, someone wrote to the module and then wrote the
    /// same bytes back — the scrub-race signature (infect after the scan,
    /// restore clean just before the next one). The scan records the
    /// `(vm, module)` pair on the cache ([`CaptureCache::silent_restores`])
    /// and bumps [`CacheStats::silent_restores`]; verdict bytes are
    /// untouched. Off by default — a legitimate guest rewriting identical
    /// bytes (e.g. an idempotent patcher) would trip it.
    pub tamper_evidence: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            mode: ScanMode::default(),
            compare: CompareStrategy::default(),
            page_cache: false,
            digest: crate::digest::DigestAlgo::default(),
            static_prepass: false,
            retry: RetryPolicy::default(),
            deadline: None,
            // Pairwise voting needs at least two captures to compare.
            min_quorum: 2,
            fast_capture: true,
            tamper_evidence: false,
        }
    }
}

/// The ModChecker driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModChecker {
    /// Configuration.
    pub config: CheckConfig,
}

/// One VM's extraction product with its component times and introspection
/// counters. The module is shared (`Arc`) so the capture cache can hand the
/// same decoded capture to successive rounds without deep-copying image
/// bytes.
struct Extraction {
    /// The decoded capture, or why this VM produced none.
    result: Result<Arc<ExtractedModule>, CheckError>,
    /// Simulated time split per component.
    times: ComponentTimes,
    /// VM name (empty when the VM id itself was unknown).
    vm_name: String,
    /// Introspection counters harvested from the per-VM session.
    vmi: VmiStats,
    /// Anomalies the fault layer injected into the session.
    fault_injections: u64,
}

impl Extraction {
    /// An extraction that failed before a session existed (attach error):
    /// no time charged, no counters.
    fn before_session(e: VmiError, vm_name: String) -> Self {
        Extraction {
            result: Err(e.into()),
            times: ComponentTimes::default(),
            vm_name,
            vmi: VmiStats::default(),
            fault_injections: 0,
        }
    }
}

impl ModChecker {
    /// Scanner with default (sequential) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scanner with an explicit mode.
    pub fn with_mode(mode: ScanMode) -> Self {
        ModChecker {
            config: CheckConfig {
                mode,
                ..CheckConfig::default()
            },
        }
    }

    /// Scanner with full configuration.
    pub fn with_config(config: CheckConfig) -> Self {
        ModChecker { config }
    }

    /// Single-VM static lint pass over one extracted image; `Some` only
    /// when the analyzer has findings. Parse failures yield no report —
    /// structural corruption already surfaces through the extraction and
    /// hashing paths.
    fn static_scan(m: &ExtractedModule) -> Option<mc_analysis::AnalysisReport> {
        mc_analysis::Analyzer::new()
            .analyze_image(
                &m.image.vm_name,
                &m.image.name,
                m.image.base,
                &m.image.bytes,
            )
            .ok()
            .filter(|r| !r.is_clean())
    }

    /// Captures and decomposes `module` from one VM, splitting simulated
    /// time per component.
    fn extract_one(&self, hv: &Hypervisor, vm: VmId, module: &str) -> Extraction {
        let mut times = ComponentTimes::default();
        let name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
        let mut session = match VmiSession::attach(hv, vm) {
            Ok(s) => s,
            Err(e) => return Extraction::before_session(e, name),
        };
        session = session.with_retry(self.config.retry);
        if let Some(deadline) = self.config.deadline {
            session = session.with_deadline(deadline);
        }
        if self.config.page_cache {
            session = session.with_page_cache();
        }
        if self.config.fast_capture {
            session = session.with_fast_capture();
        }
        let finish = |result, times, session: &VmiSession| Extraction {
            result,
            times,
            vm_name: name.clone(),
            vmi: session.stats(),
            fault_injections: session.fault_injections(),
        };

        // Module-Searcher.
        let image = match ModuleSearcher::find(&mut session, module) {
            Ok(img) => img,
            Err(e) => {
                times.searcher = session.take_elapsed();
                return finish(Err(e), times, &session);
            }
        };
        times.searcher = session.take_elapsed();

        // Module-Parser.
        let cost = *session.cost_model();
        session.charge_process(cost.parse_byte_ns, image.bytes.len() as u64);
        times.parser = session.take_elapsed();

        // Integrity-Checker part 1: header hashes (content hashing happens
        // pairwise). ExtractedModule parses + hashes headers.
        let header_bytes: u64 = 4096; // headers are a page at most
        session.charge_process(
            cost.hash_byte_ns * self.config.digest.cost_factor(),
            header_bytes,
        );
        let extracted = ExtractedModule::with_algo(image, self.config.digest).map(Arc::new);
        times.checker = session.take_elapsed();
        finish(extracted, times, &session)
    }

    /// [`Self::extract_one`] with a generation-guarded capture cache.
    ///
    /// The loaded-module list is re-walked every round (the entry itself can
    /// move or vanish), but before re-copying the image the session probes
    /// the module's page write-generations: stamps unchanged ⟹ content
    /// unchanged ⟹ the cached capture (parse + digests included) is still
    /// current. A steady-state clean round then costs the list walk plus one
    /// cheap metadata probe per page instead of mapping and copying the
    /// whole module.
    fn extract_one_cached(
        &self,
        hv: &Hypervisor,
        vm: VmId,
        module: &str,
        cache: &mut CaptureCache,
    ) -> Extraction {
        self.extract_one_cached_trusted(hv, vm, module, cache, false)
    }

    /// [`Self::extract_one_cached`] with an event-plane trust bit.
    ///
    /// `trusted` means a write-event subscriber vouches that no guest write
    /// has touched this module's watched frames since the cache entry was
    /// stored (see [`crate::monitor::EventPlane`]). The session still
    /// attaches — so fault plans fire, VM loss surfaces, and the breaker /
    /// eviction semantics are identical to the poll path — but a cached
    /// entry is then served as a full hit with *zero* guest reads and zero
    /// page walks: no list re-walk, no per-page generation probes. With no
    /// cache entry (cold, post-eviction, post-revert) the trust bit is
    /// ignored and the normal probe/capture path runs, which is what makes
    /// trust safe against event-free mutations like snapshot revert: revert
    /// goes through cache eviction, and an evicted pair is rescanned no
    /// matter what the event plane believes.
    fn extract_one_cached_trusted(
        &self,
        hv: &Hypervisor,
        vm: VmId,
        module: &str,
        cache: &mut CaptureCache,
        trusted: bool,
    ) -> Extraction {
        let mut times = ComponentTimes::default();
        let name = hv.vm(vm).map(|v| v.name.clone()).unwrap_or_default();
        let mut session = match VmiSession::attach(hv, vm) {
            Ok(s) => s,
            Err(e) => {
                // A dead VM's cached captures describe a guest that no
                // longer exists; drop every module's entry, not just this
                // one's.
                if e.is_fatal_to_vm() {
                    cache.evict_vm(vm);
                }
                return Extraction::before_session(e, name);
            }
        };
        session = session.with_retry(self.config.retry);
        if let Some(deadline) = self.config.deadline {
            session = session.with_deadline(deadline);
        }
        if self.config.page_cache {
            session = session.with_page_cache();
        }
        if self.config.fast_capture {
            session = session.with_fast_capture();
        }
        let finish = |result, times, session: &VmiSession| Extraction {
            result,
            times,
            vm_name: name.clone(),
            vmi: session.stats(),
            fault_injections: session.fault_injections(),
        };

        let key = (vm, module.to_string());

        // Event-plane short circuit: the subscriber proved the watched
        // frames quiet, so the cached capture *is* the current content —
        // serve it without touching the guest. The attach above already
        // consulted the fault plan, so a lost VM never reaches this point.
        if trusted {
            if let Some(hit) = cache.entries.get(&key) {
                if hit.algo == self.config.digest {
                    cache.stats.hits += 1;
                    cache.stats.trusted_hits += 1;
                    times.searcher = session.take_elapsed();
                    let module = Arc::clone(&hit.module);
                    return finish(Ok(module), times, &session);
                }
            }
        }

        let entry = match ModuleSearcher::find_ref(&mut session, module) {
            Ok(e) => e,
            Err(e) => {
                times.searcher = session.take_elapsed();
                Self::drop_stale(cache, vm, &key, &e);
                return finish(Err(e), times, &session);
            }
        };
        let generations = session.range_generations(entry.base, entry.size).ok();

        // Probe outcome, decided under an immutable borrow of the entry:
        // `Full` — every stamp (and base/algo) unchanged, reuse as-is;
        // `Partial` — same module shape (base, algo, page count, byte
        // length) but some stamps moved: refresh exactly those pages;
        // anything else is a stale entry and a full recapture.
        enum Probe {
            Full,
            Partial(Vec<usize>),
            Stale,
            Cold,
        }
        let probe = match (&generations, cache.entries.get(&key)) {
            (Some(gens), Some(hit)) if hit.base == entry.base && hit.algo == self.config.digest => {
                if hit.generations == *gens {
                    Probe::Full
                } else if hit.generations.len() == gens.len()
                    && hit.module.image.bytes.len() == entry.size as usize
                {
                    let dirty: Vec<usize> = gens
                        .iter()
                        .zip(&hit.generations)
                        .enumerate()
                        .filter(|(_, (now, then))| now != then)
                        .map(|(i, _)| i)
                        .collect();
                    Probe::Partial(dirty)
                } else {
                    Probe::Stale
                }
            }
            (_, Some(_)) => Probe::Stale,
            (_, None) => Probe::Cold,
        };

        match probe {
            Probe::Full => {
                let hit = &cache.entries[&key];
                cache.stats.hits += 1;
                times.searcher = session.take_elapsed();
                let module = Arc::clone(&hit.module);
                return finish(Ok(module), times, &session);
            }
            Probe::Partial(dirty) => {
                // Leaf-level refresh: re-read and re-stamp only the pages
                // whose write-generation moved; every other page's bytes
                // and tree leaf are reused verbatim. The rebuilt capture
                // replaces the entry — a refresh is exactly as current as
                // a fresh capture (the stamps were probed before the
                // copy, same conservative race story as the miss path).
                cache.stats.partial_hits += 1;
                let hit = cache.entries.remove(&key).expect("probed above");
                let gens = generations.expect("partial hits require stamps");
                let mut bytes = cache.arena.acquire(hit.module.image.bytes.len());
                bytes.copy_from_slice(&hit.module.image.bytes);
                if let Err(e) =
                    ModuleSearcher::refresh_pages(&mut session, entry.base, &mut bytes, &dirty)
                {
                    cache.arena.release(bytes);
                    times.searcher = session.take_elapsed();
                    Self::drop_stale(cache, vm, &key, &e);
                    return finish(Err(e), times, &session);
                }
                times.searcher = session.take_elapsed();

                // Tamper evidence: generations moved yet every refreshed
                // page reads back byte-identical to the cached capture —
                // the module was written and then restored. A polling scan
                // would call this round clean; the write-generation trail
                // says an adversary raced the scan window (DESIGN.md §16).
                if self.config.tamper_evidence
                    && !dirty.is_empty()
                    && dirty.iter().all(|&i| {
                        let span = (bytes.len() - i * PAGE_SIZE).min(PAGE_SIZE);
                        bytes[i * PAGE_SIZE..i * PAGE_SIZE + span]
                            == hit.module.image.bytes[i * PAGE_SIZE..i * PAGE_SIZE + span]
                    })
                {
                    cache.stats.silent_restores += 1;
                    cache.silent_restores.insert((vm, module.to_string()));
                }

                let page_span = |idx: usize| (bytes.len() - idx * PAGE_SIZE).min(PAGE_SIZE);
                let dirty_bytes: u64 = dirty.iter().map(|&i| page_span(i) as u64).sum();
                let cost = *session.cost_model();
                session.charge_process(cost.parse_byte_ns, dirty_bytes);
                times.parser = session.take_elapsed();
                // Headers live in page 0; their digests only move when it
                // does. Leaf re-digests are cache bookkeeping, uncharged —
                // the miss path never charges tree construction either.
                if dirty.contains(&0) {
                    session
                        .charge_process(cost.hash_byte_ns * self.config.digest.cost_factor(), 4096);
                }
                let mut tree = hit.tree.clone();
                for &i in &dirty {
                    tree.update_leaf(i, &bytes[i * PAGE_SIZE..i * PAGE_SIZE + page_span(i)]);
                }
                cache.stats.pages_refreshed += dirty.len() as u64;
                cache.stats.pages_reused += (tree.leaf_count() - dirty.len()) as u64;

                let image = crate::searcher::ModuleImage {
                    vm: hit.module.image.vm,
                    vm_name: hit.module.image.vm_name.clone(),
                    name: hit.module.image.name.clone(),
                    base: entry.base,
                    bytes,
                };
                let extracted = ExtractedModule::with_algo(image, self.config.digest).map(Arc::new);
                times.checker = session.take_elapsed();
                if let Ok(m) = &extracted {
                    cache.entries.insert(
                        key,
                        CacheEntry {
                            base: entry.base,
                            algo: self.config.digest,
                            generations: gens,
                            tree,
                            module: Arc::clone(m),
                        },
                    );
                }
                // The superseded capture's buffer comes back to the arena
                // if this round held the last reference.
                cache.arena.reclaim(hit.module);
                return finish(extracted, times, &session);
            }
            Probe::Stale => cache.stats.invalidations += 1,
            Probe::Cold => {}
        }
        cache.stats.misses += 1;

        // Miss: full capture, same component accounting as the uncached
        // path. The generations probed *before* the copy are stored with
        // it — a guest write racing the copy leaves the stored stamps
        // behind the content, which next round reads as a mismatch and a
        // fresh capture (conservative, never stale).
        let image = match ModuleSearcher::capture_with(&mut session, &entry, Some(&mut cache.arena))
        {
            Ok(img) => img,
            Err(e) => {
                times.searcher = session.take_elapsed();
                Self::drop_stale(cache, vm, &key, &e);
                return finish(Err(e), times, &session);
            }
        };
        times.searcher = session.take_elapsed();
        let cost = *session.cost_model();
        session.charge_process(cost.parse_byte_ns, image.bytes.len() as u64);
        times.parser = session.take_elapsed();
        let header_bytes: u64 = 4096;
        session.charge_process(
            cost.hash_byte_ns * self.config.digest.cost_factor(),
            header_bytes,
        );
        let tree = crate::treehash::TreeHash::build(self.config.digest, &image.bytes);
        let extracted = ExtractedModule::with_algo(image, self.config.digest).map(Arc::new);
        times.checker = session.take_elapsed();
        match (&extracted, generations) {
            (Ok(m), Some(gens)) => {
                let old = cache.entries.insert(
                    key,
                    CacheEntry {
                        base: entry.base,
                        algo: self.config.digest,
                        generations: gens,
                        tree,
                        module: Arc::clone(m),
                    },
                );
                if let Some(old) = old {
                    cache.arena.reclaim(old.module);
                }
            }
            _ => {
                if let Some(old) = cache.entries.remove(&key) {
                    cache.arena.reclaim(old.module);
                }
            }
        }
        finish(extracted, times, &session)
    }

    /// Cache hygiene after a failed cached extraction: a failure that is
    /// fatal to the whole VM (lost, paused out, past deadline) evicts every
    /// module's entry for that VM — its next incarnation is a different
    /// guest; anything else drops just the failing (VM, module) entry.
    fn drop_stale(cache: &mut CaptureCache, vm: VmId, key: &(VmId, String), e: &CheckError) {
        match e {
            CheckError::Vmi(ve) if ve.is_fatal_to_vm() => {
                cache.evict_vm(vm);
            }
            _ => {
                cache.entries.remove(key);
            }
        }
    }

    /// Extracts the module from every VM (mode-dependent concurrency).
    fn extract_all(&self, hv: &Hypervisor, vms: &[VmId], module: &str) -> Vec<Extraction> {
        match self.config.mode {
            ScanMode::Sequential => vms
                .iter()
                .map(|&vm| self.extract_one(hv, vm, module))
                .collect(),
            ScanMode::Parallel => vms
                .par_iter()
                .map(|&vm| self.extract_one(hv, vm, module))
                .collect(),
        }
    }

    /// The paper's check: compare `module` on `reference` against the same
    /// module on `others`; clean iff it matches a majority.
    ///
    /// Integrity-signal failures on peer VMs (module missing, unreadable,
    /// corrupt) count as failed comparisons and are reported; *unreachable*
    /// peers (lost, paused out, past deadline) are excluded from the vote
    /// entirely — they say nothing about the reference module. A failure on
    /// the reference VM itself is an error (there is nothing to vote
    /// about).
    pub fn check_one(
        &self,
        hv: &Hypervisor,
        reference: VmId,
        others: &[VmId],
        module: &str,
    ) -> Result<ModuleCheckReport, CheckError> {
        if others.is_empty() {
            return Err(CheckError::PoolTooSmall(1));
        }
        let mut all = vec![reference];
        all.extend_from_slice(others);
        let mut extractions = self.extract_all(hv, &all, module);

        let reference_ex = extractions.remove(0);
        let mut vmi = reference_ex.vmi;
        let mut fault_injections = reference_ex.fault_injections;
        let (ref_times, ref_name) = (reference_ex.times, reference_ex.vm_name);
        let reference_mod = reference_ex.result?;

        let mut per_vm_times = vec![(ref_name.clone(), ref_times)];
        let mut outcomes = Vec::new();
        let mut errors = Vec::new();
        let mut static_findings = Vec::new();
        if self.config.static_prepass {
            static_findings.extend(Self::static_scan(&reference_mod));
        }

        // Pairwise comparison cost is charged via a ledger attached to the
        // reference VM (Dom0 does this work; contention applies).
        let mut ledger = VmiSession::attach(hv, reference)?;
        ledger.take_elapsed(); // drop the attach charge; counted already

        let compare_inputs: Vec<Extraction> = extractions;
        let mut scratch = PairScratch::new();
        for ex in compare_inputs {
            per_vm_times.push((ex.vm_name.clone(), ex.times));
            vmi.accumulate(&ex.vmi);
            fault_injections += ex.fault_injections;
            let vm_name = ex.vm_name;
            match ex.result {
                Ok(other) => {
                    if self.config.static_prepass {
                        static_findings.extend(Self::static_scan(&other));
                    }
                    outcomes.push(
                        compare_pair_with(&reference_mod, &other, Some(&mut ledger), &mut scratch)
                            .expect("one scan extracts every capture under one algorithm"),
                    );
                }
                Err(e) => errors.push((vm_name, VerdictError::classify(&e))),
            }
        }
        // Attribute pairwise checker time to the reference VM's slot.
        per_vm_times[0].1.checker += ledger.take_elapsed();

        let mut times = ComponentTimes::default();
        for (_, t) in &per_vm_times {
            times.accumulate(t);
        }

        let successes = outcomes.iter().filter(|o| o.matches()).count();
        // Integrity-signal failures are failed comparisons; unreachable
        // peers drop out of the vote.
        let suspect_errors = errors
            .iter()
            .filter(|(_, e)| !e.kind.is_unscannable())
            .count();
        let comparisons = outcomes.len() + suspect_errors;
        let scanned = 1 + outcomes.len();
        let pool_size = 1 + others.len();
        let quorum = if scanned < self.config.min_quorum {
            QuorumStatus::Lost
        } else if scanned == pool_size {
            QuorumStatus::Full
        } else {
            QuorumStatus::Degraded
        };
        Ok(ModuleCheckReport {
            module: module.to_string(),
            reference: ref_name,
            outcomes,
            errors,
            successes,
            comparisons,
            clean: quorum != QuorumStatus::Lost && successes * 2 > comparisons,
            scanned,
            quorum,
            times,
            per_vm_times,
            vmi,
            fault_injections,
            static_findings,
        })
    }

    /// Full-matrix pool check: every VM gets a majority verdict.
    ///
    /// The scan *always completes*, whatever the guests do: VMs that
    /// cannot be captured are excluded from the vote (status
    /// [`VerdictStatus::Unscannable`] when unreachable,
    /// [`VerdictStatus::Suspect`] when the failure is itself an integrity
    /// signal), the survivors vote among themselves, and the report's
    /// [`QuorumStatus`] says how much the vote still means.
    pub fn check_pool(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
    ) -> Result<PoolCheckReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let extractions = self.extract_all(hv, vms, module);
        self.pool_report(hv, vms, module, extractions, None)
    }

    /// [`Self::check_pool`] with a generation-guarded capture cache (see
    /// [`CaptureCache`]): unchanged modules are re-voted from their cached
    /// captures instead of being re-copied. Verdicts are identical to the
    /// uncached scan; only the capture cost changes.
    ///
    /// Cached extraction runs sequentially — the cache is one mutable
    /// structure, and on the steady-state hit path there is no capture work
    /// left to overlap. The comparison stage still honors
    /// [`CheckConfig::mode`].
    pub fn check_pool_with_cache(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
        cache: &mut CaptureCache,
    ) -> Result<PoolCheckReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let extractions: Vec<Extraction> = vms
            .iter()
            .map(|&vm| self.extract_one_cached(hv, vm, module, cache))
            .collect();
        self.pool_report(hv, vms, module, extractions, None)
    }

    /// [`Self::check_pool_with_cache`] with per-VM event-plane trust: VMs
    /// in `trusted` (armed watches, no write events since their entry was
    /// cached) are served straight from the cache with zero guest reads
    /// and zero page walks; everyone else takes the normal probe path.
    /// Verdicts are identical to the poll scan — the same capture bytes
    /// vote — only the steady-state cost changes.
    pub fn check_pool_with_cache_trusted(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
        cache: &mut CaptureCache,
        trusted: &HashSet<VmId>,
    ) -> Result<PoolCheckReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let extractions: Vec<Extraction> = vms
            .iter()
            .map(|&vm| {
                self.extract_one_cached_trusted(hv, vm, module, cache, trusted.contains(&vm))
            })
            .collect();
        self.pool_report(hv, vms, module, extractions, None)
    }

    /// [`Self::check_pool_with_caches`] with per-VM event-plane trust (see
    /// [`Self::check_pool_with_cache_trusted`]).
    pub fn check_pool_with_caches_trusted(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
        cache: &mut CaptureCache,
        analysis: &mut AnalysisCache,
        trusted: &HashSet<VmId>,
    ) -> Result<PoolCheckReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let extractions: Vec<Extraction> = vms
            .iter()
            .map(|&vm| {
                self.extract_one_cached_trusted(hv, vm, module, cache, trusted.contains(&vm))
            })
            .collect();
        self.pool_report(hv, vms, module, extractions, Some(analysis))
    }

    /// [`Self::check_pool_with_cache`] plus a shared [`AnalysisCache`] for
    /// the static pre-pass: in canonical mode the lint engine runs once per
    /// fingerprint bucket (subdivided by import-table content, the one
    /// region the fingerprint does not cover) instead of once per VM, and
    /// identical buckets across rounds reuse the cached verdict outright.
    /// Findings are replicated to every bucket member with the VM identity
    /// and diagnostic addresses rebased, so the report is indistinguishable
    /// from a per-VM pass on any clean-or-infected pool.
    pub fn check_pool_with_caches(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
        cache: &mut CaptureCache,
        analysis: &mut AnalysisCache,
    ) -> Result<PoolCheckReport, CheckError> {
        if vms.len() < 2 {
            return Err(CheckError::PoolTooSmall(vms.len()));
        }
        let extractions: Vec<Extraction> = vms
            .iter()
            .map(|&vm| self.extract_one_cached(hv, vm, module, cache))
            .collect();
        self.pool_report(hv, vms, module, extractions, Some(analysis))
    }

    /// Shared back half of the pool scan: vote, matrix, report.
    fn pool_report(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
        module: &str,
        extractions: Vec<Extraction>,
        analysis_cache: Option<&mut AnalysisCache>,
    ) -> Result<PoolCheckReport, CheckError> {
        let mut times = ComponentTimes::default();
        let mut vmi = VmiStats::default();
        let mut fault_injections = 0u64;
        let mut per_vm = Vec::with_capacity(extractions.len());
        for ex in &extractions {
            times.accumulate(&ex.times);
            vmi.accumulate(&ex.vmi);
            fault_injections += ex.fault_injections;
            per_vm.push(VmScanStats {
                vm_name: ex.vm_name.clone(),
                times: ex.times,
                vmi: ex.vmi,
                fault_injections: ex.fault_injections,
            });
        }
        let vm_names: Vec<String> = extractions.iter().map(|ex| ex.vm_name.clone()).collect();

        // Split successes and failures, remembering positions.
        let mut extracted: Vec<(usize, Arc<ExtractedModule>)> = Vec::new();
        let mut errors: Vec<Option<VerdictError>> = vec![None; extractions.len()];
        for (i, ex) in extractions.into_iter().enumerate() {
            match ex.result {
                Ok(m) => extracted.push((i, m)),
                Err(e) => errors[i] = Some(VerdictError::classify(&e)),
            }
        }
        let scanned = extracted.len();
        let quorum = if scanned < self.config.min_quorum {
            QuorumStatus::Lost
        } else if scanned == vms.len() {
            QuorumStatus::Full
        } else {
            QuorumStatus::Degraded
        };
        // The pairwise ledger charges Dom0's comparison work to a session
        // against a VM that is actually reachable; with nothing extracted
        // there are no pairs and no ledger to keep.
        let ledger_vm = extracted.first().map(|(_, m)| m.image.vm);

        // Build the comparison matrix. Canonical mode normalizes each
        // capture once and groups by fingerprint; it degrades to the full
        // pairwise sweep when any capture lacks a parseable `.reloc` table
        // (the canonical path cannot vouch for a module it cannot
        // normalize, and mixing normalized with unnormalized digests would
        // compare incomparables).
        let mut canonical_votes: Option<HashMap<usize, CanonicalVote>> = None;
        let mut canonical_groups: Option<Vec<(Fingerprint, Vec<usize>)>> = None;
        let matrix: Vec<(usize, usize, PairOutcome)> =
            if self.config.compare == CompareStrategy::Canonical {
                match self.canonical_matrix(hv, &extracted, ledger_vm, &mut times)? {
                    Some((m, votes, groups)) => {
                        canonical_votes = Some(votes);
                        canonical_groups = Some(groups);
                        m
                    }
                    None => self.pairwise_matrix(hv, &extracted, ledger_vm, &mut times)?,
                }
            } else {
                self.pairwise_matrix(hv, &extracted, ledger_vm, &mut times)?
            };

        // Static pre-pass. The canonical bucket structure lets the lint
        // engine run once per distinct content, not once per VM; without it
        // (pairwise strategy, reloc-less fallback, or no cache offered) the
        // scan degrades gracefully to the per-VM pass.
        let static_findings: Vec<mc_analysis::AnalysisReport> = if self.config.static_prepass {
            match (&canonical_groups, analysis_cache) {
                (Some(groups), Some(cache)) => {
                    Self::bucketed_static_scan(&extracted, groups, cache)
                }
                _ => extracted
                    .iter()
                    .filter_map(|(_, m)| Self::static_scan(m))
                    .collect(),
            }
        } else {
            Vec::new()
        };

        // Per-VM verdicts: the vote runs among the scanned VMs only.
        let mut verdicts = Vec::with_capacity(vms.len());
        for (idx, vm_name) in vm_names.iter().enumerate() {
            let (successes, mut suspect_parts) = match &canonical_votes {
                // Canonical vote: a capture agrees with every other member
                // of its bucket.
                Some(votes) => votes
                    .get(&idx)
                    .map(|v| (v.successes, v.suspect_parts.clone()))
                    .unwrap_or_default(),
                // Pairwise vote: count this VM's matching pairs.
                None => {
                    let mut successes = 0usize;
                    let mut suspect_parts = Vec::new();
                    for (i, j, o) in &matrix {
                        if *i == idx || *j == idx {
                            if o.matches() {
                                successes += 1;
                            } else {
                                suspect_parts.extend(o.mismatched.iter().cloned());
                            }
                        }
                    }
                    (successes, suspect_parts)
                }
            };
            suspect_parts.sort();
            suspect_parts.dedup();
            let error = errors[idx].clone();
            let (status, comparisons) = match &error {
                // No capture from this VM: unreachable ⇒ no evidence
                // either way; an integrity-signal failure ⇒ suspect.
                Some(e) if e.kind.is_unscannable() => (VerdictStatus::Unscannable, 0),
                Some(_) => (VerdictStatus::Suspect, 0),
                // Captured, but the pool as a whole fell below quorum: the
                // "vote" (if any pairs exist at all) has no weight.
                None if quorum == QuorumStatus::Lost => (VerdictStatus::Unscannable, 0),
                None => {
                    let comparisons = scanned - 1;
                    let status = if successes * 2 > comparisons {
                        VerdictStatus::Clean
                    } else {
                        VerdictStatus::Suspect
                    };
                    (status, comparisons)
                }
            };
            verdicts.push(VmVerdict {
                vm: vms[idx],
                vm_name: vm_name.clone(),
                status,
                successes,
                comparisons,
                clean: status == VerdictStatus::Clean,
                suspect_parts,
                error,
            });
        }

        Ok(PoolCheckReport {
            module: module.to_string(),
            vm_names,
            verdicts,
            matrix: matrix.into_iter().map(|(_, _, o)| o).collect(),
            scanned,
            quorum,
            times,
            per_vm,
            vmi,
            fault_injections,
            static_findings,
        })
    }

    /// The full O(t²) pairwise matrix over successful extractions (tuple
    /// indices are positions in the original `vms` slice).
    fn pairwise_matrix(
        &self,
        hv: &Hypervisor,
        extracted: &[(usize, Arc<ExtractedModule>)],
        ledger_vm: Option<VmId>,
        times: &mut ComponentTimes,
    ) -> Result<Vec<(usize, usize, PairOutcome)>, CheckError> {
        let pairs: Vec<(usize, usize)> = (0..extracted.len())
            .flat_map(|i| ((i + 1)..extracted.len()).map(move |j| (i, j)))
            .collect();
        match self.config.mode {
            ScanMode::Sequential => {
                let mut ledger = match ledger_vm {
                    Some(vm) => {
                        let mut l = VmiSession::attach(hv, vm)?;
                        l.take_elapsed();
                        Some(l)
                    }
                    None => None,
                };
                // One scratch arena for the whole sweep: zero per-pair
                // allocations after the buffers reach section size.
                let mut scratch = PairScratch::new();
                let out = pairs
                    .iter()
                    .map(|&(i, j)| {
                        (
                            extracted[i].0,
                            extracted[j].0,
                            compare_pair_with(
                                &extracted[i].1,
                                &extracted[j].1,
                                ledger.as_mut(),
                                &mut scratch,
                            )
                            .expect("one scan extracts every capture under one algorithm"),
                        )
                    })
                    .collect();
                if let Some(l) = &mut ledger {
                    times.checker += l.take_elapsed();
                }
                Ok(out)
            }
            ScanMode::Parallel => {
                // Cost accounting in parallel mode: charge each pair on a
                // thread-local ledger and sum (total work is what matters;
                // wall-clock division is modeled in the report). A ledger
                // attach can itself fail under fault injection; the
                // comparison still runs, just uncharged — verdicts must
                // never depend on bookkeeping.
                let results: Vec<(usize, usize, PairOutcome, SimDuration)> = pairs
                    .par_iter()
                    .map(|&(i, j)| {
                        let mut ledger = ledger_vm.and_then(|vm| VmiSession::attach(hv, vm).ok());
                        if let Some(l) = &mut ledger {
                            l.take_elapsed();
                        }
                        let o = compare_pair(&extracted[i].1, &extracted[j].1, ledger.as_mut())
                            .expect("one scan extracts every capture under one algorithm");
                        let t = ledger
                            .as_mut()
                            .map_or(SimDuration::ZERO, VmiSession::take_elapsed);
                        (extracted[i].0, extracted[j].0, o, t)
                    })
                    .collect();
                let mut out = Vec::with_capacity(results.len());
                for (i, j, o, t) in results {
                    times.checker += t;
                    out.push((i, j, o));
                }
                Ok(out)
            }
        }
    }

    /// The canonical-form path: normalize+hash once per capture, bucket by
    /// fingerprint, then run pairwise Algorithm 2 only between bucket
    /// representatives to name the disagreeing parts. Returns `None` when
    /// any capture has no parseable `.reloc` table (caller falls back to
    /// the full pairwise sweep).
    fn canonical_matrix(
        &self,
        hv: &Hypervisor,
        extracted: &[(usize, Arc<ExtractedModule>)],
        ledger_vm: Option<VmId>,
        times: &mut ComponentTimes,
    ) -> Result<CanonicalOutcome, CheckError> {
        // Normalize and hash each capture once — O(t), the whole point.
        let forms: Vec<Option<CanonicalForm>> = match self.config.mode {
            ScanMode::Sequential => {
                let mut ledger = match ledger_vm {
                    Some(vm) => {
                        let mut l = VmiSession::attach(hv, vm)?;
                        l.take_elapsed();
                        Some(l)
                    }
                    None => None,
                };
                let out = extracted
                    .iter()
                    .map(|(_, m)| canonical_form(m, ledger.as_mut()))
                    .collect();
                if let Some(l) = &mut ledger {
                    times.checker += l.take_elapsed();
                }
                out
            }
            ScanMode::Parallel => {
                let results: Vec<(Option<CanonicalForm>, SimDuration)> = extracted
                    .par_iter()
                    .map(|(_, m)| {
                        let mut ledger = ledger_vm.and_then(|vm| VmiSession::attach(hv, vm).ok());
                        if let Some(l) = &mut ledger {
                            l.take_elapsed();
                        }
                        let f = canonical_form(m, ledger.as_mut());
                        let t = ledger
                            .as_mut()
                            .map_or(SimDuration::ZERO, VmiSession::take_elapsed);
                        (f, t)
                    })
                    .collect();
                let mut out = Vec::with_capacity(results.len());
                for (f, t) in results {
                    times.checker += t;
                    out.push(f);
                }
                out
            }
        };
        if forms.iter().any(Option::is_none) {
            return Ok(None);
        }
        let forms: Vec<CanonicalForm> = forms.into_iter().flatten().collect();

        // Content-addressed bucket grouping: equal fingerprints ⟺ the
        // captures would pairwise-match, so a member's successes are just
        // its bucket's size minus itself. Bucket order is fixed by first
        // member for deterministic reports.
        let mut buckets: HashMap<&[(PartId, PartDigest)], Vec<usize>> = HashMap::new();
        for (pos, f) in forms.iter().enumerate() {
            buckets.entry(f.fingerprint()).or_default().push(pos);
        }
        let mut groups: Vec<Vec<usize>> = buckets.into_values().collect();
        groups.sort_by_key(|g| g[0]);

        // Targeted cross-bucket diff between representatives (at most
        // buckets², and buckets ≪ t on any realistic pool) explains which
        // parts disagree without re-running all t² pairs.
        let mut ledger = match ledger_vm {
            Some(vm) => {
                let mut l = VmiSession::attach(hv, vm)?;
                l.take_elapsed();
                Some(l)
            }
            None => None,
        };
        let mut scratch = PairScratch::new();
        let mut matrix = Vec::new();
        let mut rep_mismatch: Vec<Vec<PartId>> = vec![Vec::new(); groups.len()];
        for gi in 0..groups.len() {
            for gj in (gi + 1)..groups.len() {
                let (pi, pj) = (groups[gi][0], groups[gj][0]);
                let o = compare_pair_with(
                    &extracted[pi].1,
                    &extracted[pj].1,
                    ledger.as_mut(),
                    &mut scratch,
                )
                .expect("one scan extracts every capture under one algorithm");
                if !o.matches() {
                    rep_mismatch[gi].extend(o.mismatched.iter().cloned());
                    rep_mismatch[gj].extend(o.mismatched.iter().cloned());
                }
                matrix.push((extracted[pi].0, extracted[pj].0, o));
            }
        }
        if let Some(l) = &mut ledger {
            times.checker += l.take_elapsed();
        }

        let mut votes = HashMap::new();
        for (gi, group) in groups.iter().enumerate() {
            let mut suspect_parts = rep_mismatch[gi].clone();
            suspect_parts.sort();
            suspect_parts.dedup();
            for &pos in group {
                votes.insert(
                    extracted[pos].0,
                    CanonicalVote {
                        successes: group.len() - 1,
                        suspect_parts: suspect_parts.clone(),
                    },
                );
            }
        }
        let keyed_groups = groups
            .into_iter()
            .map(|g| (forms[g[0]].fingerprint().to_vec(), g))
            .collect();
        Ok(Some((matrix, votes, keyed_groups)))
    }

    /// The per-bucket static pre-pass: one analyzer run per distinct
    /// module content, replicated to every VM carrying that content.
    ///
    /// The canonical fingerprint covers headers and reloc-normalized
    /// executable data — everything the lints decode *except* the import
    /// tables, so each fingerprint bucket is subdivided by an FNV-1a digest
    /// of the raw `.idata` bytes (an IAT-pivoted VM must not share its
    /// clean peers' verdict). Each subgroup's first member in scan order is
    /// analyzed (or its cached verdict reused); findings are cloned to the
    /// other members with `vm_name` swapped and every diagnostic address
    /// shifted by the member's load-base delta. Detail strings keep the
    /// representative's addresses — they are prose, not machine keys.
    fn bucketed_static_scan(
        extracted: &[(usize, Arc<ExtractedModule>)],
        groups: &[(Fingerprint, Vec<usize>)],
        cache: &mut AnalysisCache,
    ) -> Vec<mc_analysis::AnalysisReport> {
        let mut slotted: Vec<(usize, mc_analysis::AnalysisReport)> = Vec::new();
        for (fingerprint, group) in groups {
            // Subdivide by import-table content, preserving member order.
            let mut subgroups: Vec<(u64, Vec<usize>)> = Vec::new();
            for &pos in group {
                let aux = import_table_digest(&extracted[pos].1);
                match subgroups.iter_mut().find(|(a, _)| *a == aux) {
                    Some((_, members)) => members.push(pos),
                    None => subgroups.push((aux, vec![pos])),
                }
            }
            for (aux, members) in subgroups {
                let rep = &extracted[members[0]].1;
                let rep_base = rep.image.base;
                let verdict = cache.lookup_or_run(fingerprint, aux, || {
                    Self::static_scan(rep).map(|r| (rep_base, r))
                });
                let Some((analyzed_base, report)) = verdict else {
                    continue;
                };
                for &pos in &members {
                    let m = &extracted[pos].1;
                    let mut replica = report.clone();
                    replica.vm_name = m.image.vm_name.clone();
                    let shift = m.image.base.wrapping_sub(*analyzed_base);
                    for d in &mut replica.diagnostics {
                        d.va = d.va.wrapping_add(shift);
                    }
                    slotted.push((pos, replica));
                }
            }
        }
        // Emit in scan order, as the per-VM pass would.
        slotted.sort_by_key(|(pos, _)| *pos);
        slotted.into_iter().map(|(_, r)| r).collect()
    }
}

/// FNV-1a over a capture's raw `.idata` bytes — the analyzer input the
/// canonical fingerprint deliberately excludes (initialized data is outside
/// the vote's hash scope). A module without an import section digests to
/// the FNV offset basis, which is fine: all such captures in one bucket
/// genuinely share every analyzer input.
fn import_table_digest(m: &ExtractedModule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    if let Ok(parsed) = mc_pe::parser::ParsedModule::parse_memory(&m.image.bytes) {
        if let Some(idx) = parsed.find_section(".idata") {
            for &b in &m.image.bytes[parsed.sections[idx].data_range.clone()] {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// One scanned VM's canonical-mode vote inputs, keyed by its position in
/// the original `vms` slice.
#[derive(Clone, Debug, Default)]
struct CanonicalVote {
    successes: usize,
    suspect_parts: Vec<PartId>,
}

/// A canonical fingerprint, owned: the bucket key the analysis cache and
/// the per-bucket static pre-pass share with the O(t) vote.
type Fingerprint = Vec<(PartId, PartDigest)>;

/// `canonical_matrix` result: `None` = reloc-less fallback to pairwise.
/// The third element is the bucket structure — fingerprint plus member
/// positions (into `extracted`), ordered by first member.
type CanonicalOutcome = Option<(
    Vec<(usize, usize, PairOutcome)>,
    HashMap<usize, CanonicalVote>,
    Vec<(Fingerprint, Vec<usize>)>,
)>;

/// Run/hit accounting for an [`AnalysisCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// Analyzer invocations — one per distinct (fingerprint, import-table)
    /// content ever seen by this cache.
    pub runs: u64,
    /// Bucket verdicts served from the cache without running the analyzer.
    pub hits: u64,
}

/// Per-content static analysis cache for the canonical-mode pre-pass.
///
/// Keyed by (canonical fingerprint, import-table digest): together these
/// cover every input the lint engine reads, so two captures with equal keys
/// provably yield the same findings up to the load-base shift applied at
/// replication time. The cache is shared across rounds (the fleet scheduler
/// keeps one per pool), making the steady-state cost of the static pre-pass
/// zero analyzer runs per sweep.
#[derive(Clone, Debug, Default)]
pub struct AnalysisCache {
    /// `None` = analyzed and clean (or unparseable); `Some((base, report))`
    /// = findings as seen from a capture loaded at `base`.
    entries: HashMap<(Fingerprint, u64), Option<(u64, mc_analysis::AnalysisReport)>>,
    stats: AnalysisCacheStats,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative run/hit counters.
    pub fn stats(&self) -> AnalysisCacheStats {
        self.stats
    }

    /// Number of distinct contents ever analyzed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cached verdict for `(fingerprint, aux)`, running `scan`
    /// (and counting a run) only on first sight.
    fn lookup_or_run(
        &mut self,
        fingerprint: &Fingerprint,
        aux: u64,
        scan: impl FnOnce() -> Option<(u64, mc_analysis::AnalysisReport)>,
    ) -> &Option<(u64, mc_analysis::AnalysisReport)> {
        let key = (fingerprint.clone(), aux);
        if self.entries.contains_key(&key) {
            self.stats.hits += 1;
        } else {
            self.stats.runs += 1;
            self.entries.insert(key.clone(), scan());
        }
        &self.entries[&key]
    }

    /// Records the cumulative counters as gauges (`analysis_*`). Gauges for
    /// the same reason as [`CaptureCache::record_metrics`]: the stats are
    /// lifetime-cumulative and must not double-count on re-export.
    pub fn record_metrics(&self, reg: &mut mc_obs::MetricsRegistry) {
        #[allow(clippy::cast_precision_loss)]
        {
            reg.gauge_set("analysis_runs", self.stats.runs as f64);
            reg.gauge_set("analysis_hits", self.stats.hits as f64);
            reg.gauge_set("analysis_entries", self.entries.len() as f64);
        }
    }
}

/// Hit/miss accounting for a [`CaptureCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rounds that reused a cached capture (generations unchanged).
    pub hits: u64,
    /// The subset of `hits` served on event-plane trust alone — no list
    /// walk, no generation probes, zero guest reads (push mode; the trap
    /// subscriber proved the watched frames quiet).
    pub trusted_hits: u64,
    /// Rounds that refreshed only the pages whose write-generation moved
    /// and reused every other leaf of the cached capture (leaf-level
    /// partial invalidation, DESIGN.md §14).
    pub partial_hits: u64,
    /// Pages re-read and re-digested by partial hits.
    pub pages_refreshed: u64,
    /// Pages whose cached bytes and tree leaves were reused by partial
    /// hits without touching guest memory.
    pub pages_reused: u64,
    /// Rounds that captured afresh (first sight or invalidated).
    pub misses: u64,
    /// Cached entries discarded wholesale: the module relocated, resized,
    /// the digest algorithm changed, or the stamp probe itself failed —
    /// shapes the leaf-level refresh cannot bridge. (A moved generation
    /// alone is a partial hit, not an invalidation.)
    pub invalidations: u64,
    /// Cached entries discarded for VM-lifecycle reasons rather than
    /// content change: the VM was lost mid-scan, quarantined by the
    /// monitor's circuit breaker, or reverted to a snapshot. Counted per
    /// entry removed (a VM caching three modules evicts three).
    pub evictions: u64,
    /// Partial hits whose refreshed pages read back byte-identical to the
    /// cached capture while their write-generations moved — the
    /// scrubbed-then-restored signature ([`CheckConfig::tamper_evidence`]).
    pub silent_restores: u64,
}

/// Per-(VM, module) capture cache keyed by page write-generations.
///
/// An entry stores the decoded capture ([`ExtractedModule`], shared via
/// `Arc`) together with the write-generation stamp of every page it was
/// copied from. A later round probes the stamps (metadata-only, no page
/// mapping) and reuses the capture iff every stamp — and the load base and
/// digest algorithm — is unchanged; any moved generation invalidates just
/// that (VM, module) entry. This is the incremental-rescanning half of the
/// canonical-comparison tentpole: steady-state clean rounds cost O(pages
/// probed), not O(module bytes · VMs).
#[derive(Clone, Debug, Default)]
pub struct CaptureCache {
    entries: HashMap<(VmId, String), CacheEntry>,
    stats: CacheStats,
    /// Recycled backing storage for captures and partial refreshes: a
    /// steady-state sweep stops allocating once every module size has
    /// passed through once.
    arena: crate::arena::CaptureArena,
    /// `(vm, module)` pairs flagged by the tamper-evidence channel:
    /// write-generations moved, bytes did not. Accumulates across rounds
    /// (evidence log, not per-round state).
    silent_restores: std::collections::BTreeSet<(VmId, String)>,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    base: u64,
    algo: crate::digest::DigestAlgo,
    generations: Vec<mc_hypervisor::PageGeneration>,
    /// Page-granular digest tree over the cached bytes, maintained
    /// incrementally: a partial hit re-digests exactly the refreshed
    /// leaves. Leaves line up one-to-one with `generations`.
    tree: crate::treehash::TreeHash,
    module: Arc<ExtractedModule>,
}

impl CaptureCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Allocation/reuse counters of the cache's capture arena.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.arena.stats()
    }

    /// `(vm, module)` pairs the tamper-evidence channel has flagged as
    /// scrubbed-then-restored, sorted (BTreeSet order). Empty unless
    /// [`CheckConfig::tamper_evidence`] is on.
    pub fn silent_restores(&self) -> Vec<(VmId, String)> {
        self.silent_restores.iter().cloned().collect()
    }

    /// The incremental tree root of one cached capture — `None` when no
    /// entry exists. Equal roots ⟺ equal flat digests (the equivalence
    /// suite pins this), so tests can audit the incrementally-maintained
    /// tree against a from-scratch rebuild.
    pub fn tree_root(&self, vm: VmId, module: &str) -> Option<crate::digest::PartDigest> {
        self.entries
            .get(&(vm, module.to_string()))
            .map(|e| e.tree.root())
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no captures are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached capture (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops every entry belonging to one VM — called when the VM's
    /// lifecycle invalidates its captures wholesale (lost mid-scan,
    /// quarantined, snapshot-reverted). Returns how many entries went;
    /// each is counted in [`CacheStats::evictions`].
    pub fn evict_vm(&mut self, vm: VmId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(id, _), _| *id != vm);
        let evicted = before - self.entries.len();
        self.stats.evictions += evicted as u64;
        evicted
    }

    /// Records the cumulative counters as gauges (`cache_*`). Gauges — not
    /// counter adds — because the stats are already lifetime-cumulative;
    /// re-recording each round must not double-count.
    pub fn record_metrics(&self, reg: &mut mc_obs::MetricsRegistry) {
        #[allow(clippy::cast_precision_loss)]
        {
            let s = self.stats;
            reg.gauge_set("cache_hits", s.hits as f64);
            reg.gauge_set("cache_trusted_hits", s.trusted_hits as f64);
            reg.gauge_set("cache_partial_hits", s.partial_hits as f64);
            reg.gauge_set("cache_pages_refreshed", s.pages_refreshed as f64);
            reg.gauge_set("cache_pages_reused", s.pages_reused as f64);
            reg.gauge_set("cache_misses", s.misses as f64);
            reg.gauge_set("cache_invalidations", s.invalidations as f64);
            reg.gauge_set("cache_evictions", s.evictions as f64);
            reg.gauge_set("cache_entries", self.entries.len() as f64);
            reg.gauge_set("adversary_silent_restores", s.silent_restores as f64);
            let a = self.arena.stats();
            reg.gauge_set("capture_arena_allocs", a.allocs as f64);
            reg.gauge_set("capture_arena_reuses", a.reuses as f64);
            reg.gauge_set("capture_arena_recycled_bytes", a.recycled_bytes as f64);
        }
    }
}

/// Per-module sweep outcomes: `(module name, result)` in consensus order.
/// One module's failure is its own entry, never the sweep's.
pub type ModuleResults = Vec<(String, Result<crate::report::PoolCheckReport, CheckError>)>;

impl ModChecker {
    /// Whole-pool sweep (extension EXT-2): cross-compare the module *lists*
    /// first ([`crate::listdiff::ListDiff`]), then content-check every
    /// consensus module across the pool. Returns the list report plus one
    /// per-module result, in name order.
    ///
    /// One module's [`CheckError`] no longer aborts the sweep: each module
    /// carries its own `Result`, so an unscannable module among clean ones
    /// costs exactly that module. The fleet scheduler
    /// ([`crate::sched::FleetScheduler`]) inherits this isolation — only
    /// the initial list scan is still a sweep-fatal error (there is no
    /// work to enumerate without it).
    pub fn check_all_modules(
        &self,
        hv: &Hypervisor,
        vms: &[VmId],
    ) -> Result<(crate::listdiff::ListDiffReport, ModuleResults), CheckError> {
        let lists = crate::listdiff::ListDiff::scan_with(hv, vms, self.config.fast_capture)?;
        let mut reports = Vec::with_capacity(lists.consensus_modules.len());
        for module in &lists.consensus_modules {
            reports.push((module.clone(), self.check_pool(hv, vms, module)));
        }
        Ok((lists, reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::{build_cloud_with_modules, GuestOs};
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let bps = vec![
            ModuleBlueprint::new("hal.dll", width, 12 * 1024),
            ModuleBlueprint::new("http.sys", width, 20 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, width, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    #[test]
    fn clean_pool_votes_clean() {
        let (hv, _guests, ids) = cloud(5);
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        assert!(report.clean);
        assert_eq!(report.successes, 4);
        assert_eq!(report.comparisons, 4);
        assert!(report.suspect_parts().is_empty());
        assert!(report.times.total() > mc_hypervisor::SimDuration::ZERO);
        // Searcher dominates, as the paper observes.
        assert!(report.times.searcher > report.times.parser);
    }

    #[test]
    fn infected_reference_votes_suspect() {
        let (mut hv, guests, ids) = cloud(5);
        guests[0]
            .patch_module(&mut hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        assert!(!report.clean);
        assert_eq!(report.successes, 0);
    }

    #[test]
    fn infected_peer_does_not_flip_reference_verdict() {
        let (mut hv, guests, ids) = cloud(5);
        guests[2]
            .patch_module(&mut hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        assert!(report.clean, "3 of 4 matches is a majority");
        assert_eq!(report.successes, 3);
    }

    #[test]
    fn pool_check_pinpoints_the_infected_vm() {
        let (mut hv, guests, ids) = cloud(5);
        guests[3]
            .patch_module(&mut hv, "http.sys", 0x1005, &[0x90, 0x90])
            .unwrap();
        let report = ModChecker::new().check_pool(&hv, &ids, "http.sys").unwrap();
        assert!(!report.all_clean());
        let suspects: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(suspects, vec!["dom4"]);
        assert!(report.any_discrepancy());
    }

    #[test]
    fn missing_module_on_peer_is_failed_comparison() {
        let (mut hv, guests, ids) = cloud(4);
        guests[2].dkom_hide(&mut hv, "hal.dll").unwrap();
        let report = ModChecker::new()
            .check_one(&hv, ids[0], &ids[1..], "hal.dll")
            .unwrap();
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.comparisons, 3);
        assert_eq!(report.successes, 2);
        assert!(report.clean, "2 of 3 still a majority");
        assert_eq!(
            report.errors[0].1.kind,
            crate::report::VerdictErrorKind::ModuleNotFound
        );
    }

    #[test]
    fn parallel_mode_agrees_with_sequential() {
        let (mut hv, guests, ids) = cloud(6);
        guests[1]
            .patch_module(&mut hv, "hal.dll", 0x100F, &[0xE9])
            .unwrap();
        let seq = ModChecker::with_mode(ScanMode::Sequential)
            .check_pool(&hv, &ids, "hal.dll")
            .unwrap();
        let par = ModChecker::with_mode(ScanMode::Parallel)
            .check_pool(&hv, &ids, "hal.dll")
            .unwrap();
        let seq_verdicts: Vec<bool> = seq.verdicts.iter().map(|v| v.clean).collect();
        let par_verdicts: Vec<bool> = par.verdicts.iter().map(|v| v.clean).collect();
        assert_eq!(seq_verdicts, par_verdicts);
        let seq_suspects: Vec<_> = seq.suspects().map(|v| v.vm_name.clone()).collect();
        assert_eq!(seq_suspects, vec!["dom2"]);
    }

    #[test]
    fn single_vm_pool_rejected() {
        let (hv, _guests, ids) = cloud(1);
        assert!(matches!(
            ModChecker::new().check_one(&hv, ids[0], &[], "hal.dll"),
            Err(CheckError::PoolTooSmall(_))
        ));
        assert!(matches!(
            ModChecker::new().check_pool(&hv, &ids, "hal.dll"),
            Err(CheckError::PoolTooSmall(_))
        ));
    }

    #[test]
    fn sha256_scanner_agrees_with_md5_scanner() {
        let (mut hv, guests, ids) = cloud(5);
        guests[3]
            .patch_module(&mut hv, "http.sys", 0x1002, &[0x66])
            .unwrap();
        let md5 = ModChecker::new().check_pool(&hv, &ids, "http.sys").unwrap();
        let sha = ModChecker::with_config(CheckConfig {
            digest: crate::digest::DigestAlgo::Sha256,
            ..CheckConfig::default()
        })
        .check_pool(&hv, &ids, "http.sys")
        .unwrap();
        for (a, b) in md5.verdicts.iter().zip(&sha.verdicts) {
            assert_eq!(a.clean, b.clean, "{}", a.vm_name);
            assert_eq!(a.suspect_parts, b.suspect_parts);
        }
        // SHA-256's higher per-byte cost shows in the checker component.
        assert!(sha.times.checker > md5.times.checker);
    }

    #[test]
    fn page_cache_reduces_searcher_time_without_changing_verdicts() {
        let (mut hv, guests, ids) = cloud(6);
        guests[1]
            .patch_module(&mut hv, "hal.dll", 0x1006, &[0x90])
            .unwrap();
        // ABL-5 isolates the libVMI-style page-map cache, so both sides run
        // the legacy capture loop (the fast path's translate cache subsumes
        // the page cache and would flatten the comparison).
        let uncached = ModChecker::with_config(CheckConfig {
            fast_capture: false,
            ..CheckConfig::default()
        })
        .check_pool(&hv, &ids, "hal.dll")
        .unwrap();
        let cached = ModChecker::with_config(CheckConfig {
            mode: ScanMode::Sequential,
            page_cache: true,
            fast_capture: false,
            ..CheckConfig::default()
        })
        .check_pool(&hv, &ids, "hal.dll")
        .unwrap();
        // Same verdicts...
        for (a, b) in uncached.verdicts.iter().zip(&cached.verdicts) {
            assert_eq!(a.clean, b.clean);
            assert_eq!(a.suspect_parts, b.suspect_parts);
        }
        // ...cheaper searcher (the list walk re-touches pages).
        assert!(cached.times.searcher < uncached.times.searcher);
    }

    #[test]
    fn check_all_modules_sweeps_the_consensus_set() {
        let (mut hv, guests, ids) = cloud(5);
        guests[4]
            .patch_module(&mut hv, "http.sys", 0x1004, &[0x0F, 0x0B])
            .unwrap();
        guests[1].dkom_hide(&mut hv, "hal.dll").unwrap();

        let (lists, reports) = ModChecker::new().check_all_modules(&hv, &ids).unwrap();
        // hal.dll hidden on dom2 shows up in the list diff...
        assert!(!lists.consistent());
        assert!(matches!(
            &lists.anomalies[0],
            crate::listdiff::ListAnomaly::MissingOn { module, .. } if module == "hal.dll"
        ));
        // ...and both consensus modules get content reports: http.sys
        // flags dom5, hal.dll flags dom2 (capture error counts against it).
        assert_eq!(reports.len(), 2);
        let by_name: std::collections::HashMap<&str, &crate::report::PoolCheckReport> = reports
            .iter()
            .map(|(n, r)| (n.as_str(), r.as_ref().expect(n)))
            .collect();
        let http_suspects: Vec<&str> = by_name["http.sys"]
            .suspects()
            .map(|v| v.vm_name.as_str())
            .collect();
        assert_eq!(http_suspects, vec!["dom5"]);
        let hal_suspects: Vec<&str> = by_name["hal.dll"]
            .suspects()
            .map(|v| v.vm_name.as_str())
            .collect();
        assert_eq!(hal_suspects, vec!["dom2"]);
    }

    #[test]
    fn one_failing_module_no_longer_aborts_the_sweep() {
        // Regression for the sweep-abort bug: check_all_modules used to
        // `?` each module's result, so one module whose check goes
        // sideways lost every other module's verdict. Wreck http.sys's
        // in-memory PE header on *every* VM — every capture of it fails
        // structurally, the unit yields no usable vote — and assert the
        // sweep still delivers full reports for the other modules.
        let (mut hv, guests, ids) = cloud(3);
        for g in &guests {
            g.patch_module(&mut hv, "http.sys", 0, &[0u8, 0u8]).unwrap();
        }
        let (lists, reports) = ModChecker::new().check_all_modules(&hv, &ids).unwrap();
        assert!(lists.consensus_modules.contains(&"http.sys".to_string()));
        assert_eq!(reports.len(), lists.consensus_modules.len());
        let mut saw_bad = false;
        for (name, result) in &reports {
            if name == "http.sys" {
                // Carried per-module: a no-vote report (or its own error),
                // never a sweep abort.
                saw_bad = true;
                if let Ok(r) = result {
                    assert!(!r.all_clean(), "a header-wrecked module cannot be clean");
                    assert_eq!(r.scanned, 0);
                }
            } else {
                let report = result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(report.all_clean(), "{name}");
                assert_eq!(report.quorum, QuorumStatus::Full, "{name}");
            }
        }
        assert!(saw_bad);
    }

    #[test]
    fn worm_majority_infection_still_yields_discrepancy() {
        // §III discussion: when most VMs are infected, majority voting
        // mislabels, but discrepancies are still visible pool-wide.
        let (mut hv, guests, ids) = cloud(5);
        for g in guests.iter().take(3) {
            g.patch_module(&mut hv, "hal.dll", 0x1009, &[0xFE, 0xED])
                .unwrap();
        }
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert!(report.any_discrepancy());
        // With 3 of 5 VMs identically infected, *nobody* reaches a strict
        // majority (infected: 2/4 matches; clean: 1/4) — the false-alarm
        // mode the paper discusses. The pool-wide discrepancy signal is
        // what triggers deeper analysis.
        let flagged: Vec<&str> = report.suspects().map(|v| v.vm_name.as_str()).collect();
        assert_eq!(flagged, vec!["dom1", "dom2", "dom3", "dom4", "dom5"]);
    }

    fn canonical_checker() -> ModChecker {
        ModChecker::with_config(CheckConfig {
            compare: CompareStrategy::Canonical,
            ..CheckConfig::default()
        })
    }

    #[test]
    fn canonical_mode_agrees_with_pairwise_and_is_cheaper() {
        let (mut hv, guests, ids) = cloud(8);
        guests[2]
            .patch_module(&mut hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
        let pairwise = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        let canonical = canonical_checker()
            .check_pool(&hv, &ids, "hal.dll")
            .unwrap();
        for (a, b) in pairwise.verdicts.iter().zip(&canonical.verdicts) {
            assert_eq!(a.clean, b.clean, "{}", a.vm_name);
            assert_eq!(a.successes, b.successes, "{}", a.vm_name);
            assert_eq!(a.comparisons, b.comparisons, "{}", a.vm_name);
            assert_eq!(a.suspect_parts, b.suspect_parts, "{}", a.vm_name);
        }
        // O(t) normalize+hash beats t(t−1)/2 pairwise diffs even at t=8.
        assert!(
            canonical.times.checker < pairwise.times.checker,
            "canonical {} !< pairwise {}",
            canonical.times.checker,
            pairwise.times.checker
        );
        // The targeted cross-bucket diff still names the disagreeing part.
        assert!(canonical.suspects().all(|v| v
            .suspect_parts
            .contains(&PartId::SectionData(".text".into()))));
    }

    #[test]
    fn canonical_parallel_mode_agrees_with_sequential() {
        let (mut hv, guests, ids) = cloud(6);
        guests[4]
            .patch_module(&mut hv, "http.sys", 0x1005, &[0x90])
            .unwrap();
        let seq = canonical_checker()
            .check_pool(&hv, &ids, "http.sys")
            .unwrap();
        let par = ModChecker::with_config(CheckConfig {
            mode: ScanMode::Parallel,
            compare: CompareStrategy::Canonical,
            ..CheckConfig::default()
        })
        .check_pool(&hv, &ids, "http.sys")
        .unwrap();
        let seq_verdicts: Vec<bool> = seq.verdicts.iter().map(|v| v.clean).collect();
        let par_verdicts: Vec<bool> = par.verdicts.iter().map(|v| v.clean).collect();
        assert_eq!(seq_verdicts, par_verdicts);
        assert_eq!(
            seq.suspects()
                .map(|v| v.vm_name.clone())
                .collect::<Vec<_>>(),
            vec!["dom5"]
        );
    }

    #[test]
    fn canonical_clean_pool_has_one_bucket_and_empty_matrix() {
        let (hv, _guests, ids) = cloud(5);
        let report = canonical_checker()
            .check_pool(&hv, &ids, "hal.dll")
            .unwrap();
        assert!(report.all_clean());
        assert!(!report.any_discrepancy());
        assert!(
            report.matrix.is_empty(),
            "one bucket ⇒ no representative diffs to run"
        );
        for v in &report.verdicts {
            assert_eq!(v.successes, 4);
            assert_eq!(v.comparisons, 4);
        }
    }

    #[test]
    fn capture_cache_hits_steady_state_and_invalidates_on_writes() {
        let (mut hv, guests, ids) = cloud(4);
        let checker = ModChecker::new();
        let mut cache = CaptureCache::new();
        assert!(cache.is_empty());

        let first = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert!(first.all_clean());
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 4);

        // Nothing changed: every capture is reused and the capture cost
        // collapses to the list walk plus metadata probes.
        let second = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert!(second.all_clean());
        assert_eq!(cache.stats().hits, 4);
        assert!(
            second.times.searcher < first.times.searcher,
            "cached round {} !< first round {}",
            second.times.searcher,
            first.times.searcher
        );

        // A guest write moves one page's generation: exactly that VM's
        // entry takes the leaf-level refresh (one page re-read, the other
        // leaves reused) and the verdict flips — identically to an
        // uncached scan. Nothing is invalidated wholesale.
        guests[1]
            .patch_module(&mut hv, "hal.dll", 0x1003, &[0xCC])
            .unwrap();
        let third = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().partial_hits, 1);
        assert_eq!(cache.stats().hits, 7);
        assert_eq!(cache.stats().misses, 4);
        // The one-byte patch dirtied exactly one page; every other leaf of
        // the in-memory image (7 pages after section alignment) was reused.
        assert_eq!(cache.stats().pages_refreshed, 1);
        assert_eq!(cache.stats().pages_reused, 6);
        let uncached = checker.check_pool(&hv, &ids, "hal.dll").unwrap();
        for (a, b) in third.verdicts.iter().zip(&uncached.verdicts) {
            assert_eq!(a.clean, b.clean, "{}", a.vm_name);
            assert_eq!(a.suspect_parts, b.suspect_parts);
        }
        assert_eq!(
            third
                .suspects()
                .map(|v| v.vm_name.clone())
                .collect::<Vec<_>>(),
            vec!["dom2"]
        );
    }

    #[test]
    fn capture_cache_entry_drops_when_the_module_vanishes() {
        let (mut hv, guests, ids) = cloud(3);
        let checker = ModChecker::new();
        let mut cache = CaptureCache::new();
        checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert_eq!(cache.len(), 3);
        guests[0].dkom_hide(&mut hv, "hal.dll").unwrap();
        let report = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert_eq!(cache.len(), 2, "hidden module's entry is evicted");
        assert_eq!(
            report
                .suspects()
                .map(|v| v.vm_name.clone())
                .collect::<Vec<_>>(),
            vec!["dom1"]
        );
    }

    #[test]
    fn vm_loss_mid_scan_evicts_every_entry_for_that_vm() {
        use mc_hypervisor::FaultPlan;
        let (mut hv, _guests, ids) = cloud(3);
        let checker = ModChecker::new();
        let mut cache = CaptureCache::new();
        checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        checker
            .check_pool_with_cache(&hv, &ids, "http.sys", &mut cache)
            .unwrap();
        assert_eq!(cache.len(), 6, "2 modules × 3 VMs");
        assert_eq!(cache.stats().evictions, 0);

        // dom2 dies: the next scan must drop BOTH of its entries, not just
        // the module that happened to be scanning when the loss surfaced.
        hv.set_fault_plan(ids[1], Some(FaultPlan::none(3).lose_after(0)))
            .unwrap();
        let report = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert_eq!(report.unscannable().count(), 1);
        assert_eq!(cache.len(), 4, "both of dom2's entries evicted");
        assert_eq!(cache.stats().evictions, 2);

        // The VM comes back (fault plan cleared): fresh captures, clean
        // verdicts, no stale reuse.
        hv.set_fault_plan(ids[1], None).unwrap();
        let again = checker
            .check_pool_with_cache(&hv, &ids, "hal.dll", &mut cache)
            .unwrap();
        assert!(again.all_clean());
        assert_eq!(cache.len(), 5, "hal.dll entries restored for all 3 VMs");
    }

    #[test]
    fn pool_report_carries_per_vm_introspection_stats() {
        let (hv, _guests, ids) = cloud(4);
        let report = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert_eq!(report.per_vm.len(), 4);
        let mut sum = mc_vmi::VmiStats::default();
        let mut injections = 0;
        for s in &report.per_vm {
            assert!(s.vmi.reads > 0, "{} captured nothing", s.vm_name);
            assert!(s.vmi.bytes_copied > 0);
            sum.accumulate(&s.vmi);
            injections += s.fault_injections;
        }
        assert_eq!(sum, report.vmi, "aggregate equals the per-VM sum");
        assert_eq!(injections, report.fault_injections);
        assert_eq!(report.fault_injections, 0, "no fault plan, no anomalies");
        // Per-VM capture totals plus the pairwise (vote) time make up the
        // whole report: no lost or double-charged simulated time.
        let capture_total: mc_hypervisor::SimDuration = report
            .per_vm
            .iter()
            .map(|s| s.times.total())
            .fold(mc_hypervisor::SimDuration::ZERO, |acc, t| acc + t);
        assert!(report.times.total() >= capture_total);
    }

    #[test]
    fn static_prepass_names_the_infected_vms_without_a_majority() {
        // Same worm-majority shape as above, but the patch is a hook-style
        // rel32 JMP — the artifact the static pre-pass keys on. The vote
        // cannot say *who* is infected; the per-VM lint findings can.
        let (mut hv, guests, ids) = cloud(5);
        for g in guests.iter().take(3) {
            g.patch_module(&mut hv, "hal.dll", 0x1000, &[0xE9, 0x10, 0x00, 0x00, 0x00])
                .unwrap();
        }
        let config = CheckConfig {
            static_prepass: true,
            ..CheckConfig::default()
        };
        let report = ModChecker::with_config(config)
            .check_pool(&hv, &ids, "hal.dll")
            .unwrap();
        assert!(report.any_discrepancy());
        assert_eq!(
            report.statically_flagged_vms(),
            vec!["dom1", "dom2", "dom3"]
        );
        // Without the pre-pass the same scan attaches nothing.
        let plain = ModChecker::new().check_pool(&hv, &ids, "hal.dll").unwrap();
        assert!(plain.static_findings.is_empty());
    }

    #[test]
    fn bucketed_prepass_matches_the_per_vm_pass_and_amortizes_runs() {
        // Canonical mode + pre-pass: the bucket walk must name the same VMs
        // with the same evidence as the per-VM pass while invoking the lint
        // engine once per content bucket, not once per capture.
        let (mut hv, guests, ids) = cloud(5);
        for g in guests.iter().take(3) {
            g.patch_module(&mut hv, "hal.dll", 0x1000, &[0xE9, 0x10, 0x00, 0x00, 0x00])
                .unwrap();
        }
        let per_vm = ModChecker::with_config(CheckConfig {
            static_prepass: true,
            ..CheckConfig::default()
        })
        .check_pool(&hv, &ids, "hal.dll")
        .unwrap();

        let checker = ModChecker::with_config(CheckConfig {
            compare: CompareStrategy::Canonical,
            static_prepass: true,
            ..CheckConfig::default()
        });
        let mut capture = CaptureCache::new();
        let mut analysis = AnalysisCache::new();
        let bucketed = checker
            .check_pool_with_caches(&hv, &ids, "hal.dll", &mut capture, &mut analysis)
            .unwrap();
        assert_eq!(
            bucketed.statically_flagged_vms(),
            vec!["dom1", "dom2", "dom3"]
        );
        assert_eq!(per_vm.static_findings.len(), bucketed.static_findings.len());
        for (a, b) in per_vm.static_findings.iter().zip(&bucketed.static_findings) {
            assert_eq!(a.vm_name, b.vm_name);
            let lints = |r: &mc_analysis::AnalysisReport| -> Vec<(&'static str, u64)> {
                r.diagnostics
                    .iter()
                    .map(|d| (d.lint.code(), d.va))
                    .collect()
            };
            assert_eq!(
                lints(a),
                lints(b),
                "{}: replicated evidence diverged",
                a.vm_name
            );
        }
        // Two content buckets (three identically hooked, two clean) — the
        // analyzer ran twice for five captures.
        assert_eq!(analysis.stats().runs, 2);
        assert_eq!(analysis.len(), 2);

        // Round two: every verdict is served from the cache.
        let again = checker
            .check_pool_with_caches(&hv, &ids, "hal.dll", &mut capture, &mut analysis)
            .unwrap();
        assert_eq!(again.statically_flagged_vms(), vec!["dom1", "dom2", "dom3"]);
        assert_eq!(analysis.stats().runs, 2, "steady state: zero new runs");
        assert_eq!(analysis.stats().hits, 2);
    }

    #[test]
    fn vote_invisible_import_divergence_still_splits_analysis_buckets() {
        // The canonical fingerprint deliberately excludes `.idata` (the
        // paper hashes headers and code, not initialized data), so an
        // IAT-pivoted capture lands in the same bucket as its clean peers.
        // The analysis cache must key on the import-table content too — a
        // shared fingerprint alone must never let a tampered IAT inherit a
        // clean verdict.
        let mut hv = Hypervisor::new();
        let width = AddressWidth::W32;
        let bps = vec![ModuleBlueprint::new("dummy.sys", width, 12 * 1024)
            .with_imports(&[("ntoskrnl.exe", &["IoCreateDevice", "IoDeleteDevice"])])];
        let guests = build_cloud_with_modules(&mut hv, 3, width, &bps).unwrap();
        let ids: Vec<VmId> = guests.iter().map(|g| g.vm).collect();

        // Locate the in-memory `.idata` payload and flip one byte on dom1.
        let mut session = VmiSession::attach(&hv, ids[0]).unwrap();
        let image = ModuleSearcher::find(&mut session, "dummy.sys").unwrap();
        let parsed = mc_pe::parser::ParsedModule::parse_memory(&image.bytes).unwrap();
        let idx = parsed.find_section(".idata").unwrap();
        let rva = parsed.sections[idx].data_range.start as u64;
        drop(session);
        guests[0]
            .patch_module(&mut hv, "dummy.sys", rva, &[0xA5])
            .unwrap();

        let checker = ModChecker::with_config(CheckConfig {
            compare: CompareStrategy::Canonical,
            static_prepass: true,
            ..CheckConfig::default()
        });
        let mut capture = CaptureCache::new();
        let mut analysis = AnalysisCache::new();
        let report = checker
            .check_pool_with_caches(&hv, &ids, "dummy.sys", &mut capture, &mut analysis)
            .unwrap();
        // The vote cannot see the divergence (one bucket, all clean)…
        assert!(report.all_clean(), "import data is vote-invisible");
        // …but the pre-pass analyzed the divergent capture on its own.
        assert_eq!(analysis.stats().runs, 2, "aux digest split the bucket");
        assert_eq!(analysis.len(), 2);
    }
}
