//! Module-Searcher — the only ModChecker component that reads guest memory.
//!
//! From the paper (§IV.A): the list of active modules is a doubly linked
//! list headed by the global `PsLoadedModuleList`; each node is an
//! `LDR_DATA_TABLE_ENTRY` carrying `BaseDllName` and `DllBase`.
//! Module-Searcher resolves the head symbol, traverses forward via `FLINK`
//! comparing names, and on a hit copies the whole module from guest memory
//! into a local buffer, page by page.
//!
//! Hostile-input hardening (the walk consumes attacker-controlled memory):
//! bounded list length, cycle detection, size caps on both names and module
//! images, and typed errors instead of panics on unreadable pointers.

use std::collections::HashSet;

use mc_guest::ldr::LdrOffsets;
use mc_guest::PS_LOADED_MODULE_LIST;
use mc_hypervisor::{VmId, PAGE_SIZE};
use mc_vmi::{VectoredRead, VmiSession};

use crate::arena::CaptureArena;
use crate::error::{CheckError, MAX_LIST_WALK, MAX_MODULE_SIZE};

/// Upper bound on a `BaseDllName` length in bytes (Windows caps paths well
/// below this; a forged 64 KB length must not trigger a huge read).
const MAX_NAME_BYTES: u16 = 512;

/// A module list entry as discovered by traversal (no image bytes yet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleRef {
    /// `BaseDllName` as decoded from the guest.
    pub name: String,
    /// `DllBase`.
    pub base: u64,
    /// `SizeOfImage`.
    pub size: u64,
    /// VA of the `LDR_DATA_TABLE_ENTRY` this came from.
    pub entry_va: u64,
}

/// A module image captured from one VM.
#[derive(Clone, Debug)]
pub struct ModuleImage {
    /// VM the image was captured from.
    pub vm: VmId,
    /// Domain name of that VM.
    pub vm_name: String,
    /// Module name as found in the list.
    pub name: String,
    /// Load base (`DllBase`) — the `Base address` of Equation (1).
    pub base: u64,
    /// The captured bytes (`SizeOfImage` long, memory layout).
    pub bytes: Vec<u8>,
}

/// Module-Searcher: list traversal and page-wise image capture.
#[derive(Clone, Copy, Debug)]
pub struct ModuleSearcher;

impl ModuleSearcher {
    /// Walks the loaded-module list and returns every entry.
    pub fn list_modules(session: &mut VmiSession<'_>) -> Result<Vec<ModuleRef>, CheckError> {
        let offs = LdrOffsets::for_width(session.width());
        let head = session.symbol(PS_LOADED_MODULE_LIST)?;
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut at = session.read_ptr(head + offs.flink)?;
        while at != head {
            if out.len() >= MAX_LIST_WALK || !seen.insert(at) {
                return Err(CheckError::ListCorrupt {
                    vm: session.vm_name().to_string(),
                    walked: out.len(),
                });
            }
            out.push(Self::read_entry(session, &offs, at)?);
            at = session.read_ptr(at + offs.flink)?;
        }
        Ok(out)
    }

    /// Finds a module by name (case-insensitive, as Windows treats
    /// `BaseDllName`) without copying its image.
    pub fn find_ref(session: &mut VmiSession<'_>, module: &str) -> Result<ModuleRef, CheckError> {
        let offs = LdrOffsets::for_width(session.width());
        let head = session.symbol(PS_LOADED_MODULE_LIST)?;
        let mut seen = HashSet::new();
        let mut walked = 0usize;
        let mut at = session.read_ptr(head + offs.flink)?;
        while at != head {
            if walked >= MAX_LIST_WALK || !seen.insert(at) {
                return Err(CheckError::ListCorrupt {
                    vm: session.vm_name().to_string(),
                    walked,
                });
            }
            walked += 1;
            let entry = Self::read_entry(session, &offs, at)?;
            if entry.name.eq_ignore_ascii_case(module) {
                return Ok(entry);
            }
            at = session.read_ptr(at + offs.flink)?;
        }
        Err(CheckError::ModuleNotFound {
            vm: session.vm_name().to_string(),
            module: module.to_string(),
        })
    }

    /// Finds a module and copies its whole image out of the guest,
    /// page by page (the paper notes this iterative page access is why
    /// Module-Searcher dominates ModChecker's runtime).
    pub fn find(session: &mut VmiSession<'_>, module: &str) -> Result<ModuleImage, CheckError> {
        let entry = Self::find_ref(session, module)?;
        Self::capture(session, &entry)
    }

    /// Copies the image referenced by `entry` out of the guest.
    pub fn capture(
        session: &mut VmiSession<'_>,
        entry: &ModuleRef,
    ) -> Result<ModuleImage, CheckError> {
        Self::capture_with(session, entry, None)
    }

    /// Copies the image referenced by `entry` out of the guest, drawing
    /// the backing buffer from `arena` when one is supplied (a retired
    /// capture of the same size is reused instead of allocating).
    ///
    /// On a fast-capture session the whole image is fetched by one
    /// scatter-gather stable read — the plan walks each page once and
    /// foreign-maps contiguous physical runs in one go. Legacy sessions
    /// keep the paper's page-by-page loop ("an action that requires an
    /// iterative access of the memory until the whole module is copied to
    /// a local buffer").
    pub fn capture_with(
        session: &mut VmiSession<'_>,
        entry: &ModuleRef,
        arena: Option<&mut CaptureArena>,
    ) -> Result<ModuleImage, CheckError> {
        if entry.size == 0 || entry.size > MAX_MODULE_SIZE {
            return Err(CheckError::ImplausibleSize {
                vm: session.vm_name().to_string(),
                module: entry.name.clone(),
                size: entry.size,
            });
        }
        let mut bytes = match arena {
            Some(arena) => arena.acquire(entry.size as usize),
            None => vec![0u8; entry.size as usize],
        };
        if session.fast_capture() {
            let mut reqs = [VectoredRead {
                va: entry.base,
                buf: bytes.as_mut_slice(),
            }];
            // Stable (double-checked): a torn page must surface as a typed
            // error, never as a phantom integrity mismatch.
            session.read_va_vectored_stable(&mut reqs)?;
        } else {
            for (page_idx, chunk) in bytes.chunks_mut(PAGE_SIZE).enumerate() {
                let va = entry.base + (page_idx * PAGE_SIZE) as u64;
                session.read_va_stable(va, chunk)?;
            }
        }
        Ok(ModuleImage {
            vm: session.vm_id(),
            vm_name: session.vm_name().to_string(),
            name: entry.name.clone(),
            base: entry.base,
            bytes,
        })
    }

    /// Re-reads only the pages of `image` whose index appears in
    /// `dirty_pages`, in one scatter-gather stable read (the partial-hit
    /// refresh of an otherwise-valid cached capture). Page indices must
    /// be in range and ascending.
    pub fn refresh_pages(
        session: &mut VmiSession<'_>,
        base: u64,
        bytes: &mut [u8],
        dirty_pages: &[usize],
    ) -> Result<(), CheckError> {
        if dirty_pages.is_empty() {
            return Ok(());
        }
        let len = bytes.len();
        let mut chunks: Vec<Option<&mut [u8]>> = bytes.chunks_mut(PAGE_SIZE).map(Some).collect();
        let mut reqs = Vec::with_capacity(dirty_pages.len());
        for &idx in dirty_pages {
            debug_assert!(idx * PAGE_SIZE < len, "dirty page {idx} out of range");
            let chunk = chunks[idx].take().expect("dirty page listed twice");
            reqs.push(VectoredRead {
                va: base + (idx * PAGE_SIZE) as u64,
                buf: chunk,
            });
        }
        session.read_va_vectored_stable(&mut reqs)?;
        Ok(())
    }

    /// Reads one `LDR_DATA_TABLE_ENTRY`.
    fn read_entry(
        session: &mut VmiSession<'_>,
        offs: &LdrOffsets,
        entry_va: u64,
    ) -> Result<ModuleRef, CheckError> {
        if session.fast_capture() {
            return Self::read_entry_vectored(session, offs, entry_va);
        }
        let base = session.read_ptr(entry_va + offs.dll_base)?;
        let size = match offs.ptr {
            4 => session.read_u32(entry_va + offs.size_of_image)? as u64,
            _ => {
                let lo = session.read_u32(entry_va + offs.size_of_image)? as u64;
                let hi = session.read_u32(entry_va + offs.size_of_image + 4)? as u64;
                (hi << 32) | lo
            }
        };
        // UNICODE_STRING BaseDllName.
        let ustr = entry_va + offs.base_dll_name;
        let len = session.read_u16(ustr)?.min(MAX_NAME_BYTES) & !1;
        let buffer = session.read_ptr(ustr + offs.ustr_buffer)?;
        let mut raw = vec![0u8; len as usize];
        session.read_va(buffer, &mut raw)?;
        Ok(ModuleRef {
            name: mc_guest::ldr::decode_utf16(&raw),
            base,
            size,
            entry_va,
        })
    }

    /// Fast-path `read_entry`: every fixed-offset field of the
    /// `LDR_DATA_TABLE_ENTRY` (base, size, name length, name buffer
    /// pointer) lands in one vectored plan, then a second read fetches
    /// the name bytes the pointer revealed. Two round-trips instead of
    /// five-plus, and the entry's page is walked once, not per field.
    fn read_entry_vectored(
        session: &mut VmiSession<'_>,
        offs: &LdrOffsets,
        entry_va: u64,
    ) -> Result<ModuleRef, CheckError> {
        let psize = offs.ptr as usize;
        let ustr = entry_va + offs.base_dll_name;
        let mut base_b = [0u8; 8];
        let mut size_b = [0u8; 8];
        let mut len_b = [0u8; 2];
        let mut bufp_b = [0u8; 8];
        {
            let mut reqs = [
                VectoredRead {
                    va: entry_va + offs.dll_base,
                    buf: &mut base_b[..psize],
                },
                VectoredRead {
                    va: entry_va + offs.size_of_image,
                    buf: &mut size_b[..psize],
                },
                VectoredRead {
                    va: ustr,
                    buf: &mut len_b,
                },
                VectoredRead {
                    va: ustr + offs.ustr_buffer,
                    buf: &mut bufp_b[..psize],
                },
            ];
            session.read_va_vectored(&mut reqs)?;
        }
        // Partial little-endian fills decode correctly: the unwritten high
        // bytes stay zero.
        let base = u64::from_le_bytes(base_b);
        let size = u64::from_le_bytes(size_b);
        let len = u16::from_le_bytes(len_b).min(MAX_NAME_BYTES) & !1;
        let buffer = u64::from_le_bytes(bufp_b);
        let mut raw = vec![0u8; len as usize];
        session.read_va(buffer, &mut raw)?;
        Ok(ModuleRef {
            name: mc_guest::ldr::decode_utf16(&raw),
            base,
            size,
            entry_va,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::{build_cloud_with_modules, GuestOs};
    use mc_hypervisor::{AddressWidth, Hypervisor};
    use mc_pe::corpus::ModuleBlueprint;
    use mc_vmi::VmiSession;

    fn cloud(width: AddressWidth, n: usize) -> (Hypervisor, Vec<GuestOs>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("alpha.sys", width, 8 * 1024),
            ModuleBlueprint::new("hal.dll", width, 16 * 1024),
            ModuleBlueprint::new("http.sys", width, 24 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, width, &bps).unwrap();
        (hv, guests)
    }

    #[test]
    fn list_modules_matches_ground_truth() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let listed = ModuleSearcher::list_modules(&mut s).unwrap();
        let names: Vec<&str> = listed.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["alpha.sys", "hal.dll", "http.sys"]);
        for (found, truth) in listed.iter().zip(&guests[0].modules) {
            assert_eq!(found.base, truth.base);
            assert_eq!(found.size, truth.size as u64);
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let m = ModuleSearcher::find(&mut s, "HAL.DLL").unwrap();
        assert_eq!(m.name, "hal.dll");
        assert_eq!(m.base, guests[0].find_module("hal.dll").unwrap().base);
    }

    #[test]
    fn capture_returns_full_image() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let truth = guests[0].find_module("http.sys").unwrap();
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let img = ModuleSearcher::find(&mut s, "http.sys").unwrap();
        assert_eq!(img.bytes.len(), truth.size as usize);
        assert_eq!(img.base, truth.base);
        // Header magic is right at the start.
        assert_eq!(&img.bytes[..2], b"MZ");
        // The page-wise copy really walked pages.
        assert!(s.stats().pages_mapped as usize >= img.bytes.len() / PAGE_SIZE);
    }

    #[test]
    fn missing_module_is_typed_error() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        assert!(matches!(
            ModuleSearcher::find(&mut s, "rootkit.sys"),
            Err(CheckError::ModuleNotFound { .. })
        ));
    }

    #[test]
    fn works_on_64_bit_guests() {
        let (hv, guests) = cloud(AddressWidth::W64, 1);
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let m = ModuleSearcher::find(&mut s, "hal.dll").unwrap();
        assert_eq!(m.base, guests[0].find_module("hal.dll").unwrap().base);
    }

    #[test]
    fn corrupt_list_detected_not_hung() {
        let (mut hv, guests) = cloud(AddressWidth::W32, 1);
        // Make the second entry's FLINK point back at the first entry,
        // forming a cycle that never returns to the head.
        let e0 = guests[0].modules[0].ldr_entry_va;
        let e1 = guests[0].modules[1].ldr_entry_va;
        hv.vm_mut(guests[0].vm).unwrap().write_ptr(e1, e0).unwrap();
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        assert!(matches!(
            ModuleSearcher::list_modules(&mut s),
            Err(CheckError::ListCorrupt { .. })
        ));
    }

    #[test]
    fn forged_huge_size_rejected() {
        let (mut hv, guests) = cloud(AddressWidth::W32, 1);
        let offs = LdrOffsets::for_width(AddressWidth::W32);
        let entry = guests[0].modules[0].ldr_entry_va;
        hv.vm_mut(guests[0].vm)
            .unwrap()
            .write_virt(entry + offs.size_of_image, &u32::MAX.to_le_bytes())
            .unwrap();
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        assert!(matches!(
            ModuleSearcher::find(&mut s, "alpha.sys"),
            Err(CheckError::ImplausibleSize { .. })
        ));
    }

    #[test]
    fn fast_capture_is_byte_identical_and_cheaper() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let mut legacy = VmiSession::attach(&hv, guests[0].vm).unwrap();
        let img_legacy = ModuleSearcher::find(&mut legacy, "http.sys").unwrap();
        let mut fast = VmiSession::attach(&hv, guests[0].vm)
            .unwrap()
            .with_fast_capture();
        let img_fast = ModuleSearcher::find(&mut fast, "http.sys").unwrap();
        assert_eq!(img_legacy.bytes, img_fast.bytes);
        assert_eq!(img_legacy.base, img_fast.base);
        let (lf, ff) = (legacy.stats(), fast.stats());
        assert!(
            ff.vectored_reads >= 1,
            "capture went through the batch path"
        );
        assert!(
            ff.page_walks < lf.page_walks,
            "fast walked {} pages, legacy {}",
            ff.page_walks,
            lf.page_walks
        );
        assert!(
            fast.elapsed() < legacy.elapsed(),
            "fast {} vs legacy {}",
            fast.elapsed(),
            legacy.elapsed()
        );
    }

    #[test]
    fn fast_list_walk_matches_legacy_on_both_widths() {
        for width in [AddressWidth::W32, AddressWidth::W64] {
            let (hv, guests) = cloud(width, 1);
            let mut legacy = VmiSession::attach(&hv, guests[0].vm).unwrap();
            let listed_legacy = ModuleSearcher::list_modules(&mut legacy).unwrap();
            let mut fast = VmiSession::attach(&hv, guests[0].vm)
                .unwrap()
                .with_fast_capture();
            let listed_fast = ModuleSearcher::list_modules(&mut fast).unwrap();
            assert_eq!(listed_legacy, listed_fast, "width {width:?}");
            assert!(
                fast.stats().page_walks < legacy.stats().page_walks,
                "width {width:?}: header parsing must stop walking per field"
            );
        }
    }

    #[test]
    fn capture_with_arena_recycles_buffers() {
        let (hv, guests) = cloud(AddressWidth::W32, 1);
        let mut arena = crate::arena::CaptureArena::new();
        let mut s = VmiSession::attach(&hv, guests[0].vm)
            .unwrap()
            .with_fast_capture();
        let entry = ModuleSearcher::find_ref(&mut s, "hal.dll").unwrap();
        let img1 = ModuleSearcher::capture_with(&mut s, &entry, Some(&mut arena)).unwrap();
        assert_eq!(arena.stats().allocs, 1);
        let bytes1 = img1.bytes.clone();
        arena.release(img1.bytes);
        let img2 = ModuleSearcher::capture_with(&mut s, &entry, Some(&mut arena)).unwrap();
        assert_eq!(arena.stats().reuses, 1, "second capture reuses the buffer");
        assert_eq!(img2.bytes, bytes1);
    }

    #[test]
    fn refresh_pages_converges_to_a_fresh_capture() {
        let (mut hv, guests) = cloud(AddressWidth::W32, 1);
        let truth = guests[0].find_module("http.sys").unwrap().clone();
        let stale = {
            let mut s = VmiSession::attach(&hv, guests[0].vm)
                .unwrap()
                .with_fast_capture();
            ModuleSearcher::find(&mut s, "http.sys").unwrap()
        };
        // Dirty one mid-image page in the guest.
        hv.vm_mut(guests[0].vm)
            .unwrap()
            .write_virt(truth.base + (2 * PAGE_SIZE + 7) as u64, &[0x5A; 16])
            .unwrap();
        let mut s = VmiSession::attach(&hv, guests[0].vm)
            .unwrap()
            .with_fast_capture();
        let fresh = ModuleSearcher::find(&mut s, "http.sys").unwrap();
        assert_ne!(stale.bytes, fresh.bytes);
        // Refreshing only the dirty page brings the stale buffer up to date.
        let mut patched = stale.bytes.clone();
        ModuleSearcher::refresh_pages(&mut s, stale.base, &mut patched, &[2]).unwrap();
        assert_eq!(patched, fresh.bytes);
    }

    #[test]
    fn unmapped_image_page_is_typed_error() {
        let (mut hv, guests) = cloud(AddressWidth::W32, 1);
        let truth = guests[0].find_module("hal.dll").unwrap().clone();
        // Rip a page out of the middle of the module.
        {
            let vm = hv.vm_mut(guests[0].vm).unwrap();
            let aspace = vm.aspace;
            aspace
                .unmap(&mut vm.mem, truth.base + PAGE_SIZE as u64)
                .unwrap();
        }
        let mut s = VmiSession::attach(&hv, guests[0].vm).unwrap();
        assert!(matches!(
            ModuleSearcher::find(&mut s, "hal.dll"),
            Err(CheckError::Vmi(_))
        ));
    }
}
