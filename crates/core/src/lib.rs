//! **ModChecker** — kernel module integrity checking in the cloud
//! (Ahmed, Zoranic, Javaid, Richard — ICPP 2012), reproduced in Rust.
//!
//! ModChecker verifies the integrity of in-memory kernel modules *without a
//! database of known-good hashes*: in a cloud where many VMs run the same OS
//! image, it cross-compares a module's headers and executable contents
//! across the pool via virtual machine introspection. A module is trusted on
//! a VM if its hashes match a majority of the other VMs.
//!
//! The three components of the paper's Figure 1 map to modules here:
//!
//! * [`searcher`] — **Module-Searcher**: the only component that touches
//!   guest memory. Resolves `PsLoadedModuleList`, walks the doubly linked
//!   `LDR_DATA_TABLE_ENTRY` list (Figure 2), finds the module by
//!   `BaseDllName`, and copies the whole image out page by page.
//! * [`parts`] — **Module-Parser**: Algorithm 1. Splits the captured image
//!   into its PE headers (DOS+stub, composite NT, FILE, OPTIONAL, each
//!   section header) and section data, identifying executable content.
//! * [`checker`] + [`rva`] — **Integrity-Checker**: Algorithm 2. Pairwise
//!   compares executable sections, locating relocated absolute addresses by
//!   byte difference, rewriting them back to RVAs (`RVA = abs − base`,
//!   Equation 1), then MD5-hashing every part and reporting mismatches.
//!   Majority voting over the pool produces per-VM verdicts.
//!
//! Higher-level drivers live in [`pool`] (sequential — as benchmarked in the
//! paper — and parallel — the paper's proposed improvement) and [`monitor`]
//! (continuous scanning with snapshot-revert remediation, per the paper's
//! §III discussion).
//!
//! ## Example
//!
//! ```
//! use mc_hypervisor::{AddressWidth, Hypervisor};
//! use mc_pe::corpus::ModuleBlueprint;
//! use modchecker::ModChecker;
//!
//! // Three identical guests, each loading the same hal.dll file at a
//! // VM-specific base address (mc-guest stands in for the cloud).
//! let mut hv = Hypervisor::new();
//! let blueprint = ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024);
//! let guests = mc_guest::build_cloud_with_modules(
//!     &mut hv, 4, AddressWidth::W32, std::slice::from_ref(&blueprint),
//! ).unwrap();
//! let vms: Vec<_> = guests.iter().map(|g| g.vm).collect();
//!
//! // Clean pool: every VM matches a majority of its peers.
//! let report = ModChecker::new().check_pool(&hv, &vms, "hal.dll").unwrap();
//! assert!(report.all_clean());
//!
//! // One byte of code patched on one VM → that VM (and only it) flags.
//! guests[1].patch_module(&mut hv, "hal.dll", 0x1003, &[0xCC]).unwrap();
//! let report = ModChecker::new().check_pool(&hv, &vms, "hal.dll").unwrap();
//! let suspects: Vec<_> = report.suspects().map(|v| v.vm_name.clone()).collect();
//! assert_eq!(suspects, vec!["dom2"]);
//! ```
//!
//! ## Introspection discipline
//!
//! This crate reads guests exclusively through [`mc_vmi::VmiSession`]
//! (read-only) plus the *profile knowledge* any real introspector needs:
//! the `LDR_DATA_TABLE_ENTRY` field offsets and the `PsLoadedModuleList`
//! symbol name from `mc-guest`. It never touches `mc_guest::GuestOs` ground
//! truth (module bases, reloc site lists) — those are for attacks and tests.

#![warn(missing_docs)]

pub mod arena;
pub mod checker;
pub mod crossview;
pub mod digest;
pub mod error;
pub mod events;
pub mod listdiff;
pub mod monitor;
pub mod obs;
pub mod parts;
pub mod pool;
pub mod report;
pub mod rva;
pub mod sched;
pub mod searcher;
pub mod serve;
pub mod treehash;

pub use arena::{ArenaStats, CaptureArena};
pub use checker::{
    canonical_form, compare_pair, compare_pair_with, CanonicalForm, ExtractedModule, PairOutcome,
    PairScratch,
};
pub use crossview::{CrossView, CrossViewConfig, CrossViewFinding, CrossViewKind, CrossViewReport};
pub use digest::{DigestAlgo, PartDigest};
pub use error::CheckError;
pub use events::{EventPlane, EventPlaneStats};
pub use listdiff::{ListAnomaly, ListDiff, ListDiffReport};
pub use monitor::{
    remediate, remediate_vms, ContinuousMonitor, HealthPolicy, MonitorConfig, MonitorEvent,
    ScanJitter,
};
pub use obs::{
    fleet_span, observe_fleet, observe_scan, observe_serve, record_fleet_report,
    record_module_report, record_pool_report, record_serve_report, serve_span, ScanObservation,
};
pub use parts::{ModuleParts, PartId};
pub use pool::{
    AnalysisCache, AnalysisCacheStats, CacheStats, CaptureCache, CheckConfig, CompareStrategy,
    ModChecker, ModuleResults, ScanMode,
};
pub use report::{
    ComponentTimes, FleetPoolReport, FleetReport, FleetUnitReport, ModuleCheckReport,
    PoolCheckReport, QuorumStatus, VerdictError, VerdictErrorKind, VerdictStatus, VmScanStats,
    VmVerdict,
};
pub use sched::{simulated_fleet_wall, Fleet, FleetConfig, FleetScheduler, PoolSpec};
pub use serve::{
    AttestQuery, AttestServer, Confidence, Disposition, QuotaPolicy, Rejected, ServeConfig,
    ServeReport, ServedQuery, TenantStats, UnitVerdict,
};

pub use mc_vmi::RetryPolicy;
pub use rva::{adjust_rvas, normalize_with_reloc_table, AdjustStats};
pub use searcher::{ModuleImage, ModuleRef, ModuleSearcher};
pub use treehash::TreeHash;
