//! ModChecker error types.

use std::fmt;

use mc_pe::PeError;
use mc_vmi::VmiError;

use crate::digest::DigestAlgo;

/// Errors from a module check.
///
/// A hostile guest controls everything ModChecker reads, so every
/// malformation surfaces as a typed error; per-VM errors during a pool scan
/// are downgraded to *discrepancies* in the report rather than aborting the
/// scan (an unreadable module list is itself suspicious and must be
/// surfaced, not crash the monitor).
#[derive(Clone, Debug)]
pub enum CheckError {
    /// Introspection failure.
    Vmi(VmiError),
    /// The module is not in this VM's loaded-module list.
    ModuleNotFound {
        /// VM that was searched.
        vm: String,
        /// Module that was requested.
        module: String,
    },
    /// The loaded-module list is corrupt (cycle without returning to the
    /// head, or absurd length — e.g. DKOM gone wrong or anti-forensics).
    ListCorrupt {
        /// VM with the corrupt list.
        vm: String,
        /// Entries walked before giving up.
        walked: usize,
    },
    /// The captured module image does not parse as a PE.
    BadImage {
        /// VM the image came from.
        vm: String,
        /// Module name.
        module: String,
        /// Underlying parse error.
        source: PeError,
    },
    /// A module reported an implausible size (guarding the copy loop
    /// against attacker-controlled `SizeOfImage`).
    ImplausibleSize {
        /// VM reporting the size.
        vm: String,
        /// Module name.
        module: String,
        /// The reported size.
        size: u64,
    },
    /// A pool check needs at least two VMs.
    PoolTooSmall(usize),
    /// Two captures were hashed under different digest algorithms — their
    /// digests are incomparable, so the pair cannot be voted on.
    AlgoMismatch {
        /// Algorithm of the left capture.
        a: DigestAlgo,
        /// Algorithm of the right capture.
        b: DigestAlgo,
    },
}

/// Cap on `SizeOfImage` we will copy out of a guest (largest real drivers
/// are tens of MB; a forged 4 GB size must not allocate unbounded memory).
pub const MAX_MODULE_SIZE: u64 = 64 * 1024 * 1024;

/// Cap on module-list length before declaring corruption.
pub const MAX_LIST_WALK: usize = 4096;

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Vmi(e) => write!(f, "introspection failed: {e}"),
            CheckError::ModuleNotFound { vm, module } => {
                write!(f, "module {module:?} not loaded in {vm}")
            }
            CheckError::ListCorrupt { vm, walked } => {
                write!(f, "module list corrupt in {vm} (walked {walked} entries)")
            }
            CheckError::BadImage { vm, module, source } => {
                write!(f, "module {module:?} from {vm} is not a valid PE: {source}")
            }
            CheckError::ImplausibleSize { vm, module, size } => {
                write!(f, "module {module:?} in {vm} claims {size} bytes")
            }
            CheckError::PoolTooSmall(n) => {
                write!(f, "cross-VM comparison needs ≥ 2 VMs, got {n}")
            }
            CheckError::AlgoMismatch { a, b } => {
                write!(f, "digest algorithm mismatch: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Vmi(e) => Some(e),
            CheckError::BadImage { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<VmiError> for CheckError {
    fn from(e: VmiError) -> Self {
        CheckError::Vmi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_name_the_essentials() {
        let cases: Vec<(CheckError, &[&str])> = vec![
            (
                CheckError::ModuleNotFound {
                    vm: "dom3".into(),
                    module: "hal.dll".into(),
                },
                &["hal.dll", "dom3"],
            ),
            (
                CheckError::ListCorrupt {
                    vm: "dom1".into(),
                    walked: 17,
                },
                &["dom1", "17", "corrupt"],
            ),
            (
                CheckError::ImplausibleSize {
                    vm: "dom2".into(),
                    module: "x.sys".into(),
                    size: 1 << 40,
                },
                &["x.sys", "dom2"],
            ),
            (CheckError::PoolTooSmall(1), &["2", "1"]),
            (
                CheckError::AlgoMismatch {
                    a: DigestAlgo::Md5,
                    b: DigestAlgo::Sha256,
                },
                &["md5", "sha256", "mismatch"],
            ),
        ];
        for (err, needles) in cases {
            let s = err.to_string();
            for needle in needles {
                assert!(s.contains(needle), "{s:?} lacks {needle:?}");
            }
        }
    }

    #[test]
    fn vmi_errors_chain_as_sources() {
        use std::error::Error as _;
        let err = CheckError::Vmi(VmiError::VmNotFound("domX".into()));
        assert!(err.source().is_some());
        assert!(err.to_string().contains("domX"));
    }

    #[test]
    fn caps_are_sane() {
        // The copy loop must be bounded well under guest RAM, and the walk
        // bound must exceed any real system's module count. Read through
        // locals so the lint accepts the (deliberate) constant assertions.
        let max_size: u64 = MAX_MODULE_SIZE;
        let max_walk: usize = MAX_LIST_WALK;
        assert!((16 * 1024 * 1024..=1 << 30).contains(&max_size));
        assert!(max_walk >= 512);
    }
}
