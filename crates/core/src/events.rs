//! The event plane: a write-trap subscriber that turns the pull probe
//! into push monitoring.
//!
//! [`EventPlane`] owns the subscription state the push pipeline needs:
//! which `(vm, module)` pairs have watches armed over their page spans, a
//! reverse frame → module index for coalescing, a drain cursor into the
//! host's trap logs, and the set of pairs dirtied by events not yet
//! rescanned. [`crate::monitor::ContinuousMonitor`],
//! [`crate::sched::FleetScheduler`] and [`crate::serve::AttestServer`] all
//! drive the same plane: drain, coalesce to dirty pairs, scan with the
//! *clean* pairs trusted (served from cache with zero guest reads — see
//! [`crate::ModChecker::check_pool_with_cache_trusted`]), then mark the
//! rescanned pairs clean again.
//!
//! Trust is deliberately narrower than "no events": a pair is only
//! short-circuited when it *also* has a live cache entry. Mutations that
//! bypass the trap path — snapshot revert above all — go through cache
//! eviction, so an evicted pair is rescanned regardless of what the event
//! plane believes. That closure is what makes push verdicts byte-identical
//! to poll verdicts.

use std::collections::{BTreeSet, HashMap, HashSet};

use mc_hypervisor::{EventCursor, Hypervisor, VmId, WriteEvent};
use mc_vmi::VmiSession;

use crate::error::CheckError;
use crate::searcher::ModuleSearcher;

/// Cumulative counters for one [`EventPlane`] (exported as `event_*`
/// metrics by the monitor/server that owns the plane).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventPlaneStats {
    /// Write events drained from the host, lifetime total.
    pub events_drained: u64,
    /// `(vm, module)` pairs marked dirty by events, lifetime total
    /// (an already-dirty pair re-fired counts once per marking).
    pub dirty_marks: u64,
    /// Events whose frame matched no armed pair (stale watches after a
    /// disarm race; counted, never silently dropped).
    pub unattributed_events: u64,
    /// Pairs armed over the plane's lifetime.
    pub pairs_armed: u64,
    /// Frames currently watched by this plane.
    pub frames_watched: u64,
}

/// Write-trap subscription state for a set of `(vm, module)` pairs.
#[derive(Clone, Debug, Default)]
pub struct EventPlane {
    /// Armed pairs → the frames their span watches.
    armed: HashMap<(VmId, String), Vec<u64>>,
    /// Reverse index: fired frame → module names armed over it.
    index: HashMap<(VmId, u64), Vec<String>>,
    /// This subscriber's drain position in every VM's trap log.
    cursor: EventCursor,
    /// Pairs dirtied by drained events, awaiting rescan. A `BTreeSet` so
    /// iteration (and therefore any derived work order) is deterministic.
    dirty: BTreeSet<(VmId, String)>,
    stats: EventPlaneStats,
}

impl EventPlane {
    /// An empty plane: nothing armed, cursor at the log heads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms watches over `module`'s page span on one VM: plans the watch
    /// under an introspection session (riding the fast-capture translate
    /// cache when `fast_capture` is set), applies it under `&mut`, and
    /// records the pair. Re-arming an existing pair first releases its old
    /// frames (the module may have moved). Returns the frames watched.
    pub fn arm_pair(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmId,
        module: &str,
        fast_capture: bool,
    ) -> Result<usize, CheckError> {
        let plan = {
            let mut session = VmiSession::attach(hv, vm)?;
            if fast_capture {
                session = session.with_fast_capture();
            }
            let entry = ModuleSearcher::find_ref(&mut session, module)?;
            session.arm_watches(entry.base, entry.size)?
        };
        self.disarm_pair(hv, vm, module)?;
        hv.apply_watch_plan(&plan).map_err(mc_vmi::VmiError::from)?;
        for &f in &plan.frames {
            self.index
                .entry((vm, f))
                .or_default()
                .push(module.to_string());
        }
        self.stats.pairs_armed += 1;
        self.stats.frames_watched += plan.frames.len() as u64;
        let n = plan.frames.len();
        self.armed.insert((vm, module.to_string()), plan.frames);
        Ok(n)
    }

    /// Releases an armed pair's watches (no-op if not armed).
    pub fn disarm_pair(
        &mut self,
        hv: &mut Hypervisor,
        vm: VmId,
        module: &str,
    ) -> Result<(), CheckError> {
        let Some(frames) = self.armed.remove(&(vm, module.to_string())) else {
            return Ok(());
        };
        self.stats.frames_watched = self
            .stats
            .frames_watched
            .saturating_sub(frames.len() as u64);
        for f in frames {
            if let Ok(vm_ref) = hv.vm_mut(vm) {
                let _ = vm_ref.mem.unwatch_frame(f);
            }
            if let Some(mods) = self.index.get_mut(&(vm, f)) {
                mods.retain(|m| m != module);
                if mods.is_empty() {
                    self.index.remove(&(vm, f));
                }
            }
        }
        self.dirty.remove(&(vm, module.to_string()));
        Ok(())
    }

    /// Arms every `(vm, module)` combination; returns the total frames
    /// watched. VMs whose session cannot attach (lost, faulted out) are
    /// skipped — they will scan cold through the normal path, which is the
    /// correct degraded behavior.
    pub fn arm_modules(
        &mut self,
        hv: &mut Hypervisor,
        vms: &[VmId],
        modules: &[String],
    ) -> Result<usize, CheckError> {
        let mut frames = 0usize;
        for &vm in vms {
            for module in modules {
                match self.arm_pair(hv, vm, module, true) {
                    Ok(n) => frames += n,
                    Err(CheckError::Vmi(e)) if e.is_fatal_to_vm() => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(frames)
    }

    /// Drains every undelivered write event, coalescing them onto dirty
    /// `(vm, module)` pairs via the frame index. Returns the drained
    /// events (sorted by seeded delivery latency — see
    /// [`mc_hypervisor::TrapModel`]) so callers can observe latency
    /// distributions.
    pub fn drain(&mut self, hv: &Hypervisor) -> Vec<WriteEvent> {
        let events = hv.drain_write_events(&mut self.cursor);
        for e in &events {
            match self.index.get(&(e.vm, e.frame)) {
                Some(mods) => {
                    for m in mods {
                        if self.dirty.insert((e.vm, m.clone())) {
                            self.stats.dirty_marks += 1;
                        }
                    }
                }
                None => self.stats.unattributed_events += 1,
            }
        }
        self.stats.events_drained += events.len() as u64;
        events
    }

    /// The VMs whose `(vm, module)` pair is armed and event-free — safe to
    /// serve from cache without touching the guest.
    pub fn trusted_for(&self, module: &str, vms: &[VmId]) -> HashSet<VmId> {
        vms.iter()
            .copied()
            .filter(|&vm| {
                let key = (vm, module.to_string());
                self.armed.contains_key(&key) && !self.dirty.contains(&key)
            })
            .collect()
    }

    /// True when `vm` has at least one armed pair and no dirty pair — its
    /// module list provably did not change through the watched spans.
    pub fn vm_quiet(&self, vm: VmId) -> bool {
        let mut any = false;
        for (v, _) in self.armed.keys() {
            if *v == vm {
                any = true;
            }
        }
        any && !self.dirty.iter().any(|(v, _)| *v == vm)
    }

    /// Dirty pairs awaiting rescan, in deterministic order.
    pub fn dirty_pairs(&self) -> impl Iterator<Item = &(VmId, String)> {
        self.dirty.iter()
    }

    /// Number of dirty pairs awaiting rescan.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Number of armed pairs.
    pub fn armed_len(&self) -> usize {
        self.armed.len()
    }

    /// Marks every dirty pair clean again — call after a round that
    /// rescanned all of them (dirty pairs are never trusted, so any scan
    /// over the pair set refreshes exactly these).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EventPlaneStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_guest::build_cloud_with_modules;
    use mc_hypervisor::AddressWidth;
    use mc_pe::corpus::ModuleBlueprint;

    fn cloud(n: usize) -> (Hypervisor, Vec<mc_guest::GuestOs>, Vec<VmId>) {
        let mut hv = Hypervisor::new();
        let bps = vec![
            ModuleBlueprint::new("hal.dll", AddressWidth::W32, 8 * 1024),
            ModuleBlueprint::new("ndis.sys", AddressWidth::W32, 8 * 1024),
        ];
        let guests = build_cloud_with_modules(&mut hv, n, AddressWidth::W32, &bps).unwrap();
        let ids = guests.iter().map(|g| g.vm).collect();
        (hv, guests, ids)
    }

    #[test]
    fn arm_drain_coalesce_retire() {
        let (mut hv, guests, ids) = cloud(3);
        let mut plane = EventPlane::new();
        let modules = vec!["hal.dll".to_string(), "ndis.sys".to_string()];
        let frames = plane.arm_modules(&mut hv, &ids, &modules).unwrap();
        assert!(frames > 0);
        assert_eq!(plane.armed_len(), 6);
        assert!(plane.drain(&hv).is_empty(), "clean cloud: no events");
        assert_eq!(plane.trusted_for("hal.dll", &ids).len(), 3);
        assert!(plane.vm_quiet(ids[1]));

        // Infect one VM's hal.dll → events coalesce to exactly that pair.
        guests[1]
            .patch_module(&mut hv, "hal.dll", 0x40, &[0xCC])
            .unwrap();
        let evs = plane.drain(&hv);
        assert!(!evs.is_empty());
        assert_eq!(plane.dirty_len(), 1);
        assert_eq!(
            plane.dirty_pairs().next().unwrap(),
            &(ids[1], "hal.dll".to_string())
        );
        let trusted = plane.trusted_for("hal.dll", &ids);
        assert!(!trusted.contains(&ids[1]));
        assert_eq!(trusted.len(), 2);
        assert_eq!(plane.trusted_for("ndis.sys", &ids).len(), 3);
        assert!(!plane.vm_quiet(ids[1]));
        assert!(plane.vm_quiet(ids[0]));

        // After the rescan, the pair is clean again.
        plane.clear_dirty();
        assert_eq!(plane.trusted_for("hal.dll", &ids).len(), 3);
        let s = plane.stats();
        assert!(s.events_drained > 0);
        assert_eq!(s.dirty_marks, 1);
        assert_eq!(s.unattributed_events, 0);
    }

    #[test]
    fn disarm_releases_frames_and_unknown_module_fails() {
        let (mut hv, _guests, ids) = cloud(2);
        let mut plane = EventPlane::new();
        plane.arm_pair(&mut hv, ids[0], "hal.dll", true).unwrap();
        let watched = hv.vm(ids[0]).unwrap().mem.watched_frames();
        assert!(watched > 0);
        plane.disarm_pair(&mut hv, ids[0], "hal.dll").unwrap();
        assert_eq!(hv.vm(ids[0]).unwrap().mem.watched_frames(), 0);
        assert_eq!(plane.armed_len(), 0);
        assert!(plane
            .arm_pair(&mut hv, ids[0], "no-such.sys", true)
            .is_err());
    }

    #[test]
    fn rearming_does_not_leak_watch_refcounts() {
        let (mut hv, _guests, ids) = cloud(2);
        let mut plane = EventPlane::new();
        plane.arm_pair(&mut hv, ids[0], "hal.dll", true).unwrap();
        let once = hv.vm(ids[0]).unwrap().mem.watched_frames();
        plane.arm_pair(&mut hv, ids[0], "hal.dll", true).unwrap();
        assert_eq!(hv.vm(ids[0]).unwrap().mem.watched_frames(), once);
        plane.disarm_pair(&mut hv, ids[0], "hal.dll").unwrap();
        assert_eq!(hv.vm(ids[0]).unwrap().mem.watched_frames(), 0);
    }
}
